//! Morsel-driven intra-query parallelism.
//!
//! With `worker_threads > 1` in the [`ExecutionContext`], plans whose
//! shape has a parallel form are executed by a scoped worker pool instead
//! of the serial operator tree. The unit of work (a *morsel*) is one
//! storage partition: workers claim whole partitions from a shared atomic
//! counter (largest-first, so greedy claiming stays balanced) and stream
//! each partition's pages through the same resumable cursor
//! ([`StorageEngine::scan_partition_page`]) the distributed executor
//! uses. Per-partition results are reassembled **in partition order** at
//! the root, which reproduces the serial pipeline's tuple sequence
//! exactly — partition-parallel scan is a pure speedup, not an
//! approximation.
//!
//! Blocking operators get parallel forms:
//!
//! * **Sort / top-K** — each worker keeps a per-partition buffer (pruned
//!   to `k` when a downstream limit caps the output; stable sort +
//!   truncate commutes with pruning, so this is exact). The root
//!   concatenates buffers in partition order and runs one final stable
//!   sort, which reproduces the serial order including ties.
//! * **Group/aggregate** — workers fold per-partition partial group
//!   states with the same [`fold_group`] the serial operator uses; the
//!   root merges partials in partition order via [`AggValue::merge`].
//!   Exact for counts/min/max and integer-derived sums; true
//!   floating-point sums may differ from serial by rounding (association
//!   order changes).
//! * **Hash join** — the build side is drained once through the serial
//!   compiler, split into disjoint hash buckets (built in parallel), and
//!   probed read-only by every worker. Per-key match order equals serial
//!   insertion order because each key lands in exactly one bucket.
//!
//! Two base sources exist. A **storage scan** claims partitions as
//! morsels. An **index scan** (scored text retrieval) evaluates its
//! search once on the caller's thread — BM25 statistics are index-global,
//! so the evaluation itself does not shard — then chunks the ordered hit
//! list into morsels: workers fetch each hit's snapshot-visible document,
//! bind scored tuples, and run the same per-morsel step chain; chunk
//! order reassembly reproduces the serial score-descending sequence
//! exactly.
//!
//! Shapes with no parallel form — value-index point lookups, sort-merge
//! and indexed-NL joins, graph connects, fusion, sorts over row inputs —
//! return `None` and fall back to the serial pipeline, as do
//! single-partition stores and `worker_threads == 1`. Exchanges cost
//! nothing here: workers share one address space, so nothing is charged
//! to the simulated `Network` (see DESIGN.md).

use std::collections::{hash_map::DefaultHasher, BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use impliance_docmodel::Value;
use impliance_obs::{Counter, Gauge, Histogram, LATENCY_BUCKETS_US};
use impliance_storage::{AggValue, Predicate, ScanMetrics, ScanMorsel, ScanPos, ScanRequest};

use crate::adaptive::AdaptiveFilterChain;
use crate::batch::{
    columnar_obs, finish_groups, fold_group, fold_page, mask_page, project_page, sort_tuples,
    Batch, SharedMetrics,
};
use crate::context::ExecutionContext;
use crate::exec::{
    deadline_obs, predicate_paths, scan_request_parts, Compiled, ExecContext, ExecError,
    ExecMetrics, Kind, QueryOutput,
};
use crate::plan::{AggItem, JoinAlgo, LogicalPlan, SortKey};
use crate::tuple::{Row, Tuple};

// ---------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------

struct ParObs {
    morsels: Arc<Counter>,
    workers_used: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    merge_us: Arc<Histogram>,
}

fn par_obs() -> &'static ParObs {
    static OBS: OnceLock<ParObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let m = impliance_obs::global().metrics();
        ParObs {
            morsels: m.counter("query.parallel.morsels"),
            workers_used: m.gauge("query.parallel.workers_used"),
            queue_depth: m.gauge("query.parallel.queue_depth"),
            merge_us: m.histogram("query.parallel.merge_us", &LATENCY_BUCKETS_US),
        }
    })
}

// ---------------------------------------------------------------------
// Scoped order-preserving map (the pool primitive)
// ---------------------------------------------------------------------

/// Run `f` over `items` on up to `workers` scoped threads, returning the
/// results in input order. Workers claim items through a shared atomic
/// counter, so an expensive item never blocks the rest of the list
/// behind it. With one worker (or one item) everything runs inline on
/// the caller's thread — no pool, fully deterministic. A panicking
/// worker is re-raised on the caller via `std::panic::resume_unwind`.
pub(crate) fn scoped_map<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<parking_lot::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| parking_lot::Mutex::new(Some(t)))
        .collect();
    let claim = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let claim = &claim;
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                s.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = claim.fetch_add(1, Ordering::Relaxed);
                        let Some(slot) = slots.get(i) else { break };
                        if let Some(item) = slot.lock().take() {
                            out.push((i, f(item)));
                        }
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::with_capacity(n);
        for h in handles {
            match h.join() {
                Ok(part) => all.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

// ---------------------------------------------------------------------
// Plan lowering
// ---------------------------------------------------------------------

/// A linear per-morsel step applied to tuple batches, innermost first.
/// Borrows straight from the plan — lowering allocates nothing per node.
enum Step<'p> {
    /// Filter on one alias (multi-conjunct filters run through a
    /// per-worker adaptive chain, like the serial operator).
    Filter {
        alias: &'p str,
        predicate: &'p Predicate,
    },
    /// Probe of a pre-built shared hash table; `table` indexes into the
    /// query's build-side table list.
    HashProbe {
        left_key: &'p (String, String),
        table: usize,
    },
}

/// How per-partition tuple streams combine at the root.
enum Shape<'p> {
    /// Concatenate in partition order (streaming plans).
    Collect,
    /// Per-partition buffers (pruned to `top_k`), one stable sort at the
    /// root.
    Sort {
        keys: &'p [SortKey],
        top_k: Option<usize>,
    },
    /// Per-partition partial group states, merged in partition order.
    GroupAgg {
        group_by: Option<&'p (String, String)>,
        aggs: &'p [AggItem],
    },
}

/// The base source a lowered plan streams from.
enum Base<'p> {
    /// Partitioned storage scan — morsels are partitions.
    Scan {
        collection: Option<&'p str>,
        predicate: Option<&'p Predicate>,
    },
    /// Scored text retrieval — the search runs once (BM25 statistics are
    /// index-global); morsels are chunks of the ordered hit list.
    IndexScan {
        query: &'p str,
        path: Option<&'p str>,
        k: Option<usize>,
        any_term: bool,
        phrase: bool,
        collection: Option<&'p str>,
    },
}

/// A plan lowered to morsel form: one base source, a linear chain of
/// per-morsel steps, a root shape, and the residual projection/limit.
/// Everything borrows from the plan, which outlives the worker pool.
struct Lowered<'p> {
    base: Base<'p>,
    alias: &'p str,
    steps: Vec<Step<'p>>,
    /// Build-side plans for each `Step::HashProbe`, in table order.
    builds: Vec<(&'p LogicalPlan, &'p (String, String))>,
    shape: Shape<'p>,
    project: Option<&'p [(String, String, String)]>,
    limit: Option<usize>,
}

/// Lower a plan to morsel form, or `None` when no parallel form exists
/// and the serial pipeline should run instead.
fn lower(plan: &LogicalPlan) -> Option<Lowered<'_>> {
    let mut limit: Option<usize> = None;
    let mut take_limit = |n: usize| limit = Some(limit.map_or(n, |l| l.min(n)));
    let mut cur = plan;
    while let LogicalPlan::Limit { input, n } = cur {
        take_limit(*n);
        cur = input;
    }
    let mut project = None;
    if let LogicalPlan::Project { input, columns } = cur {
        project = Some(columns.as_slice());
        cur = input;
    }
    while let LogicalPlan::Limit { input, n } = cur {
        take_limit(*n);
        cur = input;
    }
    let (shape, mut cur) = match cur {
        LogicalPlan::Sort { input, keys } => (
            Shape::Sort {
                keys,
                // A limit anywhere above the sort caps its output (the
                // serial pipeline truncates after sorting; pruning to k
                // per partition plus a final stable sort is equivalent).
                top_k: limit,
            },
            input.as_ref(),
        ),
        LogicalPlan::GroupAgg {
            input,
            group_by,
            aggs,
        } => (
            Shape::GroupAgg {
                group_by: group_by.as_ref(),
                aggs,
            },
            input.as_ref(),
        ),
        other => (Shape::Collect, other),
    };
    // The segment below the shape: a left-deep chain of filters and hash
    // joins over one base scan. Steps are collected outermost-first and
    // reversed so workers apply them scan-outward.
    let mut steps: Vec<Step<'_>> = Vec::new();
    let mut builds: Vec<(&LogicalPlan, &(String, String))> = Vec::new();
    loop {
        match cur {
            LogicalPlan::Filter {
                input,
                alias,
                predicate,
            } => {
                steps.push(Step::Filter { alias, predicate });
                cur = input;
            }
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
                algo: JoinAlgo::Hash | JoinAlgo::Unspecified,
            } => {
                builds.push((right.as_ref(), right_key));
                steps.push(Step::HashProbe {
                    left_key,
                    table: builds.len() - 1,
                });
                cur = left;
            }
            LogicalPlan::Scan {
                collection,
                predicate,
                alias,
                use_value_index,
            } => {
                if *use_value_index && matches!(predicate, Some(Predicate::Eq(_, _))) {
                    return None; // index point lookup: serial path
                }
                steps.reverse();
                // Table indices were assigned in outermost-first order;
                // remap them to the reversed (scan-outward) step order.
                return Some(Lowered {
                    base: Base::Scan {
                        collection: collection.as_deref(),
                        predicate: predicate.as_ref(),
                    },
                    alias,
                    steps,
                    builds,
                    shape,
                    project,
                    limit,
                });
            }
            LogicalPlan::IndexScan {
                query,
                path,
                k,
                alias,
                any_term,
                phrase,
                collection,
            } => {
                steps.reverse();
                return Some(Lowered {
                    base: Base::IndexScan {
                        query,
                        path: path.as_deref(),
                        k: *k,
                        any_term: *any_term,
                        phrase: *phrase,
                        collection: collection.as_deref(),
                    },
                    alias,
                    steps,
                    builds,
                    shape,
                    project,
                    limit,
                });
            }
            _ => return None, // fusion, graph, other joins, …
        }
    }
}

// ---------------------------------------------------------------------
// Columnar worker path
// ---------------------------------------------------------------------

/// The vectorized per-morsel plan: which columns to decode, the exact
/// predicate masks to apply page-at-a-time, and the zone-map pruning
/// hint. Built once per query when the lowered shape qualifies.
struct ColumnarPlan {
    masks: Vec<Predicate>,
    prune: Option<Predicate>,
    paths: Vec<String>,
}

/// Decide whether the lowered plan can run its morsels column-at-a-time:
/// every step must be a filter on the scan's own alias (joins probe
/// tuples, so they stay row-wise), and the root shape must be an
/// aggregate or a projected collect (docs output needs materialized
/// documents anyway). Mirrors the serial pipeline's fusable chain.
fn columnar_plan(
    ctx: &ExecContext<'_>,
    low: &Lowered<'_>,
    request: &ScanRequest,
    post_filter: Option<&Predicate>,
) -> Option<ColumnarPlan> {
    if !ctx.columnar {
        return None;
    }
    let filters: Vec<&Predicate> = low
        .steps
        .iter()
        .map(|s| match s {
            Step::Filter { alias, predicate } if *alias == low.alias => Some(*predicate),
            _ => None,
        })
        .collect::<Option<Vec<_>>>()?;
    let mut paths: Vec<String> = match &low.shape {
        Shape::GroupAgg { group_by, aggs } => group_by
            .iter()
            .filter(|g| g.0.as_str() == low.alias)
            .map(|g| g.1.clone())
            .chain(aggs.iter().filter_map(|a| a.operand.clone()))
            .collect(),
        Shape::Collect => low
            .project?
            .iter()
            .filter(|(alias, _, _)| alias.as_str() == low.alias)
            .map(|(_, path, _)| path.clone())
            .collect(),
        Shape::Sort { .. } => return None,
    };
    for p in &filters {
        predicate_paths(p, &mut paths);
    }
    paths.sort();
    paths.dedup();
    let masks: Vec<Predicate> = post_filter
        .into_iter()
        .chain(filters.iter().copied())
        .cloned()
        .collect();
    let prune = if ctx.pushdown && !filters.is_empty() {
        Some(Predicate::And(
            request
                .predicate
                .iter()
                .chain(filters.iter().copied())
                .cloned()
                .collect(),
        ))
    } else {
        None
    };
    Some(ColumnarPlan {
        masks,
        prune,
        paths,
    })
}

// ---------------------------------------------------------------------
// Shared (read-only) join tables
// ---------------------------------------------------------------------

/// A hash-bucketed build side, probed read-only by every worker.
struct JoinTable {
    buckets: Vec<HashMap<String, Vec<Tuple>>>,
}

fn bucket_of(key: &str, n: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % n.max(1)
}

impl JoinTable {
    fn get(&self, key: &str) -> Option<&Vec<Tuple>> {
        self.buckets
            .get(bucket_of(key, self.buckets.len()))?
            .get(key)
    }
}

/// Drain a build-side plan through the serial compiler, then split the
/// keyed rows into `buckets` disjoint hash buckets in parallel. Within a
/// key, insertion order equals the serial drain order (each key maps to
/// exactly one bucket and builders walk the drain in order), so probe
/// output order matches the serial hash join exactly.
fn build_join_table(
    ctx: &ExecContext<'_>,
    build: &LogicalPlan,
    right_key: &(String, String),
    batch_size: usize,
    buckets: usize,
    workers: usize,
    metrics: &mut ExecMetrics,
) -> Result<JoinTable, ExecError> {
    let shared: SharedMetrics = std::rc::Rc::new(std::cell::RefCell::new(ExecMetrics::default()));
    let mut keyed: Vec<(String, Tuple)> = Vec::new();
    let mut batches = 0u64;
    {
        let mut op = match crate::exec::compile(ctx, build, batch_size, &shared)? {
            Compiled::Op {
                op,
                kind: Kind::Tuples,
            } => op,
            _ => return Err(ExecError::BadPlan("join right input must be tuples".into())),
        };
        while let Some(batch) = op.next_batch()? {
            batches += 1;
            let Batch::Tuples(tuples) = batch else {
                return Err(ExecError::BadPlan("join right input must be tuples".into()));
            };
            for t in tuples {
                let k = t.key(&right_key.0, &right_key.1);
                if k.is_null() {
                    continue;
                }
                keyed.push((k.render(), t));
            }
        }
    }
    let built = shared.borrow();
    metrics.scan.merge(&built.scan);
    metrics.index_lookups += built.index_lookups;
    metrics.batches += batches;
    // partition once by move (a single pass in drain order, so per-key
    // order is preserved), then build each bucket's map in parallel —
    // the old scan-and-clone walked every row once per bucket and cloned
    // each key and tuple into its map
    let mut parts: Vec<Vec<(String, Tuple)>> = (0..buckets).map(|_| Vec::new()).collect();
    if buckets > 0 {
        for (k, t) in keyed {
            let b = bucket_of(&k, buckets);
            parts[b].push((k, t));
        }
    }
    let maps = scoped_map(workers.min(buckets), parts, |part| {
        let mut m: HashMap<String, Vec<Tuple>> = HashMap::new();
        for (k, t) in part {
            m.entry(k).or_default().push(t);
        }
        m
    });
    Ok(JoinTable { buckets: maps })
}

// ---------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------

/// Everything a worker needs, shared read-only across the pool.
struct WorkerEnv<'e> {
    storage: &'e impliance_storage::StorageEngine,
    low: &'e Lowered<'e>,
    /// When set, morsels run column-at-a-time (decode → mask → fold or
    /// project straight from column vectors) instead of row-wise.
    col: Option<&'e ColumnarPlan>,
    tables: &'e [JoinTable],
    morsels: &'e [ScanMorsel],
    request: &'e ScanRequest,
    post_filter: Option<&'e Predicate>,
    claim: &'e AtomicUsize,
    stop: &'e AtomicBool,
    deadline_hit: &'e AtomicBool,
    deadline_at: Option<Instant>,
    batch_size: usize,
    priority: crate::preempt::Priority,
}

/// One partition's accumulated result.
enum PartAcc {
    Tuples(Vec<Tuple>),
    /// Already-projected rows from the columnar path (collect shape).
    Rows(Vec<Row>),
    Groups(BTreeMap<String, (Value, Vec<AggValue>)>),
}

#[derive(Default)]
struct WorkerOut {
    /// `(partition, result)` pairs, reassembled in partition order at
    /// the root.
    parts: Vec<(usize, PartAcc)>,
    scan: ScanMetrics,
    pages: u64,
    /// Pages that went through the vectorized decode path.
    columnar_pages: u64,
    error: Option<ExecError>,
}

fn run_worker(env: &WorkerEnv<'_>) -> WorkerOut {
    let mut out = WorkerOut::default();
    // Per-worker adaptive chains (one per multi-conjunct filter step):
    // the learned conjunct order persists across this worker's morsels,
    // like the serial chain persists across batches. Conjunctions are
    // order-independent in outcome, so reordering never changes rows.
    let mut chains: Vec<Option<AdaptiveFilterChain>> = env
        .low
        .steps
        .iter()
        .map(|s| match s {
            Step::Filter {
                predicate: Predicate::And(cs),
                ..
            } if cs.len() > 1 => Some(AdaptiveFilterChain::new(cs.clone(), 64)),
            _ => None,
        })
        .collect();
    loop {
        if env.stop.load(Ordering::Relaxed) {
            break;
        }
        // Morsel-granularity preemption: while a high-priority query is
        // in flight, lower-priority workers surrender the core (bounded)
        // before racing for the next claim, so the high-priority pool
        // wins the contended morsels.
        crate::preempt::yield_to_high(env.priority);
        let i = env.claim.fetch_add(1, Ordering::Relaxed);
        let Some(m) = env.morsels.get(i) else { break };
        par_obs()
            .queue_depth
            .set(env.morsels.len().saturating_sub(i + 1) as i64);
        let result = match env.col {
            Some(cp) => process_partition_columnar(env, cp, m.partition, &mut out),
            None => process_partition(env, m.partition, &mut chains, &mut out),
        };
        match result {
            Ok(acc) => out.parts.push((m.partition, acc)),
            Err(e) => {
                out.error = Some(e);
                env.stop.store(true, Ordering::Relaxed);
                break;
            }
        }
    }
    out
}

fn process_partition(
    env: &WorkerEnv<'_>,
    partition: usize,
    chains: &mut [Option<AdaptiveFilterChain>],
    out: &mut WorkerOut,
) -> Result<PartAcc, ExecError> {
    let (mut acc, top_k, keys) = match &env.low.shape {
        Shape::GroupAgg { .. } => (PartAcc::Groups(BTreeMap::new()), None, None),
        Shape::Sort { keys, top_k } => (PartAcc::Tuples(Vec::new()), *top_k, Some(keys)),
        Shape::Collect => (PartAcc::Tuples(Vec::new()), None, None),
    };
    // Pruning threshold for the top-K sort buffer (mirrors SortOp).
    let prune_at = top_k.map(|k| (2 * k).max(64));
    // A streaming (Collect) partition never contributes more than the
    // query limit: a tuple with `limit` same-partition predecessors can
    // never reach the merged prefix, so the scan can stop early.
    let collect_cap = match env.low.shape {
        Shape::Collect => env.low.limit,
        _ => None,
    };
    let mut pos = ScanPos::default();
    // Probe output scratch, reused across pages and probe steps: the
    // swap below keeps both buffers' capacity alive instead of growing
    // a fresh vector per page.
    let mut probe_scratch: Vec<Tuple> = Vec::new();
    loop {
        if env.deadline_at.is_some_and(|d| Instant::now() >= d) {
            env.deadline_hit.store(true, Ordering::Relaxed);
            env.stop.store(true, Ordering::Relaxed);
            break;
        }
        let (page, next, done) =
            env.storage
                .scan_partition_page(partition, env.request, pos, env.batch_size)?;
        pos = next;
        out.scan.merge(&page.metrics);
        out.pages += 1;
        let mut tuples: Vec<Tuple> = page
            .documents
            .into_iter()
            .map(|d| Tuple::single(env.low.alias, Arc::new(d)))
            .collect();
        if let Some(p) = env.post_filter {
            tuples.retain(|t| {
                t.bindings
                    .get(env.low.alias)
                    .map(|d| p.matches(d))
                    .unwrap_or(false)
            });
        }
        for (si, step) in env.low.steps.iter().enumerate() {
            if tuples.is_empty() {
                break;
            }
            match step {
                Step::Filter { alias, predicate } => match &mut chains[si] {
                    Some(chain) => tuples = chain.filter(tuples, alias),
                    None => tuples.retain(|t| {
                        t.bindings
                            .get(*alias)
                            .map(|d| predicate.matches(d))
                            .unwrap_or(false)
                    }),
                },
                Step::HashProbe { left_key, table } => {
                    let Some(table) = env.tables.get(*table) else {
                        return Err(ExecError::BadPlan("probe of unbuilt join table".into()));
                    };
                    probe_scratch.clear();
                    for t in &tuples {
                        let k = t.key(&left_key.0, &left_key.1);
                        if k.is_null() {
                            continue;
                        }
                        if let Some(matches) = table.get(&k.render()) {
                            for m in matches {
                                probe_scratch.push(t.join(m));
                            }
                        }
                    }
                    std::mem::swap(&mut tuples, &mut probe_scratch);
                }
            }
        }
        let mut partition_full = false;
        match &mut acc {
            PartAcc::Tuples(buf) => {
                buf.extend(tuples);
                if let (Some(cap), Some(k), Some(keys)) = (prune_at, top_k, keys) {
                    if buf.len() > cap {
                        sort_tuples(buf, keys);
                        buf.truncate(k);
                    }
                }
                if let Some(n) = collect_cap {
                    if buf.len() >= n {
                        buf.truncate(n);
                        partition_full = true;
                    }
                }
            }
            PartAcc::Groups(groups) => {
                if let Shape::GroupAgg { group_by, aggs } = &env.low.shape {
                    for t in &tuples {
                        fold_group(groups, t, *group_by, aggs);
                    }
                }
            }
            PartAcc::Rows(_) => {}
        }
        if done || partition_full {
            break;
        }
    }
    Ok(acc)
}

/// The vectorized morsel loop: decode each page straight into column
/// vectors (zone maps skip whole segments first), apply the exact
/// predicate masks, then fold aggregates or project rows directly from
/// the columns — documents are never materialized into tuples.
fn process_partition_columnar(
    env: &WorkerEnv<'_>,
    cp: &ColumnarPlan,
    partition: usize,
    out: &mut WorkerOut,
) -> Result<PartAcc, ExecError> {
    let mut acc = match &env.low.shape {
        Shape::GroupAgg { .. } => PartAcc::Groups(BTreeMap::new()),
        _ => PartAcc::Rows(Vec::new()),
    };
    // A collect partition never contributes more than the query limit
    // (same early-stop as the row-wise loop).
    let collect_cap = match env.low.shape {
        Shape::Collect => env.low.limit,
        _ => None,
    };
    let mut pos = ScanPos::default();
    loop {
        if env.deadline_at.is_some_and(|d| Instant::now() >= d) {
            env.deadline_hit.store(true, Ordering::Relaxed);
            env.stop.store(true, Ordering::Relaxed);
            break;
        }
        let (page, next, done) = env.storage.scan_partition_page_columnar(
            partition,
            env.request,
            cp.prune.as_ref(),
            pos,
            env.batch_size,
            &cp.paths,
        )?;
        pos = next;
        out.scan.merge(&page.metrics);
        out.pages += 1;
        let page = mask_page(page, &cp.masks);
        let mut partition_full = false;
        if page.len > 0 {
            out.columnar_pages += 1;
            let obs = columnar_obs();
            obs.batches.inc();
            obs.rows.add(page.len as u64);
            match &mut acc {
                PartAcc::Groups(groups) => {
                    if let Shape::GroupAgg { group_by, aggs } = &env.low.shape {
                        fold_page(groups, &page, *group_by, aggs, env.low.alias);
                    }
                }
                PartAcc::Rows(rows) => {
                    if let Some(columns) = env.low.project {
                        rows.extend(project_page(&page, columns, env.low.alias));
                    }
                    if let Some(n) = collect_cap {
                        if rows.len() >= n {
                            rows.truncate(n);
                            partition_full = true;
                        }
                    }
                }
                PartAcc::Tuples(_) => {}
            }
        }
        if done || partition_full {
            break;
        }
    }
    Ok(acc)
}

// ---------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------

/// Try to execute `plan` with the morsel-driven pool. Returns
/// `Ok(None)` when the plan has no parallel form (caller falls back to
/// the serial pipeline). The returned rows are bit-identical to the
/// serial pipeline's except for true floating-point aggregate sums (see
/// module docs).
pub(crate) fn try_execute_parallel(
    ctx: &ExecContext<'_>,
    plan: &LogicalPlan,
    opts: &ExecutionContext,
) -> Result<Option<(QueryOutput, ExecMetrics)>, ExecError> {
    if opts.worker_threads <= 1 {
        return Ok(None);
    }
    let Some(low) = lower(plan) else {
        return Ok(None);
    };
    let (collection, predicate) = match low.base {
        Base::Scan {
            collection,
            predicate,
        } => (collection, predicate),
        Base::IndexScan { .. } => return execute_parallel_index_scan(ctx, &low, opts),
    };
    let morsels = ctx.storage.scan_morsels();
    if morsels.len() < 2 {
        return Ok(None); // one partition: nothing to fan out
    }
    let workers = opts.worker_threads.min(morsels.len());
    let batch_size = opts.batch_size.max(1);
    let deadline_at = opts.deadline.map(|d| Instant::now() + d);
    let mut metrics = ExecMetrics::default();
    metrics.workers_used = workers as u64;

    // Build sides run serially through the normal compiler (they are the
    // small inputs of a hash join); bucketing fans out across the pool.
    let mut tables: Vec<JoinTable> = Vec::with_capacity(low.builds.len());
    for (build, right_key) in &low.builds {
        tables.push(build_join_table(
            ctx,
            build,
            right_key,
            batch_size,
            workers,
            workers,
            &mut metrics,
        )?);
    }

    let (request, post_filter) =
        scan_request_parts(ctx.pushdown, collection, predicate, ctx.snapshot);
    let col = columnar_plan(ctx, &low, &request, post_filter.as_ref());

    let obs = par_obs();
    obs.morsels.add(morsels.len() as u64);
    obs.workers_used.set(workers as i64);

    let claim = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let deadline_hit = AtomicBool::new(false);
    let env = WorkerEnv {
        storage: ctx.storage,
        low: &low,
        col: col.as_ref(),
        tables: &tables,
        morsels: &morsels,
        request: &request,
        post_filter: post_filter.as_ref(),
        claim: &claim,
        stop: &stop,
        deadline_hit: &deadline_hit,
        deadline_at,
        batch_size,
        priority: opts.priority,
    };
    let env_ref = &env;
    let outs: Vec<WorkerOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| s.spawn(move || run_worker(env_ref)))
            .collect();
        let mut all = Vec::with_capacity(workers);
        for h in handles {
            match h.join() {
                Ok(o) => all.push(o),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });
    obs.queue_depth.set(0);

    let mut first_error: Option<ExecError> = None;
    let mut parts: Vec<(usize, PartAcc)> = Vec::new();
    for o in outs {
        metrics.scan.merge(&o.scan);
        metrics.batches += o.pages;
        metrics.columnar_batches += o.columnar_pages;
        if let Some(e) = o.error {
            first_error.get_or_insert(e);
        }
        parts.extend(o.parts);
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    if deadline_hit.load(Ordering::Relaxed) {
        metrics.deadline_exceeded = true;
        deadline_obs().inc();
    }
    let output = merge_parts(&low, parts, col.is_some(), &mut metrics);
    Ok(Some((output, metrics)))
}

/// Reassemble per-morsel results in morsel order and finish the root
/// shape — shared by the partition-morsel and hit-chunk-morsel paths, so
/// both reproduce the serial pipeline's output exactly.
fn merge_parts(
    low: &Lowered<'_>,
    mut parts: Vec<(usize, PartAcc)>,
    columnar: bool,
    metrics: &mut ExecMetrics,
) -> QueryOutput {
    // Morsel-order reassembly: reproduces the serial sequence.
    parts.sort_by_key(|(p, _)| *p);

    let merge_started = Instant::now();
    let mut truncated = false;
    let output = match &low.shape {
        Shape::Collect if columnar => {
            // Columnar collect: workers already projected rows.
            let mut rows: Vec<Row> = Vec::new();
            for (_, acc) in parts {
                if let PartAcc::Rows(r) = acc {
                    rows.extend(r);
                }
            }
            if let Some(n) = low.limit {
                truncated = rows.len() > n;
                rows.truncate(n);
            }
            metrics.rows_out = rows.len() as u64;
            QueryOutput::Rows(rows)
        }
        Shape::Collect => {
            let mut tuples: Vec<Tuple> = Vec::new();
            for (_, acc) in parts {
                if let PartAcc::Tuples(t) = acc {
                    tuples.extend(t);
                }
            }
            if let Some(n) = low.limit {
                truncated = tuples.len() > n;
                tuples.truncate(n);
            }
            finish_tuples(tuples, low.project, metrics)
        }
        Shape::Sort { keys, top_k } => {
            let mut tuples: Vec<Tuple> = Vec::new();
            for (_, acc) in parts {
                if let PartAcc::Tuples(t) = acc {
                    tuples.extend(t);
                }
            }
            sort_tuples(&mut tuples, keys);
            if let Some(k) = top_k {
                truncated = tuples.len() > *k;
                tuples.truncate(*k);
            }
            finish_tuples(tuples, low.project, metrics)
        }
        Shape::GroupAgg { group_by, aggs } => {
            let mut groups: BTreeMap<String, (Value, Vec<AggValue>)> = BTreeMap::new();
            // Merge in partition order so per-group accumulation order is
            // deterministic regardless of worker scheduling.
            for (_, acc) in parts {
                let PartAcc::Groups(g) = acc else { continue };
                for (k, (v, states)) in g {
                    match groups.entry(k) {
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert((v, states));
                        }
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            for (mine, theirs) in e.get_mut().1.iter_mut().zip(&states) {
                                mine.merge(theirs);
                            }
                        }
                    }
                }
            }
            let mut rows = finish_groups(groups, *group_by, aggs);
            if let Some(n) = low.limit {
                truncated = rows.len() > n;
                rows.truncate(n);
            }
            metrics.rows_out = rows.len() as u64;
            QueryOutput::Rows(rows)
        }
    };
    par_obs()
        .merge_us
        .observe(merge_started.elapsed().as_micros() as u64);
    if truncated {
        metrics.early_terminations += 1;
    }
    output
}

/// Morsel-parallel execution of an `IndexScan`-based plan. The search
/// itself runs once on the caller's thread (its BM25 statistics and
/// upper-bound pruning are global to the index); the ordered hit list is
/// then chunked into morsels and workers resolve documents, bind scored
/// tuples, and run the per-morsel step chain. Chunk-order reassembly
/// makes the output identical to the serial `IndexScanOp` pipeline.
fn execute_parallel_index_scan(
    ctx: &ExecContext<'_>,
    low: &Lowered<'_>,
    opts: &ExecutionContext,
) -> Result<Option<(QueryOutput, ExecMetrics)>, ExecError> {
    let Base::IndexScan {
        query,
        path,
        k,
        any_term,
        phrase,
        collection,
    } = low.base
    else {
        return Ok(None);
    };
    let batch_size = opts.batch_size.max(1);
    let workers = opts.worker_threads;
    let deadline_at = opts.deadline.map(|d| Instant::now() + d);
    let mut metrics = ExecMetrics::default();

    // Build sides of hash probes, exactly like the partition path.
    let mut tables: Vec<JoinTable> = Vec::with_capacity(low.builds.len());
    for (build, right_key) in &low.builds {
        tables.push(build_join_table(
            ctx,
            build,
            right_key,
            batch_size,
            workers,
            workers,
            &mut metrics,
        )?);
    }

    let (hits, stats, effective_k) =
        crate::batch::run_index_search(ctx.text_index, query, path, any_term, phrase, k);
    metrics.index_lookups += 1;
    metrics.search_candidates_scored += stats.candidates_scored as u64;
    metrics.search_candidates_pruned += stats.candidates_pruned as u64;
    if stats.early_terminated(effective_k) {
        metrics.early_terminations += 1;
    }

    let chunks: Vec<Vec<impliance_index::SearchHit>> =
        hits.chunks(batch_size).map(|c| c.to_vec()).collect();
    let obs = par_obs();
    obs.morsels.add(chunks.len() as u64);
    obs.workers_used
        .set(workers.min(chunks.len().max(1)) as i64);
    metrics.workers_used = workers.min(chunks.len().max(1)).max(1) as u64;
    metrics.batches += chunks.len() as u64;

    let snap = ctx.snapshot.unwrap_or(u64::MAX);
    let deadline_hit = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let tables = &tables;
    let results: Vec<Result<PartAcc, ExecError>> =
        scoped_map(workers, chunks, |chunk: Vec<impliance_index::SearchHit>| {
            if stop.load(Ordering::Relaxed) {
                return Ok(match &low.shape {
                    Shape::GroupAgg { .. } => PartAcc::Groups(BTreeMap::new()),
                    _ => PartAcc::Tuples(Vec::new()),
                });
            }
            if deadline_at.is_some_and(|d| Instant::now() >= d) {
                deadline_hit.store(true, Ordering::Relaxed);
                stop.store(true, Ordering::Relaxed);
                return Ok(match &low.shape {
                    Shape::GroupAgg { .. } => PartAcc::Groups(BTreeMap::new()),
                    _ => PartAcc::Tuples(Vec::new()),
                });
            }
            crate::preempt::yield_to_high(opts.priority);
            let mut tuples: Vec<Tuple> = Vec::new();
            for hit in chunk {
                let Ok(Some(doc)) = ctx.storage.get_latest_at(hit.id, snap) else {
                    continue;
                };
                if let Some(c) = collection {
                    if doc.collection() != c {
                        continue;
                    }
                }
                tuples.push(Tuple::single(low.alias, Arc::new(doc)).with_score(hit.score));
            }
            // Probe output scratch, reused across probe steps (same
            // hoisted-buffer idiom as the partition path).
            let mut probe_scratch: Vec<Tuple> = Vec::new();
            for step in &low.steps {
                if tuples.is_empty() {
                    break;
                }
                match step {
                    Step::Filter { alias, predicate } => tuples.retain(|t| {
                        t.bindings
                            .get(*alias)
                            .map(|d| predicate.matches(d))
                            .unwrap_or(false)
                    }),
                    Step::HashProbe { left_key, table } => {
                        let Some(table) = tables.get(*table) else {
                            return Err(ExecError::BadPlan("probe of unbuilt join table".into()));
                        };
                        probe_scratch.clear();
                        for t in &tuples {
                            let key = t.key(&left_key.0, &left_key.1);
                            if key.is_null() {
                                continue;
                            }
                            if let Some(matches) = table.get(&key.render()) {
                                for m in matches {
                                    probe_scratch.push(t.join(m));
                                }
                            }
                        }
                        std::mem::swap(&mut tuples, &mut probe_scratch);
                    }
                }
            }
            Ok(match &low.shape {
                Shape::GroupAgg { group_by, aggs } => {
                    let mut groups: BTreeMap<String, (Value, Vec<AggValue>)> = BTreeMap::new();
                    for t in &tuples {
                        fold_group(&mut groups, t, *group_by, aggs);
                    }
                    PartAcc::Groups(groups)
                }
                Shape::Sort { keys, top_k } => {
                    if let Some(cap) = top_k {
                        if tuples.len() > *cap {
                            sort_tuples(&mut tuples, keys);
                            tuples.truncate(*cap);
                        }
                    }
                    PartAcc::Tuples(tuples)
                }
                Shape::Collect => {
                    // A chunk never contributes more than the query limit
                    // (same early-stop as the partition path).
                    if let Some(n) = low.limit {
                        tuples.truncate(n);
                    }
                    PartAcc::Tuples(tuples)
                }
            })
        });
    let mut parts: Vec<(usize, PartAcc)> = Vec::new();
    for (i, r) in results.into_iter().enumerate() {
        parts.push((i, r?));
    }
    if deadline_hit.load(Ordering::Relaxed) {
        metrics.deadline_exceeded = true;
        deadline_obs().inc();
    }
    let output = merge_parts(low, parts, false, &mut metrics);
    Ok(Some((output, metrics)))
}

/// Root finisher for tuple-producing shapes: apply the residual
/// projection (tuples → rows) or unbind documents, mirroring the serial
/// drain loops.
fn finish_tuples(
    tuples: Vec<Tuple>,
    project: Option<&[(String, String, String)]>,
    metrics: &mut ExecMetrics,
) -> QueryOutput {
    metrics.rows_out = tuples.len() as u64;
    match project {
        Some(columns) => QueryOutput::Rows(
            tuples
                .iter()
                .map(|t| {
                    Row::from_pairs(
                        columns
                            .iter()
                            .map(|(alias, path, out)| (out.clone(), t.key(alias, path))),
                    )
                })
                .collect(),
        ),
        None => QueryOutput::Docs(
            tuples
                .into_iter()
                .flat_map(|t| t.bindings.into_values().collect::<Vec<_>>())
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_map_preserves_input_order() {
        let out = scoped_map(4, (0..100).collect::<Vec<usize>>(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<usize>>());
    }

    #[test]
    fn scoped_map_single_worker_runs_inline() {
        let out = scoped_map(1, vec![1, 2, 3], |i| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn bucket_of_is_stable_and_in_range() {
        for n in 1..8 {
            for key in ["a", "b", "c", "dd", ""] {
                let b = bucket_of(key, n);
                assert!(b < n);
                assert_eq!(b, bucket_of(key, n));
            }
        }
    }

    #[test]
    fn lower_rejects_unsupported_shapes() {
        let graph = LogicalPlan::GraphConnect {
            a: 1,
            b: 2,
            max_hops: 3,
        };
        assert!(lower(&graph).is_none());
        // fusion is a blocking re-ranker with no morsel form (yet)
        let fused = LogicalPlan::Fusion {
            input: Box::new(LogicalPlan::IndexScan {
                query: "x".into(),
                path: None,
                k: None,
                alias: "d".into(),
                any_term: false,
                phrase: false,
                collection: None,
            }),
            k: 5,
            text_weight: 1.0,
            struct_weight: 1.0,
            rrf_k: 60.0,
            keys: vec![],
        };
        assert!(lower(&fused).is_none());
    }

    #[test]
    fn lower_accepts_index_scan_base() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(LogicalPlan::IndexScan {
                    query: "x".into(),
                    path: None,
                    k: None,
                    alias: "d".into(),
                    any_term: true,
                    phrase: false,
                    collection: Some("c".into()),
                }),
                alias: "d".into(),
                predicate: Predicate::True,
            }),
            n: 5,
        };
        let low = lower(&plan).expect("index scan base must lower");
        assert!(matches!(low.base, Base::IndexScan { any_term: true, .. }));
        assert_eq!(low.steps.len(), 1);
        assert_eq!(low.limit, Some(5));
    }

    #[test]
    fn lower_collapses_limits_and_strips_project() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Project {
                input: Box::new(LogicalPlan::Limit {
                    input: Box::new(LogicalPlan::Scan {
                        collection: Some("c".into()),
                        predicate: None,
                        alias: "d".into(),
                        use_value_index: false,
                    }),
                    n: 7,
                }),
                columns: vec![("d".into(), "x".into(), "x".into())],
            }),
            n: 10,
        };
        let low = lower(&plan).map(|l| (l.limit, l.project.is_some()));
        assert_eq!(low, Some((Some(7), true)));
    }
}

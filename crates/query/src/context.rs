//! The unified execution context.
//!
//! Before PR 5 the execution knobs were split across `ExecOptions`
//! (single-node: batch size, limit, deadline) and `DistExecOptions`
//! (distributed: retry, failover, degraded results) — two structs that
//! drifted apart and forced every caller to know which executor it was
//! talking to. [`ExecutionContext`] is the one bag of knobs both
//! executors read; `QueryRequest` builds it, and the fields an executor
//! does not use are simply ignored (the single-node path never retries,
//! the distributed path routes `limit` through the scan request).

use std::time::Duration;

use crate::batch::DEFAULT_BATCH_SIZE;
use crate::dist::{FailoverPolicy, RetryPolicy};
use crate::preempt::Priority;

/// Every knob a query execution can carry, for both the single-node
/// pipeline ([`crate::exec::execute_plan_opts`]) and the distributed
/// scan ([`crate::dist::dist_scan_resilient`]).
#[derive(Debug, Clone)]
pub struct ExecutionContext {
    /// Tuples/rows per pipeline batch (documents per streamed page on
    /// the distributed path).
    pub batch_size: usize,
    /// Cap on output rows; enforced by a pipeline `Limit` so upstream
    /// operators terminate early (ignored by the distributed scan, which
    /// carries its limit in the `ScanRequest`).
    pub limit: Option<usize>,
    /// Wall-clock budget. When it expires the single-node drain stops
    /// between batches (`ExecMetrics::deadline_exceeded`), and the
    /// distributed scan abandons unresolved morsels; both return the
    /// rows produced so far as an honest partial answer.
    pub deadline: Option<Duration>,
    /// Worker threads for morsel-driven parallel execution (`1` =
    /// serial; see [`crate::parallel`]). The appliance defaults this to
    /// the machine's available cores via `ApplianceConfig`.
    pub worker_threads: usize,
    /// Retry policy for transient message loss (distributed path).
    pub retry: RetryPolicy,
    /// Replica failover policy; `None` disables failover (a dead node
    /// fails or degrades the query). Distributed path only.
    pub failover: Option<FailoverPolicy>,
    /// When coverage cannot be completed (dead node without usable
    /// replicas, exhausted deadline): return a degraded partial result
    /// with an honest `CoverageReport` instead of an error. Distributed
    /// path only.
    pub degraded_ok: bool,
    /// Scheduling class for this execution. `High` registers in the
    /// process-wide preemption gate ([`crate::preempt`]) so lower-class
    /// morsel workers yield their next claim; `Low` yields to any
    /// in-flight high-priority query. Purely a scheduling hint — results
    /// are identical at every priority.
    pub priority: Priority,
}

impl Default for ExecutionContext {
    fn default() -> ExecutionContext {
        ExecutionContext {
            batch_size: DEFAULT_BATCH_SIZE,
            limit: None,
            deadline: None,
            // Library-conservative: callers opt into parallelism. The
            // appliance plumbs `ApplianceConfig::worker_threads`
            // (default = available cores) through here.
            worker_threads: 1,
            retry: RetryPolicy::default(),
            failover: None,
            degraded_ok: false,
            priority: Priority::default(),
        }
    }
}

impl ExecutionContext {
    /// A context with everything default except the batch size.
    pub fn with_batch_size(batch_size: usize) -> ExecutionContext {
        ExecutionContext {
            batch_size: batch_size.max(1),
            ..ExecutionContext::default()
        }
    }

    /// Set the worker-thread count (clamped to ≥ 1), builder-style.
    pub fn parallelism(mut self, workers: usize) -> ExecutionContext {
        self.worker_threads = workers.max(1);
        self
    }

    /// Set the scheduling class, builder-style.
    pub fn with_priority(mut self, priority: Priority) -> ExecutionContext {
        self.priority = priority;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial_and_unbounded() {
        let ctx = ExecutionContext::default();
        assert_eq!(ctx.batch_size, DEFAULT_BATCH_SIZE);
        assert_eq!(ctx.worker_threads, 1);
        assert!(ctx.limit.is_none());
        assert!(ctx.deadline.is_none());
        assert!(ctx.failover.is_none());
        assert!(!ctx.degraded_ok);
        assert_eq!(ctx.priority, Priority::Normal);
    }

    #[test]
    fn priority_builder_sets_class() {
        let ctx = ExecutionContext::default().with_priority(Priority::High);
        assert_eq!(ctx.priority, Priority::High);
    }

    #[test]
    fn parallelism_clamps_to_one() {
        assert_eq!(ExecutionContext::default().parallelism(0).worker_threads, 1);
        assert_eq!(ExecutionContext::default().parallelism(8).worker_threads, 8);
    }
}

//! Keyword-search candidate retrieval for embedders.
//!
//! Everything outside `crates/query` reaches text search through this
//! module or through the full query pipeline (`IndexScan` behind
//! `Impliance::query`) — direct calls into `impliance_index::search` are
//! forbidden by lint L13 so that scoring, top-k semantics, and the
//! `query.search.*` observability counters stay on one code path.

use impliance_index::{InvertedIndex, SearchHit};

/// Top-`limit` BM25-scored candidates matching **every** term of `query`
/// (conjunctive semantics, the historical default). Deterministic order:
/// score descending, then doc id ascending.
pub fn keyword_candidates(index: &InvertedIndex, query: &str, limit: usize) -> Vec<SearchHit> {
    let (hits, _stats, _k) =
        crate::batch::run_index_search(index, query, None, false, false, Some(limit));
    hits
}

/// Like [`keyword_candidates`] but matching **any** term (disjunctive).
pub fn keyword_candidates_any(index: &InvertedIndex, query: &str, limit: usize) -> Vec<SearchHit> {
    let (hits, _stats, _k) =
        crate::batch::run_index_search(index, query, None, true, false, Some(limit));
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use impliance_docmodel::{DocId, DocumentBuilder, SourceFormat};

    fn corpus() -> InvertedIndex {
        let idx = InvertedIndex::new(4);
        for (id, notes) in [
            (1u64, "bumper cracked badly"),
            (2, "bumper scratched"),
            (3, "windshield cracked"),
        ] {
            let d = DocumentBuilder::new(DocId(id), SourceFormat::Json, "claims")
                .field("notes", notes)
                .build();
            idx.index_document(&d);
        }
        idx
    }

    #[test]
    fn conjunctive_by_default_disjunctive_on_request() {
        let idx = corpus();
        let and: Vec<u64> = keyword_candidates(&idx, "bumper cracked", 10)
            .into_iter()
            .map(|h| h.id.0)
            .collect();
        assert_eq!(and, vec![1]);
        let mut or: Vec<u64> = keyword_candidates_any(&idx, "bumper cracked", 10)
            .into_iter()
            .map(|h| h.id.0)
            .collect();
        or.sort_unstable();
        assert_eq!(or, vec![1, 2, 3]);
    }

    #[test]
    fn limit_caps_candidates() {
        let idx = corpus();
        assert_eq!(keyword_candidates_any(&idx, "bumper cracked", 2).len(), 2);
    }
}

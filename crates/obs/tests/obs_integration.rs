//! Integration tests for the observability layer: snapshot JSON golden
//! output, histogram bucket boundaries, nested-span parentage, and a
//! concurrency smoke test that runs the counters under the
//! `impliance-analysis` lock-order detector (the registry and trace
//! rings use `TrackedRwLock`/`TrackedMutex`, so a lock-order inversion
//! anywhere in the obs hot path would panic this test in debug builds).

use std::sync::Arc;
use std::thread;

use impliance_obs::{span, Obs};

#[test]
fn snapshot_metrics_json_matches_golden() {
    let obs = Obs::with_capacity(8);
    obs.metrics().counter("storage.put.count").add(3);
    obs.metrics().gauge("annotate.queue_depth").set(2);
    let h = obs.metrics().histogram("query.op.scan.us", &[10, 100]);
    h.observe(7);
    h.observe(50);
    h.observe(5_000);
    let got = obs.snapshot().metrics_json().pretty();
    let want = r#"{
  "counters": {
    "storage.put.count": 3
  },
  "gauges": {
    "annotate.queue_depth": 2
  },
  "histograms": {
    "query.op.scan.us": {
      "bounds": [
        10,
        100
      ],
      "buckets": [
        1,
        1,
        1
      ],
      "count": 3,
      "sum": 5057
    }
  }
}
"#;
    assert_eq!(got, want);
}

#[test]
fn full_snapshot_json_parses_and_carries_spans() {
    let obs = Obs::with_capacity(8);
    {
        let _outer = span!(obs, "query", "execute");
        let _inner = span!(obs, "storage", "scan");
        obs.tracer()
            .event("storage", "bytes_scanned", &[("bytes", 128)]);
    }
    let text = obs.snapshot().to_json().pretty();
    let parsed = impliance_analysis::report::parse_json(&text).expect("snapshot JSON must parse");
    let spans = parsed.get("spans").and_then(|s| s.as_arr()).unwrap();
    assert_eq!(spans.len(), 2);
    // inner span finished first and points at the outer span
    let inner = &spans[0];
    assert_eq!(
        inner.get("subsystem").and_then(|s| s.as_str()),
        Some("storage")
    );
    assert_eq!(
        inner.get("parent").and_then(|p| p.as_f64()),
        spans[1].get("id").and_then(|i| i.as_f64())
    );
    let events = parsed.get("events").and_then(|e| e.as_arr()).unwrap();
    assert_eq!(
        events[0]
            .get("fields")
            .and_then(|f| f.get("bytes"))
            .and_then(|b| b.as_f64()),
        Some(128.0)
    );
}

#[test]
fn histogram_boundary_values_land_in_lower_bucket() {
    let obs = Obs::new();
    let h = obs.metrics().histogram("edge", &[1, 2, 5]);
    // exact boundary values are inclusive upper bounds
    for v in [1, 2, 5] {
        h.observe(v);
    }
    assert_eq!(h.bucket_counts(), vec![1, 1, 1, 0]);
    h.observe(6);
    assert_eq!(h.bucket_counts(), vec![1, 1, 1, 1]);
}

#[test]
fn deep_span_nesting_reconstructs_the_full_chain() {
    let obs = Obs::with_capacity(64);
    fn recurse(obs: &Obs, depth: usize) {
        if depth == 0 {
            return;
        }
        let _g = span!(obs, "test", "level");
        recurse(obs, depth - 1);
    }
    recurse(&obs, 5);
    let spans = obs.snapshot().spans;
    assert_eq!(spans.len(), 5);
    // walk the parent chain from the innermost (first finished) span
    let mut hops = 0;
    let mut cursor = spans[0].clone();
    while let Some(parent) = cursor.parent {
        cursor = spans.iter().find(|s| s.id == parent).cloned().unwrap();
        hops += 1;
    }
    assert_eq!(hops, 4);
}

#[test]
fn counters_are_race_free_under_lock_order_detector() {
    let obs = Arc::new(Obs::with_capacity(256));
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let obs = Arc::clone(&obs);
            thread::spawn(move || {
                // half the threads pre-register, half race the registry
                let counter = obs.metrics().counter("smoke.hits");
                let hist = obs.metrics().histogram("smoke.us", &[8, 64]);
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.observe(i % 100);
                    if i % 1000 == 0 {
                        let _g = obs.tracer().span("smoke", "tick");
                        obs.tracer().event("smoke", "mark", &[("thread", t as u64)]);
                        // snapshotting while writers run must not deadlock
                        // or invert lock order
                        let _ = obs.snapshot();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no lock-order panic in any thread");
    }
    let snap = obs.snapshot();
    assert_eq!(snap.counters["smoke.hits"], THREADS as u64 * PER_THREAD);
    assert_eq!(
        snap.histograms["smoke.us"].count,
        THREADS as u64 * PER_THREAD
    );
}

//! Span-based tracing: RAII guards recording wall and logical time, with
//! parent/child nesting via a per-thread active-span stack, plus
//! per-subsystem structured events. Finished spans and events land in
//! bounded ring buffers — a long figures run keeps the most recent
//! window rather than growing without limit.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use impliance_analysis::TrackedMutex;

/// Identifier of one span. Ids are unique per [`Tracer`], allocated from 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// A finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// Enclosing span on the same thread at start time, if any.
    pub parent: Option<SpanId>,
    /// Subsystem label (`"storage"`, `"query"`, ...).
    pub subsystem: &'static str,
    /// Operation name.
    pub name: &'static str,
    /// Logical clock at start (total order across all spans/events).
    pub start_logical: u64,
    /// Logical clock at end.
    pub end_logical: u64,
    /// Wall-clock duration in microseconds.
    pub wall_us: u64,
}

/// A structured event, attributed to the active span (if any).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Active span on this thread when the event fired.
    pub span: Option<SpanId>,
    /// Subsystem label.
    pub subsystem: &'static str,
    /// Event name.
    pub name: &'static str,
    /// Logical clock when the event fired.
    pub logical: u64,
    /// Structured payload: static keys, integer values.
    pub fields: Vec<(&'static str, u64)>,
}

#[derive(Debug)]
struct Ring<T> {
    buf: VecDeque<T>,
    cap: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    fn new(cap: usize) -> Ring<T> {
        Ring {
            buf: VecDeque::with_capacity(cap.min(1024)),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    fn push(&mut self, item: T) {
        if self.buf.len() >= self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(item);
    }
}

thread_local! {
    /// Active span ids on this thread, innermost last. Shared by every
    /// tracer on the thread; in practice one process uses one global
    /// tracer, and test-local tracers run on their own test threads.
    static ACTIVE_SPANS: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
}

/// The tracer: allocates span ids, advances the logical clock, and owns
/// the bounded ring buffers of finished spans and events.
#[derive(Debug)]
pub struct Tracer {
    next_id: AtomicU64,
    logical: AtomicU64,
    spans: TrackedMutex<Ring<SpanRecord>>,
    events: TrackedMutex<Ring<EventRecord>>,
}

impl Tracer {
    /// A tracer retaining at most `capacity` finished spans and
    /// `capacity` events.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            next_id: AtomicU64::new(1),
            logical: AtomicU64::new(0),
            spans: TrackedMutex::new("obs.trace.spans", Ring::new(capacity)),
            events: TrackedMutex::new("obs.trace.events", Ring::new(capacity)),
        }
    }

    /// Start a span. The returned guard records the span on drop; nested
    /// calls on the same thread become children of the enclosing span.
    pub fn span(&self, subsystem: &'static str, name: &'static str) -> SpanGuard<'_> {
        let id = SpanId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let start_logical = self.logical.fetch_add(1, Ordering::Relaxed);
        let parent = ACTIVE_SPANS.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        SpanGuard {
            tracer: self,
            id,
            parent,
            subsystem,
            name,
            start_logical,
            started: Instant::now(),
        }
    }

    /// Record a structured event attributed to the current span.
    pub fn event(
        &self,
        subsystem: &'static str,
        name: &'static str,
        fields: &[(&'static str, u64)],
    ) {
        let logical = self.logical.fetch_add(1, Ordering::Relaxed);
        let span = ACTIVE_SPANS.with(|s| s.borrow().last().copied());
        self.events.lock().push(EventRecord {
            span,
            subsystem,
            name,
            logical,
            fields: fields.to_vec(),
        });
    }

    /// The innermost active span on this thread, if any.
    pub fn current_span(&self) -> Option<SpanId> {
        ACTIVE_SPANS.with(|s| s.borrow().last().copied())
    }

    /// Finished spans still in the ring, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().buf.iter().cloned().collect()
    }

    /// Events still in the ring, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        self.events.lock().buf.iter().cloned().collect()
    }

    /// `(spans_evicted, events_evicted)` — how much the rings dropped.
    pub fn evicted(&self) -> (u64, u64) {
        (self.spans.lock().dropped, self.events.lock().dropped)
    }

    fn finish(&self, record: SpanRecord) {
        ACTIVE_SPANS.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == record.id) {
                stack.remove(pos);
            }
        });
        self.spans.lock().push(record);
    }
}

/// RAII guard for an in-flight span; records the span when dropped.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    id: SpanId,
    parent: Option<SpanId>,
    subsystem: &'static str,
    name: &'static str,
    start_logical: u64,
    started: Instant,
}

impl SpanGuard<'_> {
    /// This span's id (stable before and after the guard drops).
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end_logical = self.tracer.logical.fetch_add(1, Ordering::Relaxed);
        self.tracer.finish(SpanRecord {
            id: self.id,
            parent: self.parent,
            subsystem: self.subsystem,
            name: self.name,
            start_logical: self.start_logical,
            end_logical,
            wall_us: self.started.elapsed().as_micros() as u64,
        });
    }
}

/// `span!(obs, "subsystem", "name")` — start a span on an [`crate::Obs`]
/// handle, returning the guard.
#[macro_export]
macro_rules! span {
    ($obs:expr, $subsystem:expr, $name:expr) => {
        $obs.tracer().span($subsystem, $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_wall_and_logical_time() {
        let t = Tracer::new(16);
        {
            let _g = t.span("test", "outer");
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "outer");
        assert!(spans[0].end_logical > spans[0].start_logical);
    }

    #[test]
    fn nested_spans_report_parentage() {
        let t = Tracer::new(16);
        let outer_id;
        let inner_id;
        {
            let outer = t.span("test", "outer");
            outer_id = outer.id();
            {
                let inner = t.span("test", "inner");
                inner_id = inner.id();
                assert_eq!(t.current_span(), Some(inner_id));
            }
            assert_eq!(t.current_span(), Some(outer_id));
        }
        let spans = t.spans();
        // inner finished first
        assert_eq!(spans[0].id, inner_id);
        assert_eq!(spans[0].parent, Some(outer_id));
        assert_eq!(spans[1].id, outer_id);
        assert_eq!(spans[1].parent, None);
    }

    #[test]
    fn events_attach_to_active_span() {
        let t = Tracer::new(16);
        t.event("test", "orphan", &[("n", 1)]);
        let id = {
            let g = t.span("test", "op");
            t.event("test", "inside", &[("bytes", 42)]);
            g.id()
        };
        let events = t.events();
        assert_eq!(events[0].span, None);
        assert_eq!(events[1].span, Some(id));
        assert_eq!(events[1].fields, vec![("bytes", 42)]);
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let t = Tracer::new(4);
        for _ in 0..10 {
            let _g = t.span("test", "s");
        }
        assert_eq!(t.spans().len(), 4);
        assert_eq!(t.evicted().0, 6);
    }
}

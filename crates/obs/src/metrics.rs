//! Metric primitives and the registry that names them.
//!
//! Hot-path discipline: every mutation is a single atomic RMW on a handle
//! (`Arc<Counter>`, `Arc<Gauge>`, `Arc<Histogram>`) that instrumented
//! code obtains once and caches (typically in a `OnceLock`). The
//! registry's own lock is taken only at registration and snapshot time,
//! never per-observation, so counters stay race-free without serializing
//! the subsystems they measure.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use impliance_analysis::TrackedRwLock;

use crate::snapshot::HistogramSnapshot;

/// Default latency bucket upper bounds, in microseconds. A final
/// implicit `+inf` bucket catches everything above the last bound.
pub const LATENCY_BUCKETS_US: [u64; 12] =
    [1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 5_000, 25_000];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depths, live bytes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram. Bounds are upper bounds (inclusive),
/// ascending; one extra bucket counts observations above the last bound.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: sorted,
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation. Lock-free: three relaxed atomic RMWs.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| v > b);
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Bucket upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; one longer than `bounds()` (overflow last).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy for serialization.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.bucket_counts(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// The named-metric registry. `counter`/`gauge`/`histogram` are
/// get-or-register: the first caller creates the metric, later callers
/// (any thread) receive the same handle.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: TrackedRwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: TrackedRwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: TrackedRwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            counters: TrackedRwLock::new("obs.metrics.counters", BTreeMap::new()),
            gauges: TrackedRwLock::new("obs.metrics.gauges", BTreeMap::new()),
            histograms: TrackedRwLock::new("obs.metrics.histograms", BTreeMap::new()),
        }
    }

    /// Get or register a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        {
            let map = self.counters.read();
            if let Some(c) = map.get(name) {
                return Arc::clone(c);
            }
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        {
            let map = self.gauges.read();
            if let Some(g) = map.get(name) {
                return Arc::clone(g);
            }
        }
        Arc::clone(
            self.gauges
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// Get or register a histogram. `bounds` only applies on first
    /// registration; later callers inherit the existing buckets.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        {
            let map = self.histograms.read();
            if let Some(h) = map.get(name) {
                return Arc::clone(h);
            }
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Point-in-time counter values, sorted by name.
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Point-in-time gauge values, sorted by name.
    pub fn gauge_values(&self) -> BTreeMap<String, i64> {
        self.gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Point-in-time histogram snapshots, sorted by name.
    pub fn histogram_values(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = MetricsRegistry::new();
        let c = r.counter("x.count");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("x.count").get(), 5, "same handle by name");
        let g = r.gauge("x.depth");
        g.set(10);
        g.add(-3);
        assert_eq!(r.gauge("x.depth").get(), 7);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat", &[10, 100]);
        for v in [0, 10, 11, 100, 101, 5_000] {
            h.observe(v);
        }
        // <=10 → bucket 0; 11..=100 → bucket 1; >100 → overflow
        assert_eq!(h.bucket_counts(), vec![2, 2, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 0 + 10 + 11 + 100 + 101 + 5_000);
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduped() {
        let r = MetricsRegistry::new();
        let h = r.histogram("h", &[100, 10, 100, 1]);
        assert_eq!(h.bounds(), &[1, 10, 100]);
        assert_eq!(h.bucket_counts().len(), 4);
    }

    #[test]
    fn registry_snapshot_values() {
        let r = MetricsRegistry::new();
        r.counter("a").add(2);
        r.gauge("b").set(-1);
        r.histogram("c", &[5]).observe(3);
        assert_eq!(r.counter_values().get("a"), Some(&2));
        assert_eq!(r.gauge_values().get("b"), Some(&-1));
        let h = &r.histogram_values()["c"];
        assert_eq!(h.buckets, vec![1, 0]);
    }
}

//! `impliance-obs`: the workspace-wide observability layer.
//!
//! The Impliance paper's §3 claims (where a stage runs, how many bytes
//! cross the interconnect, how background annotation interleaves with
//! queries) are only falsifiable if the system reports on itself. This
//! crate is that substrate, with zero external dependencies:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   histograms. The hot path is lock-free: instrumented code caches the
//!   `Arc` handles and every observation is a relaxed atomic RMW.
//! * [`Tracer`] — `span!`-style RAII guards recording wall and logical
//!   time with parent/child nesting, plus per-subsystem structured
//!   events, retained in bounded ring buffers.
//! * [`Snapshot`] — a point-in-time copy of everything above,
//!   serializable to deterministic JSON.
//!
//! Subsystems instrument against [`global()`]; tests construct local
//! [`Obs`] instances for deterministic assertions.

pub mod metrics;
pub mod snapshot;
pub mod trace;

use std::sync::OnceLock;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, LATENCY_BUCKETS_US};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use trace::{EventRecord, SpanGuard, SpanId, SpanRecord, Tracer};

/// One observability domain: a metrics registry plus a tracer.
#[derive(Debug)]
pub struct Obs {
    metrics: MetricsRegistry,
    tracer: Tracer,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// An observability domain retaining up to 4096 spans and events.
    pub fn new() -> Obs {
        Obs::with_capacity(4096)
    }

    /// An observability domain with an explicit trace-ring capacity.
    pub fn with_capacity(trace_capacity: usize) -> Obs {
        Obs {
            metrics: MetricsRegistry::new(),
            tracer: Tracer::new(trace_capacity),
        }
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Freeze everything into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.metrics.counter_values(),
            gauges: self.metrics.gauge_values(),
            histograms: self.metrics.histogram_values(),
            spans: self.tracer.spans(),
            events: self.tracer.events(),
        }
    }
}

/// The process-wide observability domain every subsystem reports into.
pub fn global() -> &'static Obs {
    static GLOBAL: OnceLock<Obs> = OnceLock::new();
    GLOBAL.get_or_init(Obs::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_a_singleton() {
        let a = global() as *const Obs;
        let b = global() as *const Obs;
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_captures_all_three_metric_kinds_and_traces() {
        let obs = Obs::with_capacity(8);
        obs.metrics().counter("c").add(3);
        obs.metrics().gauge("g").set(-2);
        obs.metrics().histogram("h", &[10]).observe(4);
        {
            let _g = span!(obs, "test", "op");
            obs.tracer().event("test", "evt", &[("k", 1)]);
        }
        let snap = obs.snapshot();
        assert_eq!(snap.counters["c"], 3);
        assert_eq!(snap.gauges["g"], -2);
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.nonzero_counters_with_prefix("c"), 1);
        assert_eq!(snap.nonzero_counters_with_prefix("zzz"), 0);
    }
}

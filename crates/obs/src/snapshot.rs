//! Point-in-time snapshots of everything the observability layer holds,
//! serializable to deterministic JSON (BTreeMap ordering; the JSON layer
//! is the dependency-free writer from `impliance-analysis`).

use std::collections::BTreeMap;

use impliance_analysis::Json;

use crate::trace::{EventRecord, SpanRecord};

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (ascending; overflow bucket implicit).
    pub bounds: Vec<u64>,
    /// Per-bucket counts, one longer than `bounds`.
    pub buckets: Vec<u64>,
    /// Sum of observed values.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    fn to_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert(
            "bounds".to_string(),
            Json::Arr(self.bounds.iter().map(|&b| Json::Num(b as f64)).collect()),
        );
        obj.insert(
            "buckets".to_string(),
            Json::Arr(self.buckets.iter().map(|&b| Json::Num(b as f64)).collect()),
        );
        obj.insert("sum".to_string(), Json::Num(self.sum as f64));
        obj.insert("count".to_string(), Json::Num(self.count as f64));
        Json::Obj(obj)
    }
}

/// A full observability snapshot: metrics plus the trace-ring contents.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Finished spans still retained, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Events still retained, oldest first.
    pub events: Vec<EventRecord>,
}

impl Snapshot {
    /// The deterministic half of the snapshot: counters, gauges, and
    /// histograms only — no wall-clock times, no span ids. Suitable for
    /// golden tests.
    pub fn metrics_json(&self) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert(
            "counters".to_string(),
            Json::Obj(
                self.counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
                    .collect(),
            ),
        );
        obj.insert(
            "gauges".to_string(),
            Json::Obj(
                self.gauges
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
                    .collect(),
            ),
        );
        obj.insert(
            "histograms".to_string(),
            Json::Obj(
                self.histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json()))
                    .collect(),
            ),
        );
        Json::Obj(obj)
    }

    /// The full snapshot as JSON, including span and event trails.
    pub fn to_json(&self) -> Json {
        let mut obj = match self.metrics_json() {
            Json::Obj(m) => m,
            _ => BTreeMap::new(),
        };
        obj.insert(
            "spans".to_string(),
            Json::Arr(self.spans.iter().map(span_json).collect()),
        );
        obj.insert(
            "events".to_string(),
            Json::Arr(self.events.iter().map(event_json).collect()),
        );
        Json::Obj(obj)
    }

    /// How many counters with the given name prefix are nonzero — the
    /// quick "did subsystem X actually report?" check.
    pub fn nonzero_counters_with_prefix(&self, prefix: &str) -> usize {
        self.counters
            .iter()
            .filter(|(k, &v)| k.starts_with(prefix) && v > 0)
            .count()
    }
}

fn span_json(s: &SpanRecord) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert("id".to_string(), Json::Num(s.id.0 as f64));
    obj.insert(
        "parent".to_string(),
        s.parent.map_or(Json::Null, |p| Json::Num(p.0 as f64)),
    );
    obj.insert("subsystem".to_string(), Json::Str(s.subsystem.to_string()));
    obj.insert("name".to_string(), Json::Str(s.name.to_string()));
    obj.insert(
        "start_logical".to_string(),
        Json::Num(s.start_logical as f64),
    );
    obj.insert("end_logical".to_string(), Json::Num(s.end_logical as f64));
    obj.insert("wall_us".to_string(), Json::Num(s.wall_us as f64));
    Json::Obj(obj)
}

fn event_json(e: &EventRecord) -> Json {
    let mut obj = BTreeMap::new();
    obj.insert(
        "span".to_string(),
        e.span.map_or(Json::Null, |s| Json::Num(s.0 as f64)),
    );
    obj.insert("subsystem".to_string(), Json::Str(e.subsystem.to_string()));
    obj.insert("name".to_string(), Json::Str(e.name.to_string()));
    obj.insert("logical".to_string(), Json::Num(e.logical as f64));
    obj.insert(
        "fields".to_string(),
        Json::Obj(
            e.fields
                .iter()
                .map(|&(k, v)| (k.to_string(), Json::Num(v as f64)))
                .collect(),
        ),
    );
    Json::Obj(obj)
}

//! Block encryption inside the storage node.
//!
//! §3.1: "Another good example for pushing down logic is compression and
//! encryption. The former is crucial for dealing with large amounts of
//! data, and the latter might be required for security reasons."
//!
//! Segments are encrypted (after compression) with XTEA in counter mode:
//! a well-known 64-bit block cipher that is simple to implement from
//! scratch. **Simulation-grade only** — the experiment under test is
//! *where* encryption runs (at the storage node, so plaintext never
//! crosses the interconnect), not cryptographic strength; a production
//! appliance would swap in AES-GCM behind the same two functions.

/// A 128-bit segment-encryption key.
pub type Key = [u8; 16];

const ROUNDS: u32 = 32;
const DELTA: u32 = 0x9E3779B9;

fn key_words(key: &Key) -> [u32; 4] {
    [
        u32::from_le_bytes([key[0], key[1], key[2], key[3]]),
        u32::from_le_bytes([key[4], key[5], key[6], key[7]]),
        u32::from_le_bytes([key[8], key[9], key[10], key[11]]),
        u32::from_le_bytes([key[12], key[13], key[14], key[15]]),
    ]
}

/// XTEA encryption of one 64-bit block.
fn xtea_encrypt_block(k: &[u32; 4], block: u64) -> u64 {
    let mut v0 = (block >> 32) as u32;
    let mut v1 = block as u32;
    let mut sum: u32 = 0;
    for _ in 0..ROUNDS {
        v0 = v0.wrapping_add(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1)) ^ (sum.wrapping_add(k[(sum & 3) as usize])),
        );
        sum = sum.wrapping_add(DELTA);
        v1 = v1.wrapping_add(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(k[((sum >> 11) & 3) as usize])),
        );
    }
    (u64::from(v0) << 32) | u64::from(v1)
}

/// Encrypt or decrypt a buffer in place with XTEA-CTR. CTR mode is its
/// own inverse, so one function serves both directions. `nonce`
/// distinguishes segments so identical plaintexts never share keystream.
pub fn ctr_crypt(key: &Key, nonce: u64, data: &mut [u8]) {
    let k = key_words(key);
    let mut counter: u64 = 0;
    for chunk in data.chunks_mut(8) {
        let keystream = xtea_encrypt_block(&k, nonce ^ counter).to_le_bytes();
        for (byte, ks) in chunk.iter_mut().zip(keystream.iter()) {
            *byte ^= ks;
        }
        counter = counter.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: Key = *b"0123456789abcdef";

    #[test]
    fn ctr_is_its_own_inverse() {
        let original: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut data = original.clone();
        ctr_crypt(&KEY, 42, &mut data);
        assert_ne!(data, original, "ciphertext must differ");
        ctr_crypt(&KEY, 42, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_differ() {
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ctr_crypt(&KEY, 1, &mut a);
        ctr_crypt(&KEY, 2, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn different_keys_differ() {
        let mut a = vec![7u8; 64];
        let mut b = vec![7u8; 64];
        ctr_crypt(&KEY, 1, &mut a);
        ctr_crypt(b"fedcba9876543210", 1, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn wrong_key_does_not_decrypt() {
        let original = b"confidential claim detail".to_vec();
        let mut data = original.clone();
        ctr_crypt(&KEY, 9, &mut data);
        ctr_crypt(b"fedcba9876543210", 9, &mut data);
        assert_ne!(data, original);
    }

    #[test]
    fn non_block_aligned_lengths() {
        for len in [0usize, 1, 7, 8, 9, 15, 17] {
            let original: Vec<u8> = (0..len as u8).collect();
            let mut data = original.clone();
            ctr_crypt(&KEY, 3, &mut data);
            ctr_crypt(&KEY, 3, &mut data);
            assert_eq!(data, original, "len {len}");
        }
    }

    #[test]
    fn xtea_known_shape() {
        // encrypting zero with the zero key must be stable (regression
        // pin for the implementation)
        let k = key_words(&[0u8; 16]);
        let c = xtea_encrypt_block(&k, 0);
        assert_eq!(c, xtea_encrypt_block(&k, 0));
        assert_ne!(c, 0);
    }
}

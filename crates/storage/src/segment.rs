//! Immutable on-"disk" segments.
//!
//! A segment is a sealed, optionally compressed block of encoded document
//! versions plus an offset table. Segments are write-once — the physical
//! realization of the paper's immutable versioning (§3.2/§4): "This
//! versioning obviates the need to update all replicas of a document
//! consistently and synchronously."

use std::collections::{BTreeSet, HashMap};

use bytes::Bytes;
use impliance_docmodel::{DocId, Document, Value, Version};

use crate::codec;
use crate::compress;
use crate::crypt;
use crate::error::StorageError;
use crate::memtable::MemEntry;

/// Distinct-string cap for a complete per-path dictionary in a zone map.
pub const ZONE_DICT_MAX: usize = 16;

/// Summary of the leaf values observed at one structural path across a
/// whole segment, used to skip the segment before decryption/decompression
/// when a pushed-down predicate provably matches nothing in it.
///
/// Counters are split by the `Value` total-order rank (null / bool /
/// numeric / string / bytes) because every comparison between different
/// ranks has a constant outcome — that constant is what makes conservative
/// pruning possible without inspecting values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathZone {
    /// Leaves holding `Value::Null`.
    pub nulls: u64,
    /// Leaves holding `Value::Bool`.
    pub bools: u64,
    /// Leaves holding numeric-rank values (`Int`/`Float`/`Timestamp`).
    pub numerics: u64,
    /// Leaves holding `Value::Str`.
    pub strings: u64,
    /// Leaves holding `Value::Bytes`.
    pub bytes: u64,
    /// Minimum numeric value (under `f64::total_cmp`), when any exist.
    pub min: Option<f64>,
    /// Maximum numeric value (under `f64::total_cmp`), when any exist.
    pub max: Option<f64>,
    /// The complete sorted set of distinct strings at this path, present
    /// only when there are at most [`ZONE_DICT_MAX`] of them. `None`
    /// means "too many to enumerate" — string pruning is then disabled.
    pub dict: Option<Vec<String>>,
}

impl PathZone {
    fn observe(&mut self, v: &Value, dict: &mut Option<BTreeSet<String>>) {
        match v {
            Value::Null => self.nulls += 1,
            Value::Bool(_) => self.bools += 1,
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => {
                self.numerics += 1;
                let f = v.as_f64().unwrap_or(f64::NAN);
                self.min = Some(match self.min {
                    Some(m) if m.total_cmp(&f).is_le() => m,
                    _ => f,
                });
                self.max = Some(match self.max {
                    Some(m) if m.total_cmp(&f).is_ge() => m,
                    _ => f,
                });
            }
            Value::Str(s) => {
                self.strings += 1;
                if let Some(set) = dict {
                    if set.len() < ZONE_DICT_MAX || set.contains(s) {
                        set.insert(s.clone());
                    } else {
                        *dict = None;
                    }
                }
            }
            Value::Bytes(_) => self.bytes += 1,
        }
    }
}

/// Per-segment zone map: one [`PathZone`] per structural path observed in
/// any stored document version. Built at seal time (the only moment the
/// plaintext is already in hand), so maintenance costs one extra decode
/// pass per seal and nothing per query.
#[derive(Debug, Clone, Default)]
pub struct ZoneMap {
    /// Structural path → value summary.
    pub paths: HashMap<String, PathZone>,
    /// Document versions summarized.
    pub docs: u64,
}

impl ZoneMap {
    fn build(entries: &[MemEntry]) -> Option<ZoneMap> {
        let mut zone = ZoneMap::default();
        let mut dicts: HashMap<String, Option<BTreeSet<String>>> = HashMap::new();
        for e in entries {
            // GC-tombstoned entries have no bytes and no readers (their
            // chain entries are gone); they contribute nothing to prune on.
            if e.encoded.is_empty() {
                continue;
            }
            // A decode failure disables pruning for the whole segment
            // rather than risking a wrong skip.
            let (doc, _) = codec::decode_document(&e.encoded, 0).ok()?;
            zone.docs += 1;
            for (path, value) in doc.leaves() {
                let key = path.structural_form();
                let pz = zone.paths.entry(key.clone()).or_default();
                let dict = dicts.entry(key).or_insert_with(|| Some(BTreeSet::new()));
                pz.observe(value, dict);
            }
        }
        for (key, dict) in dicts {
            if let Some(pz) = zone.paths.get_mut(&key) {
                pz.dict = dict.map(|set| set.into_iter().collect());
            }
        }
        Some(zone)
    }
}

/// Directory entry for one document version inside a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Document id.
    pub id: DocId,
    /// Version stored.
    pub version: Version,
    /// Byte offset in the (uncompressed) data block.
    pub offset: u32,
    /// Encoded length in bytes.
    pub len: u32,
}

/// A sealed, immutable run of encoded documents.
#[derive(Debug, Clone)]
pub struct Segment {
    directory: Vec<SegmentEntry>,
    /// Stored data: compressed or raw depending on `compressed`, then
    /// optionally encrypted.
    data: Bytes,
    compressed: bool,
    /// Encryption key + per-segment nonce, when the block is encrypted.
    encryption: Option<(crypt::Key, u64)>,
    raw_len: usize,
    /// Value summaries for zone-based skipping; `None` when any entry
    /// failed to decode at seal time (pruning disabled, scans stay exact).
    zone_map: Option<ZoneMap>,
}

impl Segment {
    /// Seal a drained memtable into a segment. When `compress` is set the
    /// data block is LZ-compressed as a unit; when a key is given the
    /// (possibly compressed) block is encrypted with a fresh nonce.
    pub fn seal(entries: Vec<MemEntry>, compress_block: bool) -> Segment {
        Segment::seal_with(entries, compress_block, None, 0)
    }

    /// Seal with optional encryption (`nonce` must be unique per segment
    /// under one key; the partition uses its running segment count).
    pub fn seal_with(
        entries: Vec<MemEntry>,
        compress_block: bool,
        key: Option<crypt::Key>,
        nonce: u64,
    ) -> Segment {
        let zone_map = ZoneMap::build(&entries);
        let mut directory = Vec::with_capacity(entries.len());
        let mut data = Vec::new();
        for e in entries {
            directory.push(SegmentEntry {
                id: e.id,
                version: e.version,
                offset: data.len() as u32,
                len: e.encoded.len() as u32,
            });
            data.extend_from_slice(&e.encoded);
        }
        let raw_len = data.len();
        let mut stored = if compress_block {
            compress::lz_compress(&data)
        } else {
            data
        };
        let encryption = key.map(|k| {
            crypt::ctr_crypt(&k, nonce, &mut stored);
            (k, nonce)
        });
        Segment {
            directory,
            data: Bytes::from(stored),
            compressed: compress_block,
            encryption,
            raw_len,
            zone_map,
        }
    }

    /// The segment's zone map, when one could be built at seal time.
    pub fn zone_map(&self) -> Option<&ZoneMap> {
        self.zone_map.as_ref()
    }

    /// Number of document versions in the segment.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// True when the segment holds no documents.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Bytes occupied by the stored (possibly compressed) data block.
    pub fn stored_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bytes the data block occupies uncompressed.
    pub fn raw_bytes(&self) -> usize {
        self.raw_len
    }

    /// Whether the block is compressed.
    pub fn is_compressed(&self) -> bool {
        self.compressed
    }

    /// The directory of entries.
    pub fn directory(&self) -> &[SegmentEntry] {
        &self.directory
    }

    /// Whether the block is encrypted at rest.
    pub fn is_encrypted(&self) -> bool {
        self.encryption.is_some()
    }

    /// Materialize the plaintext, uncompressed data block — the
    /// decrypt-then-decompress a real storage node performs on block read.
    pub fn load_block(&self) -> Result<Bytes, StorageError> {
        let mut stored = self.data.to_vec();
        if let Some((key, nonce)) = &self.encryption {
            crypt::ctr_crypt(key, *nonce, &mut stored);
        }
        if self.compressed {
            Ok(Bytes::from(compress::lz_decompress(&stored)?))
        } else {
            Ok(Bytes::from(stored))
        }
    }

    /// Decode the document at directory index `idx` (decompresses the block
    /// if needed).
    pub fn get(&self, idx: usize) -> Result<Document, StorageError> {
        let entry = self.directory[idx];
        let block = self.load_block()?;
        let start = entry.offset as usize;
        let end = start + entry.len as usize;
        let (doc, _) = codec::decode_document(&block[start..end], 0)?;
        Ok(doc)
    }

    /// Decode every document, visiting them in append order with their
    /// encoded length. One block decompression amortized over the whole
    /// scan — the access pattern the paper's data nodes are sized for.
    pub fn scan(
        &self,
        mut visit: impl FnMut(Document, usize) -> Result<(), StorageError>,
    ) -> Result<(), StorageError> {
        let block = self.load_block()?;
        for entry in &self.directory {
            // Skip GC-tombstoned (zero-length) entries.
            if entry.len == 0 {
                continue;
            }
            let start = entry.offset as usize;
            let end = start + entry.len as usize;
            let (doc, _) = codec::decode_document(&block[start..end], 0)?;
            visit(doc, entry.len as usize)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memtable::Memtable;
    use impliance_docmodel::{DocumentBuilder, SourceFormat};

    fn entries(n: u64) -> Vec<MemEntry> {
        let mut m = Memtable::new();
        for i in 0..n {
            let d = DocumentBuilder::new(DocId(i), SourceFormat::Json, "c")
                .field("x", i as i64)
                .field("pad", "some repeated text some repeated text")
                .build();
            m.put(&d);
        }
        m.drain()
    }

    #[test]
    fn seal_and_get_uncompressed() {
        let s = Segment::seal(entries(10), false);
        assert_eq!(s.len(), 10);
        assert!(!s.is_compressed());
        let d = s.get(3).unwrap();
        assert_eq!(d.id(), DocId(3));
    }

    #[test]
    fn seal_and_get_compressed() {
        let s = Segment::seal(entries(50), true);
        assert!(s.is_compressed());
        assert!(
            s.stored_bytes() < s.raw_bytes(),
            "compression should shrink repeated text"
        );
        for i in [0usize, 25, 49] {
            assert_eq!(s.get(i).unwrap().id(), DocId(i as u64));
        }
    }

    #[test]
    fn scan_visits_all_in_order() {
        let s = Segment::seal(entries(20), true);
        let mut seen = Vec::new();
        s.scan(|d, len| {
            assert!(len > 0);
            seen.push(d.id().0);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn zone_map_summarizes_paths() {
        let s = Segment::seal(entries(10), true);
        let z = s.zone_map().expect("zone map");
        assert_eq!(z.docs, 10);
        let x = &z.paths["x"];
        assert_eq!(x.numerics, 10);
        assert_eq!(x.min, Some(0.0));
        assert_eq!(x.max, Some(9.0));
        assert_eq!(x.strings, 0);
        let pad = &z.paths["pad"];
        assert_eq!(pad.strings, 10);
        let dict = pad.dict.as_ref().expect("small dict stays complete");
        assert_eq!(dict.len(), 1);
    }

    #[test]
    fn zone_dict_gives_up_past_cap() {
        let mut m = Memtable::new();
        for i in 0..(ZONE_DICT_MAX as u64 + 5) {
            let d = DocumentBuilder::new(DocId(i), SourceFormat::Json, "c")
                .field("tag", format!("tag-{i}"))
                .build();
            m.put(&d);
        }
        let s = Segment::seal(m.drain(), false);
        let z = s.zone_map().expect("zone map");
        assert!(z.paths["tag"].dict.is_none());
        assert_eq!(z.paths["tag"].strings, ZONE_DICT_MAX as u64 + 5);
    }

    #[test]
    fn empty_segment() {
        let s = Segment::seal(Vec::new(), true);
        assert!(s.is_empty());
        assert_eq!(s.raw_bytes(), 0);
        s.scan(|_, _| panic!("no docs")).unwrap();
    }
}

//! Immutable on-"disk" segments.
//!
//! A segment is a sealed, optionally compressed block of encoded document
//! versions plus an offset table. Segments are write-once — the physical
//! realization of the paper's immutable versioning (§3.2/§4): "This
//! versioning obviates the need to update all replicas of a document
//! consistently and synchronously."

use bytes::Bytes;
use impliance_docmodel::{DocId, Document, Version};

use crate::codec;
use crate::compress;
use crate::crypt;
use crate::error::StorageError;
use crate::memtable::MemEntry;

/// Directory entry for one document version inside a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Document id.
    pub id: DocId,
    /// Version stored.
    pub version: Version,
    /// Byte offset in the (uncompressed) data block.
    pub offset: u32,
    /// Encoded length in bytes.
    pub len: u32,
}

/// A sealed, immutable run of encoded documents.
#[derive(Debug, Clone)]
pub struct Segment {
    directory: Vec<SegmentEntry>,
    /// Stored data: compressed or raw depending on `compressed`, then
    /// optionally encrypted.
    data: Bytes,
    compressed: bool,
    /// Encryption key + per-segment nonce, when the block is encrypted.
    encryption: Option<(crypt::Key, u64)>,
    raw_len: usize,
}

impl Segment {
    /// Seal a drained memtable into a segment. When `compress` is set the
    /// data block is LZ-compressed as a unit; when a key is given the
    /// (possibly compressed) block is encrypted with a fresh nonce.
    pub fn seal(entries: Vec<MemEntry>, compress_block: bool) -> Segment {
        Segment::seal_with(entries, compress_block, None, 0)
    }

    /// Seal with optional encryption (`nonce` must be unique per segment
    /// under one key; the partition uses its running segment count).
    pub fn seal_with(
        entries: Vec<MemEntry>,
        compress_block: bool,
        key: Option<crypt::Key>,
        nonce: u64,
    ) -> Segment {
        let mut directory = Vec::with_capacity(entries.len());
        let mut data = Vec::new();
        for e in entries {
            directory.push(SegmentEntry {
                id: e.id,
                version: e.version,
                offset: data.len() as u32,
                len: e.encoded.len() as u32,
            });
            data.extend_from_slice(&e.encoded);
        }
        let raw_len = data.len();
        let mut stored = if compress_block {
            compress::lz_compress(&data)
        } else {
            data
        };
        let encryption = key.map(|k| {
            crypt::ctr_crypt(&k, nonce, &mut stored);
            (k, nonce)
        });
        Segment {
            directory,
            data: Bytes::from(stored),
            compressed: compress_block,
            encryption,
            raw_len,
        }
    }

    /// Number of document versions in the segment.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// True when the segment holds no documents.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Bytes occupied by the stored (possibly compressed) data block.
    pub fn stored_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bytes the data block occupies uncompressed.
    pub fn raw_bytes(&self) -> usize {
        self.raw_len
    }

    /// Whether the block is compressed.
    pub fn is_compressed(&self) -> bool {
        self.compressed
    }

    /// The directory of entries.
    pub fn directory(&self) -> &[SegmentEntry] {
        &self.directory
    }

    /// Whether the block is encrypted at rest.
    pub fn is_encrypted(&self) -> bool {
        self.encryption.is_some()
    }

    /// Materialize the plaintext, uncompressed data block — the
    /// decrypt-then-decompress a real storage node performs on block read.
    pub fn load_block(&self) -> Result<Bytes, StorageError> {
        let mut stored = self.data.to_vec();
        if let Some((key, nonce)) = &self.encryption {
            crypt::ctr_crypt(key, *nonce, &mut stored);
        }
        if self.compressed {
            Ok(Bytes::from(compress::lz_decompress(&stored)?))
        } else {
            Ok(Bytes::from(stored))
        }
    }

    /// Decode the document at directory index `idx` (decompresses the block
    /// if needed).
    pub fn get(&self, idx: usize) -> Result<Document, StorageError> {
        let entry = self.directory[idx];
        let block = self.load_block()?;
        let start = entry.offset as usize;
        let end = start + entry.len as usize;
        let (doc, _) = codec::decode_document(&block[start..end], 0)?;
        Ok(doc)
    }

    /// Decode every document, visiting them in append order with their
    /// encoded length. One block decompression amortized over the whole
    /// scan — the access pattern the paper's data nodes are sized for.
    pub fn scan(
        &self,
        mut visit: impl FnMut(Document, usize) -> Result<(), StorageError>,
    ) -> Result<(), StorageError> {
        let block = self.load_block()?;
        for entry in &self.directory {
            let start = entry.offset as usize;
            let end = start + entry.len as usize;
            let (doc, _) = codec::decode_document(&block[start..end], 0)?;
            visit(doc, entry.len as usize)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memtable::Memtable;
    use impliance_docmodel::{DocumentBuilder, SourceFormat};

    fn entries(n: u64) -> Vec<MemEntry> {
        let mut m = Memtable::new();
        for i in 0..n {
            let d = DocumentBuilder::new(DocId(i), SourceFormat::Json, "c")
                .field("x", i as i64)
                .field("pad", "some repeated text some repeated text")
                .build();
            m.put(&d);
        }
        m.drain()
    }

    #[test]
    fn seal_and_get_uncompressed() {
        let s = Segment::seal(entries(10), false);
        assert_eq!(s.len(), 10);
        assert!(!s.is_compressed());
        let d = s.get(3).unwrap();
        assert_eq!(d.id(), DocId(3));
    }

    #[test]
    fn seal_and_get_compressed() {
        let s = Segment::seal(entries(50), true);
        assert!(s.is_compressed());
        assert!(
            s.stored_bytes() < s.raw_bytes(),
            "compression should shrink repeated text"
        );
        for i in [0usize, 25, 49] {
            assert_eq!(s.get(i).unwrap().id(), DocId(i as u64));
        }
    }

    #[test]
    fn scan_visits_all_in_order() {
        let s = Segment::seal(entries(20), true);
        let mut seen = Vec::new();
        s.scan(|d, len| {
            assert!(len > 0);
            seen.push(d.id().0);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn empty_segment() {
        let s = Segment::seal(Vec::new(), true);
        assert!(s.is_empty());
        assert_eq!(s.raw_bytes(), 0);
        s.scan(|_, _| panic!("no docs")).unwrap();
    }
}

//! Per-partition statistics.
//!
//! The simple planner of §3.3 deliberately avoids "maintaining complex
//! statistics" — but the *baseline* cost-based optimizer (built for
//! experiment C1) needs them, and the storage manager uses cheap counters
//! for placement. Statistics are folded in on every put; they are
//! monotone summaries, never recomputed, so their maintenance cost is O(1)
//! per leaf.

use std::collections::HashMap;

use impliance_docmodel::{Document, Value};

/// A fixed-width histogram over a numeric path's observed range. Buckets
/// adapt by widening: when a value falls outside the current range the
/// histogram rescales (halving resolution) rather than re-reading data.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `n` buckets spanning an initial guess range.
    pub fn new(n: usize) -> Histogram {
        Histogram {
            lo: 0.0,
            hi: 1.0,
            buckets: vec![0; n.max(2)],
            total: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.total == 0 {
            self.lo = v;
            self.hi = v + 1.0;
        }
        while v < self.lo || v >= self.hi {
            self.rescale(v);
        }
        let idx = (((v - self.lo) / (self.hi - self.lo)) * self.buckets.len() as f64) as usize;
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.total += 1;
    }

    fn rescale(&mut self, toward: f64) {
        // Double the range toward the out-of-range value, merging bucket
        // pairs to keep counts approximately placed.
        let width = self.hi - self.lo;
        let (new_lo, new_hi) = if toward < self.lo {
            (self.lo - width, self.hi)
        } else {
            (self.lo, self.hi + width)
        };
        let n = self.buckets.len();
        let mut merged = vec![0u64; n];
        for (i, &c) in self.buckets.iter().enumerate() {
            // old bucket center
            let center = self.lo + (i as f64 + 0.5) * width / n as f64;
            let j = (((center - new_lo) / (new_hi - new_lo)) * n as f64) as usize;
            merged[j.min(n - 1)] += c;
        }
        self.lo = new_lo;
        self.hi = new_hi;
        self.buckets = merged;
    }

    /// Estimate the fraction of observations ≤ `v` (cumulative frequency).
    pub fn cdf(&self, v: f64) -> f64 {
        if self.total == 0 {
            return 0.5;
        }
        if v < self.lo {
            return 0.0;
        }
        if v >= self.hi {
            return 1.0;
        }
        let n = self.buckets.len() as f64;
        let pos = (v - self.lo) / (self.hi - self.lo) * n;
        let full = pos.floor() as usize;
        let mut acc: u64 = self.buckets[..full].iter().sum();
        // linear interpolation inside the partial bucket
        let frac = pos - pos.floor();
        acc += (self.buckets.get(full).copied().unwrap_or(0) as f64 * frac) as u64;
        acc as f64 / self.total as f64
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// A small fixed-register cardinality estimator (HyperLogLog with 256
/// registers), used for distinct-value estimates per path.
#[derive(Debug, Clone)]
pub struct DistinctEstimator {
    registers: [u8; 256],
}

impl Default for DistinctEstimator {
    fn default() -> Self {
        DistinctEstimator {
            registers: [0; 256],
        }
    }
}

impl DistinctEstimator {
    /// Fold in one rendered value.
    pub fn observe(&mut self, s: &str) {
        let h = fnv64(s.as_bytes());
        let idx = (h & 0xff) as usize;
        let rest = h >> 8;
        let rank = (rest.trailing_zeros() + 1).min(56) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated distinct count.
    pub fn estimate(&self) -> f64 {
        let m = 256.0_f64;
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merge another estimator (register-wise max).
    pub fn merge(&mut self, other: &DistinctEstimator) {
        for (a, b) in self.registers.iter_mut().zip(other.registers.iter()) {
            *a = (*a).max(*b);
        }
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Statistics for one structural path.
#[derive(Debug, Clone)]
pub struct PathStats {
    /// Leaves observed at this path.
    pub count: u64,
    /// Minimum observed value.
    pub min: Option<Value>,
    /// Maximum observed value.
    pub max: Option<Value>,
    /// Histogram over numeric observations.
    pub histogram: Histogram,
    /// Distinct-value estimator over rendered values.
    pub distinct: DistinctEstimator,
}

impl Default for PathStats {
    fn default() -> Self {
        PathStats {
            count: 0,
            min: None,
            max: None,
            histogram: Histogram::new(32),
            distinct: DistinctEstimator::default(),
        }
    }
}

impl PathStats {
    /// Fold one leaf value in.
    pub fn observe(&mut self, v: &Value) {
        self.count += 1;
        if let Some(n) = v.as_f64() {
            self.histogram.observe(n);
        }
        self.distinct.observe(&v.render());
        match &self.min {
            None => self.min = Some(v.clone()),
            Some(m) if v.total_cmp(m).is_lt() => self.min = Some(v.clone()),
            _ => {}
        }
        match &self.max {
            None => self.max = Some(v.clone()),
            Some(m) if v.total_cmp(m).is_gt() => self.max = Some(v.clone()),
            _ => {}
        }
    }

    /// Estimated selectivity of an equality predicate on this path.
    pub fn eq_selectivity(&self) -> f64 {
        let d = self.distinct.estimate().max(1.0);
        1.0 / d
    }

    /// Estimated selectivity of `path < v`.
    pub fn lt_selectivity(&self, v: &Value) -> f64 {
        match v.as_f64() {
            Some(n) => self.histogram.cdf(n),
            None => 0.33, // non-numeric guess
        }
    }
}

/// Statistics for one partition: document counts and per-path stats.
#[derive(Debug, Clone, Default)]
pub struct PartitionStats {
    /// Total document versions stored.
    pub doc_versions: u64,
    /// Distinct logical documents (latest map size).
    pub live_docs: u64,
    /// Total encoded bytes.
    pub bytes: u64,
    /// Superseded versions reclaimed by epoch-watermark GC.
    pub versions_reclaimed: u64,
    /// Per-structural-path statistics.
    pub paths: HashMap<String, PathStats>,
}

impl PartitionStats {
    /// Fold a stored document into the statistics.
    pub fn observe_document(&mut self, doc: &Document, encoded_len: usize) {
        self.doc_versions += 1;
        self.bytes += encoded_len as u64;
        for (path, value) in doc.leaves() {
            self.paths
                .entry(path.structural_form())
                .or_default()
                .observe(value);
        }
    }

    /// Merge partition stats (for engine-wide totals).
    pub fn merge(&mut self, other: &PartitionStats) {
        self.doc_versions += other.doc_versions;
        self.live_docs += other.live_docs;
        self.bytes += other.bytes;
        self.versions_reclaimed += other.versions_reclaimed;
        for (k, v) in &other.paths {
            let e = self.paths.entry(k.clone()).or_default();
            e.count += v.count;
            e.distinct.merge(&v.distinct);
            if let Some(m) = &v.min {
                if e.min
                    .as_ref()
                    .map(|cur| m.total_cmp(cur).is_lt())
                    .unwrap_or(true)
                {
                    e.min = Some(m.clone());
                }
            }
            if let Some(m) = &v.max {
                if e.max
                    .as_ref()
                    .map(|cur| m.total_cmp(cur).is_gt())
                    .unwrap_or(true)
                {
                    e.max = Some(m.clone());
                }
            }
            // histograms are approximate; fold counts via observe of bucket
            // centers would distort, so keep the larger one
            if v.histogram.total() > e.histogram.total() {
                e.histogram = v.histogram.clone();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impliance_docmodel::{DocId, DocumentBuilder, SourceFormat};

    #[test]
    fn histogram_cdf_uniform() {
        let mut h = Histogram::new(32);
        for i in 0..1000 {
            h.observe(i as f64);
        }
        let mid = h.cdf(500.0);
        assert!((mid - 0.5).abs() < 0.1, "cdf(500)={mid}");
        assert_eq!(h.cdf(-1.0), 0.0);
        assert_eq!(h.cdf(2000.0), 1.0);
    }

    #[test]
    fn histogram_rescales_for_outliers() {
        let mut h = Histogram::new(16);
        h.observe(1.0);
        h.observe(1_000_000.0);
        h.observe(-1_000_000.0);
        assert_eq!(h.total(), 3);
        assert!(h.cdf(0.0) > 0.0);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let mut h = Histogram::new(8);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn distinct_estimator_in_range() {
        let mut d = DistinctEstimator::default();
        for i in 0..10_000 {
            d.observe(&format!("value-{i}"));
        }
        let est = d.estimate();
        assert!(est > 7_000.0 && est < 13_000.0, "estimate {est}");
    }

    #[test]
    fn distinct_estimator_small_counts() {
        let mut d = DistinctEstimator::default();
        for i in 0..10 {
            d.observe(&format!("v{i}"));
            d.observe(&format!("v{i}")); // duplicates don't inflate
        }
        let est = d.estimate();
        assert!(est > 5.0 && est < 20.0, "estimate {est}");
    }

    #[test]
    fn distinct_merge_is_union_like() {
        let mut a = DistinctEstimator::default();
        let mut b = DistinctEstimator::default();
        for i in 0..500 {
            a.observe(&format!("a{i}"));
            b.observe(&format!("b{i}"));
        }
        a.merge(&b);
        let est = a.estimate();
        assert!(est > 700.0 && est < 1400.0, "estimate {est}");
    }

    #[test]
    fn path_stats_track_min_max_and_selectivity() {
        let mut s = PathStats::default();
        for i in 0..100 {
            s.observe(&Value::Int(i));
        }
        assert_eq!(s.min, Some(Value::Int(0)));
        assert_eq!(s.max, Some(Value::Int(99)));
        assert!(s.eq_selectivity() < 0.05);
        let lt = s.lt_selectivity(&Value::Int(50));
        assert!((lt - 0.5).abs() < 0.15, "lt_selectivity {lt}");
    }

    #[test]
    fn partition_stats_observe_documents() {
        let mut ps = PartitionStats::default();
        for i in 0..10 {
            let d = DocumentBuilder::new(DocId(i), SourceFormat::Json, "c")
                .field("x", i as i64)
                .build();
            ps.observe_document(&d, 50);
        }
        assert_eq!(ps.doc_versions, 10);
        assert_eq!(ps.bytes, 500);
        assert_eq!(ps.paths["x"].count, 10);
    }

    #[test]
    fn partition_stats_merge() {
        let mut a = PartitionStats::default();
        let mut b = PartitionStats::default();
        let d1 = DocumentBuilder::new(DocId(1), SourceFormat::Json, "c")
            .field("x", 1i64)
            .build();
        let d2 = DocumentBuilder::new(DocId(2), SourceFormat::Json, "c")
            .field("x", 99i64)
            .build();
        a.observe_document(&d1, 10);
        b.observe_document(&d2, 20);
        a.merge(&b);
        assert_eq!(a.doc_versions, 2);
        assert_eq!(a.paths["x"].min, Some(Value::Int(1)));
        assert_eq!(a.paths["x"].max, Some(Value::Int(99)));
    }
}

//! Epoch snapshots and the change feed.
//!
//! Every committed write (single-document `put` or multi-document
//! `commit`) advances a monotonic **epoch counter**; each stored version
//! is stamped with the epoch of the commit that produced it. Readers
//! [`pin`](EpochRegistry::pin) the current epoch before scanning and every
//! read path filters version chains to "the latest version whose epoch is
//! ≤ my snapshot", so a query never observes a torn mix of versions:
//! either a commit's documents are all visible (snapshot ≥ commit epoch)
//! or none are.
//!
//! Pins are ref-counted per epoch. The minimum pinned epoch is the
//! **low watermark**: a superseded version whose *successor* committed at
//! or below the watermark can no longer be observed by any live or future
//! snapshot, which is exactly the condition lazy version GC uses to
//! reclaim it (see `Partition::reclaim`).
//!
//! The [`ChangeFeed`] records one `(epoch, DocId)` entry per committed
//! document, in commit order, behind a resumable absolute cursor. The
//! background annotation worker consumes it incrementally and acks its
//! cursor so consumed entries can be truncated; an unacked cursor keeps
//! entries replayable after a worker crash.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use impliance_analysis::TrackedMutex;
use impliance_docmodel::DocId;
use impliance_obs::{Counter, Gauge};

struct EpochObs {
    current: Arc<Gauge>,
    pins: Arc<Gauge>,
    low_watermark: Arc<Gauge>,
    reclaimed: Arc<Counter>,
}

fn epoch_obs() -> &'static EpochObs {
    static OBS: OnceLock<EpochObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let m = impliance_obs::global().metrics();
        EpochObs {
            current: m.gauge("storage.epoch.current"),
            pins: m.gauge("storage.epoch.pins"),
            low_watermark: m.gauge("storage.epoch.low_watermark"),
            reclaimed: m.counter("storage.epoch.reclaimed"),
        }
    })
}

/// Record versions reclaimed by lazy GC in the global registry.
pub(crate) fn observe_reclaimed(n: u64) {
    if n > 0 {
        epoch_obs().reclaimed.add(n);
    }
}

/// Shared epoch state of one storage engine: the monotonic counter, the
/// ref-counted pin table, and the commit lock that serializes epoch
/// publication (so epoch `e` never becomes visible before `e - 1`).
#[derive(Debug)]
pub struct EpochRegistry {
    current: AtomicU64,
    /// epoch → number of outstanding pins at that epoch.
    pins: TrackedMutex<BTreeMap<u64, u64>>,
}

impl Default for EpochRegistry {
    fn default() -> EpochRegistry {
        EpochRegistry {
            current: AtomicU64::new(0),
            pins: TrackedMutex::new("storage.epoch.pins", BTreeMap::new()),
        }
    }
}

impl EpochRegistry {
    /// The latest published epoch.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Acquire)
    }

    /// Publish `epoch` as the latest. Callers must hold the engine's
    /// commit lock so publications stay in order.
    pub(crate) fn publish(&self, epoch: u64) {
        self.current.store(epoch, Ordering::Release);
        epoch_obs().current.set(epoch as i64);
    }

    /// Pin the current epoch, incrementing its ref count, and return it.
    /// Prefer [`Snapshot`] (RAII) over calling this directly.
    pub fn pin_epoch(&self) -> u64 {
        let mut pins = self.pins.lock();
        let e = self.current();
        *pins.entry(e).or_insert(0) += 1;
        epoch_obs().pins.set(pins.values().sum::<u64>() as i64);
        e
    }

    /// Release one pin taken at `epoch`. Unbalanced unpins are ignored.
    pub fn unpin_epoch(&self, epoch: u64) {
        let mut pins = self.pins.lock();
        if let Some(n) = pins.get_mut(&epoch) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&epoch);
            }
        }
        epoch_obs().pins.set(pins.values().sum::<u64>() as i64);
    }

    /// The minimum pinned epoch, or the current epoch when nothing is
    /// pinned. No live or future snapshot can observe state older than
    /// this, so it bounds what lazy GC may reclaim.
    pub fn low_watermark(&self) -> u64 {
        let pins = self.pins.lock();
        let w = pins
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.current());
        epoch_obs().low_watermark.set(w as i64);
        w
    }

    /// Number of outstanding pins (all epochs).
    pub fn pinned(&self) -> u64 {
        self.pins.lock().values().sum()
    }
}

/// An RAII epoch pin: reads executed at `epoch()` see every commit up to
/// that epoch and nothing after. Dropping the snapshot releases the pin
/// (advancing the GC low watermark).
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    registry: Arc<EpochRegistry>,
}

impl Snapshot {
    pub(crate) fn pin(registry: Arc<EpochRegistry>) -> Snapshot {
        let epoch = registry.pin_epoch();
        Snapshot { epoch, registry }
    }

    /// The pinned epoch; pass it as `ScanRequest::snapshot` or to the
    /// `*_at` point reads.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Clone for Snapshot {
    fn clone(&self) -> Snapshot {
        // Re-pin the same epoch (not the current one): clones of a
        // snapshot always agree on what they can see.
        let mut pins = self.registry.pins.lock();
        *pins.entry(self.epoch).or_insert(0) += 1;
        drop(pins);
        Snapshot {
            epoch: self.epoch,
            registry: Arc::clone(&self.registry),
        }
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.registry.unpin_epoch(self.epoch);
    }
}

/// One committed document change, in commit order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChangeRecord {
    /// Epoch of the commit that wrote this version.
    pub epoch: u64,
    /// The document written.
    pub id: DocId,
}

#[derive(Debug, Default)]
struct FeedInner {
    /// Absolute index of `entries[0]` (entries below it were truncated).
    base: u64,
    entries: VecDeque<ChangeRecord>,
}

/// Epoch-ordered log of committed DocIds with a resumable absolute
/// cursor. Appends happen inside the engine's commit lock, so feed order
/// equals epoch order. Consumers poll with [`ChangeFeed::recv_changes`]
/// and truncate consumed history with [`ChangeFeed::ack`].
#[derive(Debug)]
pub struct ChangeFeed {
    inner: TrackedMutex<FeedInner>,
}

impl Default for ChangeFeed {
    fn default() -> ChangeFeed {
        ChangeFeed {
            inner: TrackedMutex::new("storage.epoch.feed", FeedInner::default()),
        }
    }
}

impl ChangeFeed {
    /// Append one commit's records (engine-internal, under the commit
    /// lock).
    pub(crate) fn append(&self, epoch: u64, ids: impl IntoIterator<Item = DocId>) {
        let mut inner = self.inner.lock();
        for id in ids {
            inner.entries.push_back(ChangeRecord { epoch, id });
        }
    }

    /// Read up to `max` records starting at absolute cursor `cursor`,
    /// returning them plus the next cursor. A cursor below the truncation
    /// base resumes at the base (the skipped records were acked). An
    /// empty result means the feed is drained at this cursor.
    pub fn recv_changes(&self, cursor: u64, max: usize) -> (Vec<ChangeRecord>, u64) {
        let inner = self.inner.lock();
        let start = cursor.max(inner.base);
        let skip = (start - inner.base) as usize;
        let out: Vec<ChangeRecord> = inner.entries.iter().skip(skip).take(max).copied().collect();
        let next = start + out.len() as u64;
        (out, next)
    }

    /// Truncate records below `cursor` — the consumer promises it will
    /// never ask for them again.
    pub fn ack(&self, cursor: u64) {
        let mut inner = self.inner.lock();
        while inner.base < cursor {
            if inner.entries.pop_front().is_none() {
                inner.base = cursor;
                return;
            }
            inner.base += 1;
        }
    }

    /// Records currently retained (unacked backlog).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The absolute cursor one past the newest record.
    pub fn head(&self) -> u64 {
        let inner = self.inner.lock();
        inner.base + inner.entries.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_track_refcounts_and_watermark() {
        let r = Arc::new(EpochRegistry::default());
        assert_eq!(r.low_watermark(), 0);
        r.publish(3);
        let a = Snapshot::pin(Arc::clone(&r));
        r.publish(7);
        let b = Snapshot::pin(Arc::clone(&r));
        assert_eq!(a.epoch(), 3);
        assert_eq!(b.epoch(), 7);
        assert_eq!(r.low_watermark(), 3);
        assert_eq!(r.pinned(), 2);
        let a2 = a.clone();
        drop(a);
        assert_eq!(r.low_watermark(), 3, "clone still pins epoch 3");
        drop(a2);
        assert_eq!(r.low_watermark(), 7);
        drop(b);
        assert_eq!(r.low_watermark(), 7, "nothing pinned: watermark = current");
    }

    #[test]
    fn feed_cursor_resumes_and_acks() {
        let f = ChangeFeed::default();
        f.append(1, [DocId(10), DocId(11)]);
        f.append(2, [DocId(12)]);
        let (batch, next) = f.recv_changes(0, 2);
        assert_eq!(
            batch,
            vec![
                ChangeRecord {
                    epoch: 1,
                    id: DocId(10)
                },
                ChangeRecord {
                    epoch: 1,
                    id: DocId(11)
                }
            ]
        );
        assert_eq!(next, 2);
        // Replaying the same cursor returns the same records (crash
        // before ack loses no work).
        let (replay, _) = f.recv_changes(0, 2);
        assert_eq!(replay, batch);
        let (rest, next) = f.recv_changes(next, 10);
        assert_eq!(rest.len(), 1);
        assert_eq!(next, 3);
        let (empty, same) = f.recv_changes(next, 10);
        assert!(empty.is_empty());
        assert_eq!(same, 3);
        f.ack(2);
        assert_eq!(f.len(), 1);
        // A cursor below the base resumes at the base.
        let (after_ack, n) = f.recv_changes(0, 10);
        assert_eq!(after_ack.len(), 1);
        assert_eq!(n, 3);
        assert_eq!(f.head(), 3);
    }
}

//! Deterministic binary encoding of documents.
//!
//! This is Impliance's "native format" (§3.2): every ingested document is
//! first persisted in this encoding. The format is self-delimiting (a
//! decoder can read one document from a longer buffer and report how many
//! bytes it consumed), which the segment layout relies on.
//!
//! Layout (all integers are LEB128 varints; signed values are zig-zag
//! encoded):
//!
//! ```text
//! document := MAGIC(0xD0) fmt_version(u8=1)
//!             id(varint) version(varint) format(u8)
//!             collection(str) ingested_at(zigzag)
//!             flags(u8: bit0=has_subject, bit1=has_supersedes)
//!             [subject(varint)] [supersedes(varint)]
//!             node
//! node     := tag(u8) payload
//!   0 null | 1 false | 2 true | 3 int(zigzag) | 4 float(8B LE)
//!   5 str(len,bytes) | 6 bytes(len,bytes) | 7 timestamp(zigzag)
//!   8 seq(count, node*) | 9 map(count, (str,node)*)
//! str      := len(varint) utf8-bytes
//! ```

use impliance_docmodel::{DocId, Document, Node, SourceFormat, Value, Version};

use crate::error::StorageError;

const MAGIC: u8 = 0xD0;
const FMT_VERSION: u8 = 1;

/// Append a LEB128 varint.
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, returning `(value, new_offset)`.
pub fn read_varint(buf: &[u8], mut pos: usize) -> Result<(u64, usize), StorageError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(pos).ok_or(StorageError::Corrupt {
            offset: pos,
            message: "truncated varint".into(),
        })?;
        pos += 1;
        if shift >= 64 {
            return Err(StorageError::Corrupt {
                offset: pos,
                message: "varint overflow".into(),
            });
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok((v, pos));
        }
        shift += 7;
    }
}

/// Zig-zag encode a signed integer.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Zig-zag decode.
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_str(buf: &mut Vec<u8>, s: &str) {
    write_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn read_str(buf: &[u8], pos: usize) -> Result<(String, usize), StorageError> {
    let (len, pos) = read_varint(buf, pos)?;
    let len = len as usize;
    let end = pos + len;
    if end > buf.len() {
        return Err(StorageError::Corrupt {
            offset: pos,
            message: "truncated string".into(),
        });
    }
    let s = std::str::from_utf8(&buf[pos..end]).map_err(|_| StorageError::Corrupt {
        offset: pos,
        message: "invalid utf-8".into(),
    })?;
    Ok((s.to_string(), end))
}

fn format_to_u8(f: SourceFormat) -> u8 {
    match f {
        SourceFormat::RelationalRow => 0,
        SourceFormat::Json => 1,
        SourceFormat::Csv => 2,
        SourceFormat::Text => 3,
        SourceFormat::Email => 4,
        SourceFormat::KeyValue => 5,
        SourceFormat::Annotation => 6,
        SourceFormat::Binary => 7,
        SourceFormat::Xml => 8,
    }
}

fn format_from_u8(b: u8, pos: usize) -> Result<SourceFormat, StorageError> {
    Ok(match b {
        0 => SourceFormat::RelationalRow,
        1 => SourceFormat::Json,
        2 => SourceFormat::Csv,
        3 => SourceFormat::Text,
        4 => SourceFormat::Email,
        5 => SourceFormat::KeyValue,
        6 => SourceFormat::Annotation,
        7 => SourceFormat::Binary,
        8 => SourceFormat::Xml,
        _ => {
            return Err(StorageError::Corrupt {
                offset: pos,
                message: format!("unknown format byte {b}"),
            })
        }
    })
}

/// Encode a node subtree.
pub fn encode_node(node: &Node, buf: &mut Vec<u8>) {
    match node {
        Node::Value(Value::Null) => buf.push(0),
        Node::Value(Value::Bool(false)) => buf.push(1),
        Node::Value(Value::Bool(true)) => buf.push(2),
        Node::Value(Value::Int(i)) => {
            buf.push(3);
            write_varint(buf, zigzag(*i));
        }
        Node::Value(Value::Float(f)) => {
            buf.push(4);
            buf.extend_from_slice(&f.to_le_bytes());
        }
        Node::Value(Value::Str(s)) => {
            buf.push(5);
            write_str(buf, s);
        }
        Node::Value(Value::Bytes(b)) => {
            buf.push(6);
            write_varint(buf, b.len() as u64);
            buf.extend_from_slice(b);
        }
        Node::Value(Value::Timestamp(t)) => {
            buf.push(7);
            write_varint(buf, zigzag(*t));
        }
        Node::Seq(items) => {
            buf.push(8);
            write_varint(buf, items.len() as u64);
            for item in items {
                encode_node(item, buf);
            }
        }
        Node::Map(m) => {
            buf.push(9);
            write_varint(buf, m.len() as u64);
            for (k, v) in m {
                write_str(buf, k);
                encode_node(v, buf);
            }
        }
    }
}

/// Decode a node subtree, returning `(node, new_offset)`.
pub fn decode_node(buf: &[u8], pos: usize) -> Result<(Node, usize), StorageError> {
    let tag = *buf.get(pos).ok_or(StorageError::Corrupt {
        offset: pos,
        message: "truncated node tag".into(),
    })?;
    let pos = pos + 1;
    match tag {
        0 => Ok((Node::Value(Value::Null), pos)),
        1 => Ok((Node::Value(Value::Bool(false)), pos)),
        2 => Ok((Node::Value(Value::Bool(true)), pos)),
        3 => {
            let (v, pos) = read_varint(buf, pos)?;
            Ok((Node::Value(Value::Int(unzigzag(v))), pos))
        }
        4 => {
            let end = pos + 8;
            if end > buf.len() {
                return Err(StorageError::Corrupt {
                    offset: pos,
                    message: "truncated float".into(),
                });
            }
            let mut arr = [0u8; 8];
            arr.copy_from_slice(&buf[pos..end]);
            Ok((Node::Value(Value::Float(f64::from_le_bytes(arr))), end))
        }
        5 => {
            let (s, pos) = read_str(buf, pos)?;
            Ok((Node::Value(Value::Str(s)), pos))
        }
        6 => {
            let (len, pos) = read_varint(buf, pos)?;
            let end = pos + len as usize;
            if end > buf.len() {
                return Err(StorageError::Corrupt {
                    offset: pos,
                    message: "truncated bytes".into(),
                });
            }
            Ok((Node::Value(Value::Bytes(buf[pos..end].to_vec())), end))
        }
        7 => {
            let (v, pos) = read_varint(buf, pos)?;
            Ok((Node::Value(Value::Timestamp(unzigzag(v))), pos))
        }
        8 => {
            let (count, mut pos) = read_varint(buf, pos)?;
            let mut items = Vec::with_capacity(count.min(1024) as usize);
            for _ in 0..count {
                let (item, p) = decode_node(buf, pos)?;
                items.push(item);
                pos = p;
            }
            Ok((Node::Seq(items), pos))
        }
        9 => {
            let (count, mut pos) = read_varint(buf, pos)?;
            let mut map = std::collections::BTreeMap::new();
            for _ in 0..count {
                let (k, p) = read_str(buf, pos)?;
                let (v, p) = decode_node(buf, p)?;
                map.insert(k, v);
                pos = p;
            }
            Ok((Node::Map(map), pos))
        }
        t => Err(StorageError::Corrupt {
            offset: pos - 1,
            message: format!("bad node tag {t}"),
        }),
    }
}

/// Encode a whole document into `buf`.
pub fn encode_document(doc: &Document, buf: &mut Vec<u8>) {
    buf.push(MAGIC);
    buf.push(FMT_VERSION);
    write_varint(buf, doc.id().0);
    write_varint(buf, u64::from(doc.version().0));
    buf.push(format_to_u8(doc.format()));
    write_str(buf, doc.collection());
    write_varint(buf, zigzag(doc.ingested_at()));
    let mut flags = 0u8;
    if doc.subject().is_some() {
        flags |= 1;
    }
    if doc.supersedes().is_some() {
        flags |= 2;
    }
    buf.push(flags);
    if let Some(s) = doc.subject() {
        write_varint(buf, s.0);
    }
    if let Some(v) = doc.supersedes() {
        write_varint(buf, u64::from(v.0));
    }
    encode_node(doc.root(), buf);
}

/// Convenience: encode into a fresh buffer.
pub fn encode_document_vec(doc: &Document) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    encode_document(doc, &mut buf);
    buf
}

/// Decode one document starting at `pos`; returns the document and the
/// offset just past it.
pub fn decode_document(buf: &[u8], pos: usize) -> Result<(Document, usize), StorageError> {
    let magic = *buf.get(pos).ok_or(StorageError::Corrupt {
        offset: pos,
        message: "empty input".into(),
    })?;
    if magic != MAGIC {
        return Err(StorageError::Corrupt {
            offset: pos,
            message: "bad magic".into(),
        });
    }
    let ver = *buf.get(pos + 1).ok_or(StorageError::Corrupt {
        offset: pos + 1,
        message: "truncated header".into(),
    })?;
    if ver != FMT_VERSION {
        return Err(StorageError::Corrupt {
            offset: pos + 1,
            message: format!("unsupported format version {ver}"),
        });
    }
    let (id, p) = read_varint(buf, pos + 2)?;
    let (version, p) = read_varint(buf, p)?;
    let fmt_byte = *buf.get(p).ok_or(StorageError::Corrupt {
        offset: p,
        message: "truncated format".into(),
    })?;
    let format = format_from_u8(fmt_byte, p)?;
    let (collection, p) = read_str(buf, p + 1)?;
    let (ts, p) = read_varint(buf, p)?;
    let flags = *buf.get(p).ok_or(StorageError::Corrupt {
        offset: p,
        message: "truncated flags".into(),
    })?;
    let mut p = p + 1;
    let subject = if flags & 1 != 0 {
        let (s, np) = read_varint(buf, p)?;
        p = np;
        Some(DocId(s))
    } else {
        None
    };
    let supersedes = if flags & 2 != 0 {
        let (v, np) = read_varint(buf, p)?;
        p = np;
        Some(Version(v as u32))
    } else {
        None
    };
    let (root, p) = decode_node(buf, p)?;

    // Rebuild through the public constructors, then fix up version/lineage.
    let doc = rebuild(
        DocId(id),
        Version(version as u32),
        format,
        collection,
        unzigzag(ts),
        subject,
        supersedes,
        root,
    );
    Ok((doc, p))
}

/// Reconstruct a `Document` with explicit version/lineage fields. The
/// docmodel API only creates initial versions and derived versions, so the
/// codec replays that history shape.
#[allow(clippy::too_many_arguments)]
fn rebuild(
    id: DocId,
    version: Version,
    format: SourceFormat,
    collection: String,
    ingested_at: i64,
    subject: Option<DocId>,
    supersedes: Option<Version>,
    root: Node,
) -> Document {
    // Initial version documents can be constructed directly.
    if version == Version::INITIAL && supersedes.is_none() {
        return match subject {
            Some(subj) => Document::annotation(id, subj, collection, ingested_at, root),
            None => Document::new(id, format, collection, ingested_at, root),
        };
    }
    // Later versions: synthesize the base and walk forward. The intermediate
    // bodies never existed in the buffer, so use an empty body and replace
    // at the final step.
    let base = match subject {
        Some(subj) => {
            Document::annotation(id, subj, collection.clone(), ingested_at, Node::empty_map())
        }
        None => Document::new(id, format, collection, ingested_at, Node::empty_map()),
    };
    let mut doc = base;
    while doc.version().0 + 1 < version.0 {
        doc = doc.new_version(Node::empty_map(), ingested_at);
    }
    doc.new_version(root, ingested_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use impliance_docmodel::DocumentBuilder;

    fn sample_doc() -> Document {
        DocumentBuilder::new(DocId(42), SourceFormat::Json, "claims")
            .at(1_700_000_000_000)
            .field("claim.amount", 1500i64)
            .field("claim.ratio", 0.75)
            .field("claim.open", true)
            .field("claim.vehicle.make", "Volvo")
            .node(
                "claim.parts",
                Node::seq([Node::scalar("bumper"), Node::scalar("hood")]),
            )
            .field("claim.filed", Value::Timestamp(1_699_999_999_999))
            .field("claim.blob", Value::Bytes(vec![1, 2, 3, 255]))
            .field("claim.gap", Value::Null)
            .build()
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            write_varint(&mut buf, v);
            let (back, pos) = read_varint(&buf, 0).unwrap();
            assert_eq!(back, v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn document_roundtrip() {
        let doc = sample_doc();
        let buf = encode_document_vec(&doc);
        let (back, consumed) = decode_document(&buf, 0).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(back, doc);
    }

    #[test]
    fn versioned_document_roundtrip() {
        let v1 = sample_doc();
        let v2 = v1.new_version(Node::map([("x".into(), Node::scalar(1i64))]), 5);
        let v3 = v2.new_version(Node::map([("x".into(), Node::scalar(2i64))]), 6);
        let buf = encode_document_vec(&v3);
        let (back, _) = decode_document(&buf, 0).unwrap();
        assert_eq!(back.version(), Version(3));
        assert_eq!(back.supersedes(), Some(Version(2)));
        assert_eq!(back.root(), v3.root());
        assert_eq!(back.id(), v3.id());
    }

    #[test]
    fn annotation_document_roundtrip() {
        let a = Document::annotation(
            DocId(9),
            DocId(42),
            "annotations.entities",
            77,
            Node::map([("entity".into(), Node::scalar("Volvo"))]),
        );
        let buf = encode_document_vec(&a);
        let (back, _) = decode_document(&buf, 0).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.subject(), Some(DocId(42)));
    }

    #[test]
    fn consecutive_documents_in_one_buffer() {
        let d1 = sample_doc();
        let d2 = Document::new(DocId(43), SourceFormat::Text, "t", 1, Node::scalar("hello"));
        let mut buf = Vec::new();
        encode_document(&d1, &mut buf);
        let mid = buf.len();
        encode_document(&d2, &mut buf);
        let (b1, p1) = decode_document(&buf, 0).unwrap();
        assert_eq!(p1, mid);
        let (b2, p2) = decode_document(&buf, p1).unwrap();
        assert_eq!(p2, buf.len());
        assert_eq!(b1, d1);
        assert_eq!(b2, d2);
    }

    #[test]
    fn corrupt_inputs_error_not_panic() {
        let doc = sample_doc();
        let buf = encode_document_vec(&doc);
        // bad magic
        let mut bad = buf.clone();
        bad[0] = 0x00;
        assert!(decode_document(&bad, 0).is_err());
        // truncations at every prefix must error, never panic
        for cut in 0..buf.len() {
            assert!(
                decode_document(&buf[..cut], 0).is_err(),
                "prefix {cut} should fail"
            );
        }
    }

    #[test]
    fn unknown_format_version_rejected() {
        let doc = sample_doc();
        let mut buf = encode_document_vec(&doc);
        buf[1] = 99;
        assert!(matches!(
            decode_document(&buf, 0),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn float_bit_patterns_survive() {
        for f in [
            0.0f64,
            -0.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::NEG_INFINITY,
            f64::NAN,
        ] {
            let d = Document::new(DocId(1), SourceFormat::Json, "c", 0, Node::scalar(f));
            let (back, _) = decode_document(&encode_document_vec(&d), 0).unwrap();
            if let Node::Value(Value::Float(g)) = back.root() {
                assert_eq!(g.to_bits(), f.to_bits());
            } else {
                panic!("expected float");
            }
        }
    }
}

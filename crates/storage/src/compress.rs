//! Block compression implemented inside the storage node.
//!
//! §3.1: "the push-down logic is implemented in the software component of a
//! storage unit, and thus can be deployed on any type of commodity
//! hardware" — compression is the paper's first example of such logic.
//!
//! Two schemes are provided:
//!
//! * [`lz_compress`]/[`lz_decompress`] — a greedy LZ77-style byte
//!   compressor with a 64 KiB window and a 4-byte hash chain, similar in
//!   spirit to LZ4. Used for segment blocks.
//! * [`rle_compress`]/[`rle_decompress`] — run-length encoding, used where
//!   long byte runs dominate (e.g. null bitmaps).
//!
//! Every compressed block carries its uncompressed length and a checksum so
//! corruption is detected rather than propagated.

use crate::error::StorageError;

const MIN_MATCH: usize = 4;
const WINDOW: usize = 1 << 16;
const HASH_BITS: u32 = 15;

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// FNV-1a checksum over a byte slice; cheap and adequate for detecting
/// block corruption in tests and experiments.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x01000193);
    }
    h
}

fn write_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(buf: &[u8], pos: usize) -> Result<u32, StorageError> {
    buf.get(pos..pos + 4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or_else(|| StorageError::BadBlock("truncated header".into()))
}

/// Compress `input` with the LZ77-style scheme. Output layout:
/// `[raw_len u32][checksum u32][token stream]`. A token is a control byte:
/// high bit 0 → literal run (`len = ctrl+1` bytes follow); high bit 1 →
/// match (`len = (ctrl & 0x7f) + MIN_MATCH`, followed by a 2-byte LE
/// distance).
pub fn lz_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    write_u32(&mut out, input.len() as u32);
    write_u32(&mut out, checksum(input));

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut lit_start = 0usize;

    let flush_literals = |out: &mut Vec<u8>, lits: &[u8]| {
        let mut rest = lits;
        while !rest.is_empty() {
            let take = rest.len().min(128);
            out.push((take - 1) as u8);
            out.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
        }
    };

    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let candidate = head[h];
        head[h] = i;
        let mut match_len = 0usize;
        if candidate != usize::MAX && i - candidate < WINDOW {
            let max = (input.len() - i).min(127 + MIN_MATCH);
            while match_len < max && input[candidate + match_len] == input[i + match_len] {
                match_len += 1;
            }
        }
        if match_len >= MIN_MATCH {
            flush_literals(&mut out, &input[lit_start..i]);
            let dist = (i - candidate) as u16;
            out.push(0x80 | (match_len - MIN_MATCH) as u8);
            out.extend_from_slice(&dist.to_le_bytes());
            // Index a few positions inside the match so later matches can
            // still be found, then skip past it.
            let end = i + match_len;
            let mut j = i + 1;
            while j + MIN_MATCH <= input.len() && j < end {
                head[hash4(&input[j..])] = j;
                j += 1;
            }
            i = end;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, &input[lit_start..]);
    out
}

/// Decompress an [`lz_compress`] block, verifying length and checksum.
pub fn lz_decompress(block: &[u8]) -> Result<Vec<u8>, StorageError> {
    let raw_len = read_u32(block, 0)? as usize;
    let sum = read_u32(block, 4)?;
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 8usize;
    while pos < block.len() {
        let ctrl = block[pos];
        pos += 1;
        if ctrl & 0x80 == 0 {
            let len = ctrl as usize + 1;
            let lits = block
                .get(pos..pos + len)
                .ok_or_else(|| StorageError::BadBlock("truncated literals".into()))?;
            out.extend_from_slice(lits);
            pos += len;
        } else {
            let len = (ctrl & 0x7f) as usize + MIN_MATCH;
            let dist_bytes = block
                .get(pos..pos + 2)
                .ok_or_else(|| StorageError::BadBlock("truncated match".into()))?;
            let dist = u16::from_le_bytes([dist_bytes[0], dist_bytes[1]]) as usize;
            pos += 2;
            if dist == 0 || dist > out.len() {
                return Err(StorageError::BadBlock("bad match distance".into()));
            }
            let start = out.len() - dist;
            // Overlapping copies are legal (repeating patterns).
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    if out.len() != raw_len {
        return Err(StorageError::BadBlock(format!(
            "length mismatch: expected {raw_len}, got {}",
            out.len()
        )));
    }
    if checksum(&out) != sum {
        return Err(StorageError::BadBlock("checksum mismatch".into()));
    }
    Ok(out)
}

/// Run-length encode: `[raw_len u32][(count u8, byte)*]`.
pub fn rle_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    write_u32(&mut out, input.len() as u32);
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        let mut run = 1usize;
        while i + run < input.len() && input[i + run] == b && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    out
}

/// Decode an [`rle_compress`] block.
pub fn rle_decompress(block: &[u8]) -> Result<Vec<u8>, StorageError> {
    let raw_len = read_u32(block, 0)? as usize;
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 4;
    while pos + 1 < block.len() + 1 && pos < block.len() {
        let count = block[pos] as usize;
        let byte = *block
            .get(pos + 1)
            .ok_or_else(|| StorageError::BadBlock("truncated RLE pair".into()))?;
        out.extend(std::iter::repeat_n(byte, count));
        pos += 2;
    }
    if out.len() != raw_len {
        return Err(StorageError::BadBlock("RLE length mismatch".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lz_roundtrip_basic() {
        let cases: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"abcabcabcabcabcabc".to_vec(),
            b"the quick brown fox jumps over the lazy dog the quick brown fox".to_vec(),
            vec![0u8; 10_000],
            (0..=255u8).cycle().take(5000).collect(),
        ];
        for c in cases {
            let z = lz_compress(&c);
            let back = lz_decompress(&z).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn lz_compresses_redundant_data() {
        let data: Vec<u8> = b"claim vehicle Volvo bumper repaint "
            .iter()
            .cycle()
            .take(20_000)
            .copied()
            .collect();
        let z = lz_compress(&data);
        assert!(
            z.len() < data.len() / 3,
            "{} !< {}",
            z.len(),
            data.len() / 3
        );
    }

    #[test]
    fn lz_handles_overlapping_matches() {
        // "aaaaa..." forces dist=1 overlapping copies
        let data = vec![b'a'; 1000];
        let z = lz_compress(&data);
        assert_eq!(lz_decompress(&z).unwrap(), data);
        assert!(z.len() < 100);
    }

    #[test]
    fn lz_detects_corruption() {
        let data = b"hello hello hello hello hello hello".to_vec();
        let mut z = lz_compress(&data);
        let last = z.len() - 1;
        z[last] ^= 0xff;
        assert!(lz_decompress(&z).is_err());
    }

    #[test]
    fn lz_detects_truncation() {
        let data = vec![7u8; 500];
        let z = lz_compress(&data);
        for cut in 0..z.len() {
            // must error or return wrong-length error, never panic
            let _ = lz_decompress(&z[..cut]);
        }
    }

    #[test]
    fn rle_roundtrip() {
        let cases: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            vec![5u8; 1000],
            b"abc".to_vec(),
            vec![1, 1, 2, 2, 2, 3],
        ];
        for c in cases {
            assert_eq!(rle_decompress(&rle_compress(&c)).unwrap(), c);
        }
    }

    #[test]
    fn rle_shrinks_runs() {
        let data = vec![0u8; 4096];
        let z = rle_compress(&data);
        assert!(z.len() < 50);
    }

    #[test]
    fn checksum_changes_with_content() {
        assert_ne!(checksum(b"a"), checksum(b"b"));
        assert_eq!(checksum(b""), 0x811c9dc5);
    }

    #[test]
    fn lz_random_data_roundtrip() {
        // Pseudo-random (xorshift) data: incompressible but must round-trip.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x & 0xff) as u8
            })
            .collect();
        let z = lz_compress(&data);
        assert_eq!(lz_decompress(&z).unwrap(), data);
    }
}

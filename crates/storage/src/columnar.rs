//! Columnar pages: typed column vectors decoded straight from storage.
//!
//! The row pipeline moves `Vec<Tuple>` batches where every predicate and
//! projection walks `Document::leaves()` per tuple. A [`ColumnPage`] is
//! the column-at-a-time alternative: for a fixed set of structural paths
//! it carries one typed vector per path (i64 / f64 / dictionary-encoded
//! strings / mixed values) plus a validity bitmask, and keeps the decoded
//! documents as a row-view escape hatch for operators (and predicate
//! shapes) that are not vectorized yet.
//!
//! Semantics are bit-for-bit those of the row path:
//!
//! * a validity bit is set iff the document has **at least one** leaf at
//!   the path; the stored value is the **first** such leaf (exactly what
//!   `Tuple::key` returns);
//! * a column is typed `Int`/`Float`/`Str` only when every valid slot
//!   holds exactly that `Value` variant, so [`Column::value_at`]
//!   reconstructs the original variant (`Int(5)` renders `5`,
//!   `Float(5.0)` renders `5.0` — the distinction survives);
//! * documents with *several* leaves at a path are flagged `multi_leaf`;
//!   comparison kernels fall back to the existential `Predicate::matches`
//!   for those columns, so vectorization never changes an answer.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use impliance_docmodel::{Document, Value};

use crate::pushdown::{value_rank, Predicate, ScanMetrics};

/// Distinct-string cap under which a page column is dictionary-encoded.
pub const PAGE_DICT_MAX: usize = 256;

/// A packed validity / selection bitmask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmask {
    words: Vec<u64>,
    len: usize,
}

impl Bitmask {
    /// All-zero mask of `len` bits.
    pub fn zeros(len: usize) -> Bitmask {
        Bitmask {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-one mask of `len` bits.
    pub fn ones(len: usize) -> Bitmask {
        let mut m = Bitmask::zeros(len);
        for w in &mut m.words {
            *w = u64::MAX;
        }
        m.clear_tail();
        m
    }

    /// Build from a per-index closure.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Bitmask {
        let mut m = Bitmask::zeros(len);
        for i in 0..len {
            if f(i) {
                m.set(i);
            }
        }
        m
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i` (false when out of range).
    pub fn get(&self, i: usize) -> bool {
        i < self.len && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        if i < self.len {
            self.words[i / 64] |= 1u64 << (i % 64);
        }
    }

    /// `self &= other` (lengths must match).
    pub fn and_assign(&mut self, other: &Bitmask) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
    }

    /// `self |= other` (lengths must match).
    pub fn or_assign(&mut self, other: &Bitmask) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// Bitwise complement within `len`.
    pub fn not(&self) -> Bitmask {
        let mut m = Bitmask {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        m.clear_tail();
        m
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// The typed storage behind one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVec {
    /// Every valid slot is `Value::Int`.
    Int(Vec<i64>),
    /// Every valid slot is `Value::Float`.
    Float(Vec<f64>),
    /// Every valid slot is `Value::Str`, dictionary-encoded: `codes[i]`
    /// indexes `dict`.
    Str { dict: Vec<String>, codes: Vec<u32> },
    /// Anything else (mixed variants, timestamps, null-valued leaves).
    Mixed(Vec<Value>),
}

/// One structural path's values across a page of documents.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Structural path (e.g. `orders[].amount`).
    pub path: String,
    /// Typed values; slots where `validity` is unset hold placeholders.
    pub values: ColumnVec,
    /// Bit `i` set iff document `i` has a leaf at `path`.
    pub validity: Bitmask,
    /// Some document in the page has more than one leaf at `path`;
    /// comparison kernels must fall back to existential row evaluation.
    pub multi_leaf: bool,
}

impl Column {
    /// Reconstruct the first-leaf value for row `i` (`Null` when absent),
    /// exactly mirroring `Tuple::key`.
    pub fn value_at(&self, i: usize) -> Value {
        if !self.validity.get(i) {
            return Value::Null;
        }
        match &self.values {
            ColumnVec::Int(vs) => Value::Int(vs[i]),
            ColumnVec::Float(vs) => Value::Float(vs[i]),
            ColumnVec::Str { dict, codes } => dict
                .get(codes[i] as usize)
                .map(|s| Value::Str(s.clone()))
                .unwrap_or(Value::Null),
            ColumnVec::Mixed(vs) => vs[i].clone(),
        }
    }

    /// True when the column is dictionary-encoded.
    pub fn is_dictionary(&self) -> bool {
        matches!(self.values, ColumnVec::Str { .. })
    }
}

/// A page of documents decoded column-wise.
#[derive(Debug, Clone, Default)]
pub struct ColumnPage {
    /// Rows in the page.
    pub len: usize,
    /// Row view: the matching documents, in scan order. Operators that
    /// need whole documents (joins, doc output) read these.
    pub docs: Vec<Arc<Document>>,
    /// One column per requested structural path, in request order.
    pub columns: Vec<Column>,
    /// Storage-side accounting for the page (includes zone-map skips).
    pub metrics: ScanMetrics,
}

impl ColumnPage {
    /// True when the page holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The column for `path`, if it was requested.
    pub fn column(&self, path: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.path == path)
    }

    /// Drop all rows past `n` (limit enforcement).
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len {
            return;
        }
        self.docs.truncate(n);
        for col in &mut self.columns {
            match &mut col.values {
                ColumnVec::Int(v) => v.truncate(n),
                ColumnVec::Float(v) => v.truncate(n),
                ColumnVec::Str { codes, .. } => codes.truncate(n),
                ColumnVec::Mixed(v) => v.truncate(n),
            }
            let kept = col.validity.clone();
            col.validity = Bitmask::from_fn(n, |i| kept.get(i));
        }
        self.len = n;
    }

    /// Compact the page to the rows whose bit is set in `keep` (the
    /// selection produced by [`ColumnPage::eval_mask`]), preserving row
    /// order. Dictionary columns keep their dictionary; metrics are not
    /// carried (the caller merged them before masking).
    pub fn gather(&self, keep: &Bitmask) -> ColumnPage {
        let idx: Vec<usize> = (0..self.len).filter(|&i| keep.get(i)).collect();
        let columns = self
            .columns
            .iter()
            .map(|col| {
                let values = match &col.values {
                    ColumnVec::Int(vs) => ColumnVec::Int(idx.iter().map(|&i| vs[i]).collect()),
                    ColumnVec::Float(vs) => ColumnVec::Float(idx.iter().map(|&i| vs[i]).collect()),
                    ColumnVec::Str { dict, codes } => ColumnVec::Str {
                        dict: dict.clone(),
                        codes: idx.iter().map(|&i| codes[i]).collect(),
                    },
                    ColumnVec::Mixed(vs) => {
                        ColumnVec::Mixed(idx.iter().map(|&i| vs[i].clone()).collect())
                    }
                };
                Column {
                    path: col.path.clone(),
                    values,
                    validity: Bitmask::from_fn(idx.len(), |j| col.validity.get(idx[j])),
                    multi_leaf: col.multi_leaf,
                }
            })
            .collect();
        ColumnPage {
            len: idx.len(),
            docs: idx.iter().map(|&i| Arc::clone(&self.docs[i])).collect(),
            columns,
            metrics: ScanMetrics::default(),
        }
    }

    /// Evaluate a predicate over the page, one bit per row. Kernels run
    /// column-at-a-time where a single-leaf typed column exists; every
    /// other shape (multi-leaf paths, unprojected paths) falls back to
    /// the row-wise `Predicate::matches`, so the mask is always exact.
    pub fn eval_mask(&self, pred: &Predicate) -> Bitmask {
        match pred {
            Predicate::True => Bitmask::ones(self.len),
            Predicate::And(ps) => {
                let mut m = Bitmask::ones(self.len);
                for p in ps {
                    m.and_assign(&self.eval_mask(p));
                }
                m
            }
            Predicate::Or(ps) => {
                let mut m = Bitmask::zeros(self.len);
                for p in ps {
                    m.or_assign(&self.eval_mask(p));
                }
                m
            }
            Predicate::Not(p) => self.eval_mask(p).not(),
            Predicate::CollectionIs(c) => {
                Bitmask::from_fn(self.len, |i| self.docs[i].collection() == c)
            }
            Predicate::FormatIs(f) => {
                Bitmask::from_fn(self.len, |i| self.docs[i].format().name() == f)
            }
            Predicate::Exists(path) => match self.column(path) {
                // Validity is "≥1 leaf at path" — exact even multi-leaf.
                Some(col) => col.validity.clone(),
                None => self.fallback_mask(pred),
            },
            Predicate::Eq(path, v) => self.cmp_or_fallback(pred, path, CmpOp::Eq, v),
            Predicate::Ne(path, v) => self.cmp_or_fallback(pred, path, CmpOp::Ne, v),
            Predicate::Lt(path, v) => self.cmp_or_fallback(pred, path, CmpOp::Lt, v),
            Predicate::Le(path, v) => self.cmp_or_fallback(pred, path, CmpOp::Le, v),
            Predicate::Gt(path, v) => self.cmp_or_fallback(pred, path, CmpOp::Gt, v),
            Predicate::Ge(path, v) => self.cmp_or_fallback(pred, path, CmpOp::Ge, v),
            Predicate::Contains(path, needle) => match self.column(path) {
                Some(col) if !col.multi_leaf => self.contains_mask(col, needle),
                _ => self.fallback_mask(pred),
            },
        }
    }

    fn fallback_mask(&self, pred: &Predicate) -> Bitmask {
        Bitmask::from_fn(self.len, |i| pred.matches(&self.docs[i]))
    }

    fn cmp_or_fallback(&self, pred: &Predicate, path: &str, op: CmpOp, lit: &Value) -> Bitmask {
        match self.column(path) {
            Some(col) if !col.multi_leaf => self.cmp_mask(col, op, lit),
            _ => self.fallback_mask(pred),
        }
    }

    fn cmp_mask(&self, col: &Column, op: CmpOp, lit: &Value) -> Bitmask {
        let lit_rank = value_rank(lit);
        match &col.values {
            ColumnVec::Int(vs) => {
                if lit_rank == 2 {
                    let lf = lit.as_f64().unwrap_or(f64::NAN);
                    Bitmask::from_fn(self.len, |i| {
                        col.validity.get(i) && op.admits((vs[i] as f64).total_cmp(&lf))
                    })
                } else {
                    self.rank_const_mask(col, op, 2, lit_rank)
                }
            }
            ColumnVec::Float(vs) => {
                if lit_rank == 2 {
                    let lf = lit.as_f64().unwrap_or(f64::NAN);
                    Bitmask::from_fn(self.len, |i| {
                        col.validity.get(i) && op.admits(vs[i].total_cmp(&lf))
                    })
                } else {
                    self.rank_const_mask(col, op, 2, lit_rank)
                }
            }
            ColumnVec::Str { dict, codes } => {
                if let Value::Str(s) = lit {
                    // One comparison per dictionary entry, then a table
                    // lookup per row.
                    let table: Vec<bool> =
                        dict.iter().map(|d| op.admits(d.as_str().cmp(s))).collect();
                    Bitmask::from_fn(self.len, |i| {
                        col.validity.get(i)
                            && table.get(codes[i] as usize).copied().unwrap_or(false)
                    })
                } else {
                    self.rank_const_mask(col, op, 3, lit_rank)
                }
            }
            ColumnVec::Mixed(vs) => Bitmask::from_fn(self.len, |i| {
                col.validity.get(i) && op.admits(vs[i].total_cmp(lit))
            }),
        }
    }

    /// Cross-rank comparison: the ordering is a constant of the ranks, so
    /// the mask is either the validity mask or empty.
    fn rank_const_mask(&self, col: &Column, op: CmpOp, col_rank: u8, lit_rank: u8) -> Bitmask {
        if op.admits(col_rank.cmp(&lit_rank)) {
            col.validity.clone()
        } else {
            Bitmask::zeros(self.len)
        }
    }

    fn contains_mask(&self, col: &Column, needle: &str) -> Bitmask {
        let needle = needle.to_ascii_lowercase();
        match &col.values {
            // Non-string values have no `as_str` — never match.
            ColumnVec::Int(_) | ColumnVec::Float(_) => Bitmask::zeros(self.len),
            ColumnVec::Str { dict, codes } => {
                let table: Vec<bool> = dict
                    .iter()
                    .map(|d| d.to_ascii_lowercase().contains(&needle))
                    .collect();
                Bitmask::from_fn(self.len, |i| {
                    col.validity.get(i) && table.get(codes[i] as usize).copied().unwrap_or(false)
                })
            }
            ColumnVec::Mixed(vs) => Bitmask::from_fn(self.len, |i| {
                col.validity.get(i)
                    && vs[i]
                        .as_str()
                        .map(|s| s.to_ascii_lowercase().contains(&needle))
                        .unwrap_or(false)
            }),
        }
    }
}

/// A comparison operator over the document total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==` under `Value::query_eq`.
    Eq,
    /// `!=` under `Value::query_eq`.
    Ne,
    /// `<` under `Value::total_cmp`.
    Lt,
    /// `<=` under `Value::total_cmp`.
    Le,
    /// `>` under `Value::total_cmp`.
    Gt,
    /// `>=` under `Value::total_cmp`.
    Ge,
}

impl CmpOp {
    /// Does an ordering outcome satisfy the operator?
    pub fn admits(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Accumulates one document at a time into typed columns.
pub struct ColumnPageBuilder {
    paths: Vec<String>,
    index: HashMap<String, usize>,
    docs: Vec<Arc<Document>>,
    staged: Vec<StagedColumn>,
}

struct StagedColumn {
    values: Vec<Value>,
    validity: Vec<bool>,
    multi_leaf: bool,
}

impl ColumnPageBuilder {
    /// A builder for the given structural paths (duplicates collapse to
    /// one column).
    pub fn new(paths: &[String]) -> ColumnPageBuilder {
        let mut index = HashMap::new();
        let mut unique = Vec::new();
        for p in paths {
            if !index.contains_key(p) {
                index.insert(p.clone(), unique.len());
                unique.push(p.clone());
            }
        }
        let staged = unique
            .iter()
            .map(|_| StagedColumn {
                values: Vec::new(),
                validity: Vec::new(),
                multi_leaf: false,
            })
            .collect();
        ColumnPageBuilder {
            paths: unique,
            index,
            docs: Vec::new(),
            staged,
        }
    }

    /// Rows staged so far.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no rows are staged.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Append one document: a single `leaves()` walk fills the first-leaf
    /// slot of every requested column.
    pub fn push(&mut self, doc: Arc<Document>) {
        for col in &mut self.staged {
            col.values.push(Value::Null);
            col.validity.push(false);
        }
        let row = self.docs.len();
        for (path, value) in doc.leaves() {
            if let Some(&ci) = self.index.get(path.structural_form().as_str()) {
                let col = &mut self.staged[ci];
                if col.validity[row] {
                    col.multi_leaf = true;
                } else {
                    col.validity[row] = true;
                    col.values[row] = value.clone();
                }
            }
        }
        self.docs.push(doc);
    }

    /// Freeze into a typed page. Each column specializes to `Int`,
    /// `Float`, or dictionary `Str` only when every valid slot holds that
    /// exact variant; everything else stays `Mixed`.
    pub fn finish(self) -> ColumnPage {
        let len = self.docs.len();
        let columns = self
            .paths
            .into_iter()
            .zip(self.staged)
            .map(|(path, staged)| {
                let validity = Bitmask::from_fn(len, |i| staged.validity[i]);
                let values = type_column(&staged);
                Column {
                    path,
                    values,
                    validity,
                    multi_leaf: staged.multi_leaf,
                }
            })
            .collect();
        ColumnPage {
            len,
            docs: self.docs,
            columns,
            metrics: ScanMetrics::default(),
        }
    }
}

fn type_column(staged: &StagedColumn) -> ColumnVec {
    let mut any_valid = false;
    let mut all_int = true;
    let mut all_float = true;
    let mut all_str = true;
    for (v, &valid) in staged.values.iter().zip(&staged.validity) {
        if !valid {
            continue;
        }
        any_valid = true;
        all_int &= matches!(v, Value::Int(_));
        all_float &= matches!(v, Value::Float(_));
        all_str &= matches!(v, Value::Str(_));
    }
    if !any_valid {
        return ColumnVec::Mixed(staged.values.clone());
    }
    if all_int {
        return ColumnVec::Int(
            staged
                .values
                .iter()
                .map(|v| v.as_i64().unwrap_or(0))
                .collect(),
        );
    }
    if all_float {
        return ColumnVec::Float(
            staged
                .values
                .iter()
                .map(|v| match v {
                    Value::Float(f) => *f,
                    _ => 0.0,
                })
                .collect(),
        );
    }
    if all_str {
        let mut dict: Vec<String> = Vec::new();
        let mut lookup: HashMap<String, u32> = HashMap::new();
        let mut codes = Vec::with_capacity(staged.values.len());
        for (v, &valid) in staged.values.iter().zip(&staged.validity) {
            let s = match (valid, v) {
                (true, Value::Str(s)) => s.as_str(),
                _ => {
                    codes.push(0u32);
                    continue;
                }
            };
            let code = match lookup.get(s) {
                Some(&c) => c,
                None => {
                    let c = dict.len() as u32;
                    dict.push(s.to_string());
                    lookup.insert(s.to_string(), c);
                    if dict.len() > PAGE_DICT_MAX {
                        return ColumnVec::Mixed(staged.values.clone());
                    }
                    c
                }
            };
            codes.push(code);
        }
        return ColumnVec::Str { dict, codes };
    }
    ColumnVec::Mixed(staged.values.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use impliance_docmodel::{DocId, DocumentBuilder, SourceFormat};

    fn doc(id: u64, amount: i64, make: &str) -> Arc<Document> {
        Arc::new(
            DocumentBuilder::new(DocId(id), SourceFormat::Json, "cars")
                .field("amount", amount)
                .field("make", make)
                .build(),
        )
    }

    fn page(n: i64) -> ColumnPage {
        let mut b = ColumnPageBuilder::new(&["amount".to_string(), "make".to_string()]);
        for i in 0..n {
            b.push(doc(i as u64, i, if i % 2 == 0 { "Volvo" } else { "Saab" }));
        }
        b.finish()
    }

    #[test]
    fn bitmask_ops() {
        let mut a = Bitmask::zeros(70);
        a.set(0);
        a.set(69);
        assert!(a.get(0) && a.get(69) && !a.get(1));
        assert_eq!(a.count_ones(), 2);
        let n = a.not();
        assert_eq!(n.count_ones(), 68);
        assert!(!n.get(0) && n.get(1));
        let ones = Bitmask::ones(70);
        assert_eq!(ones.count_ones(), 70);
    }

    #[test]
    fn typed_columns_and_dictionary() {
        let p = page(10);
        let amount = p.column("amount").expect("amount column");
        assert!(matches!(amount.values, ColumnVec::Int(_)));
        let make = p.column("make").expect("make column");
        match &make.values {
            ColumnVec::Str { dict, .. } => assert_eq!(dict.len(), 2),
            other => panic!("expected dictionary column, got {other:?}"),
        }
        assert!(make.is_dictionary());
        assert_eq!(amount.value_at(3), Value::Int(3));
        assert_eq!(make.value_at(0), Value::Str("Volvo".into()));
    }

    #[test]
    fn masks_match_row_semantics() {
        let p = page(10);
        let preds = [
            Predicate::Ge("amount".into(), Value::Int(5)),
            Predicate::Eq("make".into(), Value::Str("Saab".into())),
            Predicate::Contains("make".into(), "vol".into()),
            Predicate::Not(Box::new(Predicate::Lt("amount".into(), Value::Int(3)))),
            Predicate::Exists("missing".into()),
            Predicate::Ne("amount".into(), Value::Int(4)),
            Predicate::Or(vec![]),
            Predicate::And(vec![
                Predicate::Gt("amount".into(), Value::Int(2)),
                Predicate::CollectionIs("cars".into()),
            ]),
        ];
        for pred in &preds {
            let mask = p.eval_mask(pred);
            for i in 0..p.len {
                assert_eq!(
                    mask.get(i),
                    pred.matches(&p.docs[i]),
                    "row {i} disagrees for {pred:?}"
                );
            }
        }
    }

    #[test]
    fn null_and_mixed_columns_stay_exact() {
        let mut b = ColumnPageBuilder::new(&["x".to_string()]);
        b.push(Arc::new(
            DocumentBuilder::new(DocId(1), SourceFormat::Json, "c")
                .field("x", 1i64)
                .build(),
        ));
        b.push(Arc::new(
            DocumentBuilder::new(DocId(2), SourceFormat::Json, "c")
                .field("x", 2.5f64)
                .build(),
        ));
        b.push(Arc::new(
            DocumentBuilder::new(DocId(3), SourceFormat::Json, "c")
                .field("y", 3i64)
                .build(),
        ));
        let p = b.finish();
        let col = p.column("x").expect("x column");
        assert!(matches!(col.values, ColumnVec::Mixed(_)));
        assert_eq!(col.value_at(0), Value::Int(1));
        assert_eq!(col.value_at(1), Value::Float(2.5));
        assert_eq!(col.value_at(2), Value::Null);
        let mask = p.eval_mask(&Predicate::Gt("x".into(), Value::Int(0)));
        assert!(mask.get(0) && mask.get(1) && !mask.get(2));
    }

    #[test]
    fn truncate_drops_rows_everywhere() {
        let mut p = page(8);
        p.truncate(3);
        assert_eq!(p.len, 3);
        assert_eq!(p.docs.len(), 3);
        for c in &p.columns {
            assert_eq!(c.validity.len(), 3);
        }
        p.truncate(10); // no-op past the end
        assert_eq!(p.len, 3);
    }
}

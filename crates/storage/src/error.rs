//! Storage-layer errors.

use std::fmt;

/// Errors produced by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The binary codec met malformed bytes (corruption or version skew).
    Corrupt { offset: usize, message: String },
    /// A put attempted to write a version at or below the latest stored
    /// version for the document (versions must advance monotonically).
    StaleVersion { latest: u32, attempted: u32 },
    /// A compressed block failed its integrity check.
    BadBlock(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Corrupt { offset, message } => {
                write!(f, "corrupt encoding at byte {offset}: {message}")
            }
            StorageError::StaleVersion { latest, attempted } => {
                write!(f, "stale version {attempted} (latest is {latest})")
            }
            StorageError::BadBlock(m) => write!(f, "bad compressed block: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = StorageError::StaleVersion {
            latest: 3,
            attempted: 2,
        };
        assert_eq!(e.to_string(), "stale version 2 (latest is 3)");
    }
}

//! A partition: one memtable plus its sealed segments and version map.
//!
//! Partitions are the unit of ownership a data node holds. Each tracks,
//! per logical document, the full version chain location so both
//! latest-version scans and point-in-time reads (§4 auditing) are served
//! without rewriting history.

use std::collections::HashMap;

use impliance_docmodel::{DocId, Document, Version};

use crate::columnar::{ColumnPage, ColumnPageBuilder};
use crate::error::StorageError;
use crate::memtable::Memtable;
use crate::pushdown::{
    aggregate_document, project, Predicate, Projection, ScanMetrics, ScanRequest, ScanResult,
};
use crate::segment::Segment;
use crate::stats::PartitionStats;

/// Where one document version lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// In the active memtable at the given entry index.
    Mem(usize),
    /// In sealed segment `seg` at directory index `idx`.
    Seg { seg: usize, idx: usize },
}

/// One link of a document's version chain: which version, where it
/// lives, when it was ingested, and the epoch of the commit that wrote
/// it (0 for writes outside an epoch commit — visible at every
/// snapshot). Epochs are non-decreasing along a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChainEntry {
    version: Version,
    loc: Location,
    ingested_at: i64,
    epoch: u64,
}

/// Cursor into a partition's latest-version scan order (sealed segments
/// in seal order, then the memtable).
///
/// Positions survive concurrent seals: [`crate::memtable::Memtable::drain`]
/// preserves entry order, so when the memtable a cursor was reading drains
/// into a new segment, the cursor resumes inside that segment at its old
/// memtable offset. Obtain a fresh cursor with `ScanPos::default()` and
/// thread it through [`Partition::scan_page`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanPos {
    /// Next segment index to read (== segments fully consumed so far).
    seg: usize,
    /// Next directory index within segment `seg`.
    idx: usize,
    /// Next memtable entry index (meaningful once segments are done).
    mem: usize,
    /// Matching documents already emitted toward the request's `limit`.
    emitted: usize,
}

/// One storage partition.
#[derive(Debug)]
pub struct Partition {
    memtable: Memtable,
    segments: Vec<Segment>,
    /// id → ordered version chain. Appended by `put_at`; entries are
    /// removed only by [`Partition::reclaim`] (lazy version GC), and only
    /// when no live or future snapshot can observe them.
    chains: HashMap<DocId, Vec<ChainEntry>>,
    stats: PartitionStats,
    seal_threshold: usize,
    compress: bool,
    encryption_key: Option<crate::crypt::Key>,
    nonce_base: u64,
}

impl Partition {
    /// Create a partition sealing after `seal_threshold` buffered versions.
    pub fn new(seal_threshold: usize, compress: bool) -> Partition {
        Partition::new_with_encryption(seal_threshold, compress, None, 0)
    }

    /// Create a partition with optional at-rest encryption.
    pub fn new_with_encryption(
        seal_threshold: usize,
        compress: bool,
        encryption_key: Option<crate::crypt::Key>,
        nonce_base: u64,
    ) -> Partition {
        Partition {
            memtable: Memtable::new(),
            segments: Vec::new(),
            chains: HashMap::new(),
            stats: PartitionStats::default(),
            seal_threshold: seal_threshold.max(1),
            compress,
            encryption_key,
            nonce_base,
        }
    }

    /// Append a document version outside any epoch commit (stamped with
    /// epoch 0, visible at every snapshot). Rejects non-monotonic
    /// versions for an existing chain.
    pub fn put(&mut self, doc: &Document) -> Result<(), StorageError> {
        self.put_at(doc, 0)
    }

    /// Check that `doc` would be accepted by [`Partition::put_at`]
    /// without mutating anything — the validate phase of the engine's
    /// two-phase multi-document commit.
    pub fn validate_put(&self, doc: &Document) -> Result<(), StorageError> {
        if let Some(latest) = self.chains.get(&doc.id()).and_then(|c| c.last()) {
            if doc.version() <= latest.version {
                return Err(StorageError::StaleVersion {
                    latest: latest.version.0,
                    attempted: doc.version().0,
                });
            }
        }
        Ok(())
    }

    /// Append a document version stamped with the given commit epoch.
    /// Rejects non-monotonic versions for an existing chain.
    pub fn put_at(&mut self, doc: &Document, epoch: u64) -> Result<(), StorageError> {
        self.validate_put(doc)?;
        let idx = self.memtable.put(doc);
        let encoded_len = self.memtable.encoded_len(idx);
        let is_new_chain = !self.chains.contains_key(&doc.id());
        self.chains.entry(doc.id()).or_default().push(ChainEntry {
            version: doc.version(),
            loc: Location::Mem(idx),
            ingested_at: doc.ingested_at(),
            epoch,
        });
        self.stats.observe_document(doc, encoded_len);
        if is_new_chain {
            self.stats.live_docs += 1;
        }
        if self.memtable.len() >= self.seal_threshold {
            self.seal();
        }
        Ok(())
    }

    /// Lazy version GC: drop every chain entry that is superseded by a
    /// successor committed at or below `watermark` (the minimum pinned
    /// epoch). Such entries can no longer be chosen by any live or future
    /// snapshot. Memtable-resident reclaimed versions have their bytes
    /// tombstoned in place (entry *slots* are preserved so concurrent
    /// scan cursors stay valid); segment-resident bytes stay until their
    /// segment is rewritten, but the version disappears from
    /// `total_versions()` and all reads. Returns reclaimed entries.
    ///
    /// Note this intentionally trades §4 time travel for bounded space:
    /// reclaimed versions are gone from `versions`/`get_as_of` too, which
    /// is why the engine keeps GC opt-in.
    pub fn reclaim(&mut self, watermark: u64) -> u64 {
        let mut reclaimed = 0u64;
        for chain in self.chains.values_mut() {
            // Last entry visible at the watermark; everything before it
            // is unreachable from any snapshot ≥ watermark.
            let Some(keep_from) = chain.iter().rposition(|e| e.epoch <= watermark) else {
                continue;
            };
            if keep_from == 0 {
                continue;
            }
            for e in chain.drain(..keep_from) {
                if let Location::Mem(i) = e.loc {
                    self.memtable.tombstone(i);
                }
                reclaimed += 1;
            }
        }
        self.stats.versions_reclaimed += reclaimed;
        reclaimed
    }

    /// Freeze the memtable into a new segment and rewrite memtable
    /// locations to segment locations.
    pub fn seal(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let entries = self.memtable.drain();
        let seg_no = self.segments.len();
        let mut remap: HashMap<(DocId, Version), usize> = HashMap::new();
        for (i, e) in entries.iter().enumerate() {
            remap.insert((e.id, e.version), i);
        }
        let segment = Segment::seal_with(
            entries,
            self.compress,
            self.encryption_key,
            self.nonce_base | seg_no as u64,
        );
        self.segments.push(segment);
        self.fix_locations(seg_no, &remap);
    }

    /// Rewrite any remaining `Mem` locations using the remap table.
    fn fix_locations(&mut self, seg_no: usize, remap: &HashMap<(DocId, Version), usize>) {
        for (id, chain) in self.chains.iter_mut() {
            for entry in chain.iter_mut() {
                if matches!(entry.loc, Location::Mem(_)) {
                    if let Some(&idx) = remap.get(&(*id, entry.version)) {
                        entry.loc = Location::Seg { seg: seg_no, idx };
                    }
                }
            }
        }
    }

    /// Fetch a document at a given location.
    fn fetch(&self, loc: Location) -> Result<Document, StorageError> {
        match loc {
            Location::Mem(i) => self.memtable.get(i),
            Location::Seg { seg, idx } => self.segments[seg].get(idx),
        }
    }

    /// Latest version of a document.
    pub fn get_latest(&self, id: DocId) -> Result<Option<Document>, StorageError> {
        self.get_latest_at(id, u64::MAX)
    }

    /// Latest version of a document visible at snapshot epoch `snap`
    /// (the last chain entry whose commit epoch is ≤ `snap`).
    pub fn get_latest_at(&self, id: DocId, snap: u64) -> Result<Option<Document>, StorageError> {
        match self.chains.get(&id).and_then(|c| Self::visible_at(c, snap)) {
            Some(entry) => Ok(Some(self.fetch(entry.loc)?)),
            None => Ok(None),
        }
    }

    /// A specific version of a document.
    pub fn get_version(&self, id: DocId, v: Version) -> Result<Option<Document>, StorageError> {
        match self
            .chains
            .get(&id)
            .and_then(|c| c.iter().find(|e| e.version == v))
        {
            Some(entry) => Ok(Some(self.fetch(entry.loc)?)),
            None => Ok(None),
        }
    }

    /// The version that was current at timestamp `ts` (the latest version
    /// ingested at or before it), or `None` if the document did not exist
    /// yet — §4's auditing time travel.
    pub fn get_as_of(&self, id: DocId, ts: i64) -> Result<Option<Document>, StorageError> {
        match self
            .chains
            .get(&id)
            .and_then(|c| c.iter().rev().find(|e| e.ingested_at <= ts))
        {
            Some(entry) => Ok(Some(self.fetch(entry.loc)?)),
            None => Ok(None),
        }
    }

    /// All stored versions of a document, oldest first.
    pub fn versions(&self, id: DocId) -> Vec<Version> {
        self.chains
            .get(&id)
            .map(|c| c.iter().map(|e| e.version).collect())
            .unwrap_or_default()
    }

    /// Number of live (latest-version) documents.
    pub fn live_docs(&self) -> usize {
        self.chains.len()
    }

    /// Total stored document versions.
    pub fn total_versions(&self) -> usize {
        self.chains.values().map(Vec::len).sum()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> &PartitionStats {
        &self.stats
    }

    /// Stored bytes (segments at stored size + memtable raw).
    pub fn stored_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(Segment::stored_bytes)
            .sum::<usize>()
            + self.memtable.bytes()
    }

    /// Execute a scan request over the *latest versions* in this
    /// partition, applying predicate/projection/aggregation at the storage
    /// node (push-down). Materialized wrapper over [`Partition::scan_page`].
    pub fn scan(&self, req: &ScanRequest) -> Result<ScanResult, StorageError> {
        let mut result = ScanResult::default();
        let mut pos = ScanPos::default();
        loop {
            let (page, next, done) = self.scan_page(req, pos, usize::MAX)?;
            result.merge(page);
            pos = next;
            if done {
                return Ok(result);
            }
        }
    }

    /// The chain entry a snapshot at epoch `snap` selects: the last one
    /// whose commit epoch is ≤ `snap`. Epochs are non-decreasing along a
    /// chain, so this is the newest visible version. `u64::MAX` selects
    /// the unconditional latest.
    fn visible_at(chain: &[ChainEntry], snap: u64) -> Option<&ChainEntry> {
        chain.iter().rev().find(|e| e.epoch <= snap)
    }

    /// True when `loc` holds the version of document `id` that a
    /// snapshot at epoch `snap` observes.
    fn is_visible_latest(&self, id: DocId, loc: Location, snap: u64) -> bool {
        self.chains
            .get(&id)
            .and_then(|c| Self::visible_at(c, snap))
            .map(|e| e.loc == loc)
            .unwrap_or(false)
    }

    /// Scan one page of the partition starting at `pos`: up to `max_docs`
    /// *matching* documents are emitted (the page keeps scanning through
    /// non-matching documents, so predicate push-down stays per-batch).
    /// Returns the page, the advanced cursor, and `true` once the
    /// partition is exhausted or the request's `limit` has been met.
    pub fn scan_page(
        &self,
        req: &ScanRequest,
        pos: ScanPos,
        max_docs: usize,
    ) -> Result<(ScanResult, ScanPos, bool), StorageError> {
        let mut pos = pos;
        // A concurrent seal may have drained the memtable this cursor was
        // mid-way through into segment `pos.seg`; entry order is preserved
        // by the drain, so resume inside that segment at the old offset.
        if pos.seg < self.segments.len() && pos.mem > 0 {
            pos.idx = pos.mem;
            pos.mem = 0;
        }
        let mut out = ScanResult::default();
        let budget = max_docs.max(1);
        let limit = req.limit.unwrap_or(usize::MAX);
        let snap = req.snapshot.unwrap_or(u64::MAX);
        if pos.emitted >= limit {
            return Ok((out, pos, true));
        }
        // Sealed segments, oldest first; one block load per page-visit.
        while pos.seg < self.segments.len() {
            // Budget/limit check up front so a segment entered at idx 0
            // always processes at least one entry — segment accounting
            // below then counts each segment exactly once per cursor.
            let emitted = out.documents.len() + out.ids.len();
            if emitted >= budget || pos.emitted + emitted >= limit {
                let done = pos.emitted + emitted >= limit;
                pos.emitted += emitted;
                return Ok((out, pos, done));
            }
            let segment = &self.segments[pos.seg];
            let dir = segment.directory();
            if pos.idx < dir.len() {
                if pos.idx == 0 {
                    // Zone-map pruning: skip the whole segment before
                    // decryption/decompression when the predicate provably
                    // matches nothing in it.
                    if let (Some(pred), Some(zone)) = (req.predicate.as_ref(), segment.zone_map()) {
                        if pred.prunes_zone(zone) {
                            out.metrics.segments_skipped += 1;
                            pos.seg += 1;
                            continue;
                        }
                    }
                    out.metrics.segments_scanned += 1;
                }
                let block = segment.load_block()?;
                while pos.idx < dir.len() {
                    let emitted = out.documents.len() + out.ids.len();
                    if emitted >= budget || pos.emitted + emitted >= limit {
                        let done = pos.emitted + emitted >= limit;
                        pos.emitted += emitted;
                        return Ok((out, pos, done));
                    }
                    let entry = &dir[pos.idx];
                    let here = Location::Seg {
                        seg: pos.seg,
                        idx: pos.idx,
                    };
                    pos.idx += 1;
                    if !self.is_visible_latest(entry.id, here, snap) {
                        continue;
                    }
                    let (doc, _) = crate::codec::decode_document(&block, entry.offset as usize)?;
                    self.consider_from(doc, entry.len as usize, req, &mut out, pos.emitted);
                }
            }
            pos.seg += 1;
            pos.idx = 0;
        }
        // The active memtable.
        for (i, id, _v, len) in self.memtable.iter_meta() {
            if i < pos.mem {
                continue;
            }
            let emitted = out.documents.len() + out.ids.len();
            if emitted >= budget || pos.emitted + emitted >= limit {
                let done = pos.emitted + emitted >= limit;
                pos.emitted += emitted;
                return Ok((out, pos, done));
            }
            pos.mem = i + 1;
            if !self.is_visible_latest(id, Location::Mem(i), snap) {
                continue;
            }
            let doc = self.memtable.get(i)?;
            self.consider_from(doc, len, req, &mut out, pos.emitted);
        }
        pos.emitted += out.documents.len() + out.ids.len();
        Ok((out, pos, true))
    }

    /// Columnar fast path: scan one page like [`Partition::scan_page`]
    /// but decode matching documents straight into typed column vectors
    /// for `paths`. `prune` is an *additional* predicate (typically the
    /// request predicate AND-ed with filters the query layer will apply
    /// as vectorized masks) used **only** for zone-map skipping — it must
    /// be a superset condition of what the caller keeps, never looser.
    /// Projection/aggregation are not supported here; rows carry full
    /// documents, and byte metrics mirror the row path exactly.
    pub fn scan_page_columnar(
        &self,
        req: &ScanRequest,
        prune: Option<&Predicate>,
        pos: ScanPos,
        max_docs: usize,
        paths: &[String],
    ) -> Result<(ColumnPage, ScanPos, bool), StorageError> {
        let mut pos = pos;
        if pos.seg < self.segments.len() && pos.mem > 0 {
            pos.idx = pos.mem;
            pos.mem = 0;
        }
        let mut builder = ColumnPageBuilder::new(paths);
        let mut metrics = ScanMetrics::default();
        let budget = max_docs.max(1);
        let limit = req.limit.unwrap_or(usize::MAX);
        let snap = req.snapshot.unwrap_or(u64::MAX);
        let zone_pred = prune.or(req.predicate.as_ref());
        if pos.emitted >= limit {
            let mut page = builder.finish();
            page.metrics = metrics;
            return Ok((page, pos, true));
        }
        while pos.seg < self.segments.len() {
            if builder.len() >= budget || pos.emitted + builder.len() >= limit {
                let done = pos.emitted + builder.len() >= limit;
                pos.emitted += builder.len();
                let mut page = builder.finish();
                page.metrics = metrics;
                return Ok((page, pos, done));
            }
            let segment = &self.segments[pos.seg];
            let dir = segment.directory();
            if pos.idx < dir.len() {
                if pos.idx == 0 {
                    if let (Some(pred), Some(zone)) = (zone_pred, segment.zone_map()) {
                        if pred.prunes_zone(zone) {
                            metrics.segments_skipped += 1;
                            pos.seg += 1;
                            continue;
                        }
                    }
                    metrics.segments_scanned += 1;
                }
                let block = segment.load_block()?;
                while pos.idx < dir.len() {
                    if builder.len() >= budget || pos.emitted + builder.len() >= limit {
                        let done = pos.emitted + builder.len() >= limit;
                        pos.emitted += builder.len();
                        let mut page = builder.finish();
                        page.metrics = metrics;
                        return Ok((page, pos, done));
                    }
                    let entry = &dir[pos.idx];
                    let here = Location::Seg {
                        seg: pos.seg,
                        idx: pos.idx,
                    };
                    pos.idx += 1;
                    if !self.is_visible_latest(entry.id, here, snap) {
                        continue;
                    }
                    let (doc, _) = crate::codec::decode_document(&block, entry.offset as usize)?;
                    Self::consider_columnar(
                        doc,
                        entry.len as usize,
                        req,
                        &mut builder,
                        &mut metrics,
                    );
                }
            }
            pos.seg += 1;
            pos.idx = 0;
        }
        for (i, id, _v, len) in self.memtable.iter_meta() {
            if i < pos.mem {
                continue;
            }
            if builder.len() >= budget || pos.emitted + builder.len() >= limit {
                let done = pos.emitted + builder.len() >= limit;
                pos.emitted += builder.len();
                let mut page = builder.finish();
                page.metrics = metrics;
                return Ok((page, pos, done));
            }
            pos.mem = i + 1;
            if !self.is_visible_latest(id, Location::Mem(i), snap) {
                continue;
            }
            let doc = self.memtable.get(i)?;
            Self::consider_columnar(doc, len, req, &mut builder, &mut metrics);
        }
        pos.emitted += builder.len();
        let mut page = builder.finish();
        page.metrics = metrics;
        Ok((page, pos, true))
    }

    /// Columnar twin of `consider_from`: same predicate and byte
    /// accounting (a full-document emit re-encodes to exactly the stored
    /// entry bytes, so `bytes_returned` matches the row path bit for bit).
    fn consider_columnar(
        doc: Document,
        encoded_len: usize,
        req: &ScanRequest,
        builder: &mut ColumnPageBuilder,
        metrics: &mut ScanMetrics,
    ) {
        metrics.docs_scanned += 1;
        metrics.bytes_scanned += encoded_len as u64;
        let matched = req
            .predicate
            .as_ref()
            .map(|p| p.matches(&doc))
            .unwrap_or(true);
        if !matched {
            return;
        }
        metrics.docs_matched += 1;
        metrics.bytes_returned += encoded_len as u64;
        builder.push(std::sync::Arc::new(doc));
    }

    /// Execute a scan over the snapshot as of timestamp `ts`: for every
    /// chain the version current at `ts` participates (documents created
    /// later are invisible).
    pub fn scan_as_of(&self, req: &ScanRequest, ts: i64) -> Result<ScanResult, StorageError> {
        let mut result = ScanResult::default();
        for chain in self.chains.values() {
            if let Some(entry) = chain.iter().rev().find(|e| e.ingested_at <= ts) {
                let doc = self.fetch(entry.loc)?;
                let encoded_len = crate::codec::encode_document_vec(&doc).len();
                self.consider(doc, encoded_len, req, &mut result);
            }
        }
        Ok(result)
    }

    fn consider(&self, doc: Document, encoded_len: usize, req: &ScanRequest, out: &mut ScanResult) {
        self.consider_from(doc, encoded_len, req, out, 0)
    }

    /// Like `consider`, but the request's `limit` is checked against
    /// `emitted_before` prior emissions plus what this page already holds
    /// (pages of one cursor share the limit).
    fn consider_from(
        &self,
        doc: Document,
        encoded_len: usize,
        req: &ScanRequest,
        out: &mut ScanResult,
        emitted_before: usize,
    ) {
        out.metrics.docs_scanned += 1;
        out.metrics.bytes_scanned += encoded_len as u64;
        if let Some(limit) = req.limit {
            if emitted_before + out.documents.len() + out.ids.len() >= limit {
                return;
            }
        }
        let matched = req
            .predicate
            .as_ref()
            .map(|p| p.matches(&doc))
            .unwrap_or(true);
        if !matched {
            return;
        }
        out.metrics.docs_matched += 1;
        if let Some(spec) = &req.aggregate {
            aggregate_document(&doc, spec, &mut out.groups);
            // aggregates travel as tiny group states; approximate their
            // wire size as 32 bytes per update
            out.metrics.bytes_returned += 32;
            return;
        }
        match &req.projection {
            Projection::IdsOnly => {
                out.ids.push(doc.id());
                out.metrics.bytes_returned += 8;
            }
            proj => {
                let projected = project(&doc, proj);
                let bytes = crate::codec::encode_document_vec(&projected);
                out.metrics.bytes_returned += bytes.len() as u64;
                out.documents.push(projected);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pushdown::{AggFunc, AggSpec, Predicate};
    use impliance_docmodel::{DocumentBuilder, Node, SourceFormat, Value};

    fn doc(i: u64, amount: i64) -> Document {
        DocumentBuilder::new(DocId(i), SourceFormat::Json, "claims")
            .field("amount", amount)
            .field("make", if i.is_multiple_of(2) { "Volvo" } else { "Saab" })
            .build()
    }

    #[test]
    fn put_get_latest_across_seal() {
        let mut p = Partition::new(4, true);
        for i in 0..10 {
            p.put(&doc(i, i as i64 * 100)).unwrap();
        }
        // threshold 4 → at least two segments sealed
        assert!(p.segments.len() >= 2);
        for i in 0..10 {
            let d = p.get_latest(DocId(i)).unwrap().unwrap();
            assert_eq!(
                d.get_str_path("amount").unwrap().as_value().unwrap(),
                &Value::Int(i as i64 * 100)
            );
        }
    }

    #[test]
    fn version_chain_reads() {
        let mut p = Partition::new(2, false);
        let d1 = doc(1, 100);
        p.put(&d1).unwrap();
        let d2 = d1.new_version(Node::map([("amount".into(), Node::scalar(200i64))]), 1);
        p.put(&d2).unwrap();
        let d3 = d2.new_version(Node::map([("amount".into(), Node::scalar(300i64))]), 2);
        p.put(&d3).unwrap();

        assert_eq!(
            p.versions(DocId(1)),
            vec![Version(1), Version(2), Version(3)]
        );
        let latest = p.get_latest(DocId(1)).unwrap().unwrap();
        assert_eq!(latest.version(), Version(3));
        let old = p.get_version(DocId(1), Version(1)).unwrap().unwrap();
        assert_eq!(
            old.get_str_path("amount").unwrap().as_value().unwrap(),
            &Value::Int(100)
        );
        assert_eq!(p.live_docs(), 1);
        assert_eq!(p.total_versions(), 3);
    }

    #[test]
    fn stale_version_rejected() {
        let mut p = Partition::new(100, false);
        let d1 = doc(1, 100);
        p.put(&d1).unwrap();
        assert!(matches!(p.put(&d1), Err(StorageError::StaleVersion { .. })));
    }

    #[test]
    fn scan_sees_only_latest_versions() {
        let mut p = Partition::new(3, true);
        let d1 = doc(1, 100);
        p.put(&d1).unwrap();
        let d2 = d1.new_version(Node::map([("amount".into(), Node::scalar(999i64))]), 1);
        p.put(&d2).unwrap();
        p.put(&doc(2, 50)).unwrap();
        p.put(&doc(3, 60)).unwrap(); // forces sealing along the way

        let res = p.scan(&ScanRequest::full()).unwrap();
        assert_eq!(res.documents.len(), 3);
        let amounts: Vec<i64> = res
            .documents
            .iter()
            .map(|d| {
                d.get_str_path("amount")
                    .unwrap()
                    .as_value()
                    .unwrap()
                    .as_i64()
                    .unwrap()
            })
            .collect();
        assert!(amounts.contains(&999));
        assert!(
            !amounts.contains(&100),
            "superseded version must not appear"
        );
    }

    #[test]
    fn scan_with_predicate_and_metrics() {
        let mut p = Partition::new(8, true);
        for i in 0..20 {
            p.put(&doc(i, i as i64)).unwrap();
        }
        let req = ScanRequest::filtered(Predicate::Ge("amount".into(), Value::Int(15)));
        let res = p.scan(&req).unwrap();
        assert_eq!(res.documents.len(), 5);
        // Segment 0 (amounts 0..8) is zone-pruned whole; segment 1
        // (amounts 8..16) and the memtable (16..20) are scanned.
        assert_eq!(res.metrics.docs_scanned, 12);
        assert_eq!(res.metrics.docs_matched, 5);
        assert_eq!(res.metrics.segments_skipped, 1);
        assert_eq!(res.metrics.segments_scanned, 1);
        assert!(res.metrics.bytes_scanned > res.metrics.bytes_returned);
    }

    #[test]
    fn columnar_page_scan_matches_row_scan() {
        let mut p = Partition::new(8, true);
        for i in 0..20 {
            p.put(&doc(i, i as i64)).unwrap();
        }
        let req = ScanRequest::filtered(Predicate::Ge("amount".into(), Value::Int(15)));
        let row = p.scan(&req).unwrap();
        let paths = vec!["amount".to_string(), "make".to_string()];
        let mut pos = ScanPos::default();
        let mut docs = Vec::new();
        let mut metrics = ScanMetrics::default();
        loop {
            let (page, next, done) = p.scan_page_columnar(&req, None, pos, 4, &paths).unwrap();
            metrics.merge(&page.metrics);
            let amount = page.column("amount").expect("amount column").clone();
            for i in 0..page.len {
                assert!(amount.validity.get(i));
                assert_eq!(amount.value_at(i), Value::Int(page.docs[i].id().0 as i64));
            }
            docs.extend(page.docs);
            pos = next;
            if done {
                break;
            }
        }
        let row_ids: Vec<u64> = row.documents.iter().map(|d| d.id().0).collect();
        let col_ids: Vec<u64> = docs.iter().map(|d| d.id().0).collect();
        assert_eq!(row_ids, col_ids);
        assert_eq!(metrics, row.metrics, "columnar metrics must mirror rows");
    }

    #[test]
    fn columnar_prune_predicate_skips_more() {
        let mut p = Partition::new(8, true);
        for i in 0..20 {
            p.put(&doc(i, i as i64)).unwrap();
        }
        // Unfiltered request, but a fused query filter prunes via zones.
        let req = ScanRequest::full();
        let fused = Predicate::Ge("amount".into(), Value::Int(16));
        let paths = vec!["amount".to_string()];
        let (page, _, done) = p
            .scan_page_columnar(&req, Some(&fused), ScanPos::default(), usize::MAX, &paths)
            .unwrap();
        assert!(done);
        assert_eq!(page.metrics.segments_skipped, 2);
        assert_eq!(page.metrics.segments_scanned, 0);
        // Both segments skipped; only the memtable's docs were decoded.
        assert_eq!(page.metrics.docs_scanned, 4);
        // The fused filter is NOT applied here — the query layer masks it.
        assert_eq!(page.len, 4);
        let mask = page.eval_mask(&fused);
        assert_eq!(mask.count_ones(), 4);
    }

    #[test]
    fn scan_pushdown_aggregate() {
        let mut p = Partition::new(8, false);
        for i in 0..10 {
            p.put(&doc(i, 10)).unwrap();
        }
        let req = ScanRequest {
            predicate: None,
            projection: Projection::All,
            aggregate: Some(AggSpec {
                group_by: Some("make".into()),
                func: AggFunc::Sum,
                operand: Some("amount".into()),
            }),
            limit: None,
            snapshot: None,
        };
        let res = p.scan(&req).unwrap();
        assert!(res.documents.is_empty());
        assert_eq!(res.groups["Volvo"].finish(AggFunc::Sum), Value::Float(50.0));
        assert_eq!(res.groups["Saab"].finish(AggFunc::Sum), Value::Float(50.0));
    }

    #[test]
    fn scan_ids_only_returns_small_bytes() {
        let mut p = Partition::new(100, false);
        for i in 0..10 {
            p.put(&doc(i, 1)).unwrap();
        }
        let req = ScanRequest {
            projection: Projection::IdsOnly,
            ..ScanRequest::full()
        };
        let res = p.scan(&req).unwrap();
        assert_eq!(res.ids.len(), 10);
        assert_eq!(res.metrics.bytes_returned, 80);
    }

    #[test]
    fn scan_limit_stops_early() {
        let mut p = Partition::new(100, false);
        for i in 0..50 {
            p.put(&doc(i, 1)).unwrap();
        }
        let req = ScanRequest {
            limit: Some(5),
            ..ScanRequest::full()
        };
        let res = p.scan(&req).unwrap();
        assert_eq!(res.documents.len(), 5);
    }

    #[test]
    fn scan_page_matches_materialized_scan() {
        let mut p = Partition::new(7, true);
        for i in 0..40 {
            p.put(&doc(i, i as i64)).unwrap();
        }
        let req = ScanRequest::filtered(Predicate::Ge("amount".into(), Value::Int(10)));
        let full = p.scan(&req).unwrap();
        let mut paged = ScanResult::default();
        let mut pos = ScanPos::default();
        let mut pages = 0;
        loop {
            let (page, next, done) = p.scan_page(&req, pos, 4).unwrap();
            assert!(page.documents.len() <= 4, "page overflows max_docs");
            paged.merge(page);
            pos = next;
            pages += 1;
            if done {
                break;
            }
        }
        assert!(pages > 1, "40 docs at 4/page must take several pages");
        assert_eq!(paged.documents.len(), full.documents.len());
        assert_eq!(paged.metrics, full.metrics);
    }

    #[test]
    fn scan_page_cursor_survives_seal() {
        let mut p = Partition::new(1000, false);
        for i in 0..12 {
            p.put(&doc(i, 1)).unwrap();
        }
        let req = ScanRequest::full();
        // First page lands mid-memtable …
        let (page, pos, done) = p.scan_page(&req, ScanPos::default(), 5).unwrap();
        assert_eq!(page.documents.len(), 5);
        assert!(!done);
        // … then a seal drains the memtable into a segment …
        p.seal();
        for i in 12..15 {
            p.put(&doc(i, 1)).unwrap();
        }
        // … and the cursor continues without duplicates or misses.
        let mut ids: Vec<u64> = page.documents.iter().map(|d| d.id().0).collect();
        let mut pos = pos;
        loop {
            let (page, next, done) = p.scan_page(&req, pos, 5).unwrap();
            ids.extend(page.documents.iter().map(|d| d.id().0));
            pos = next;
            if done {
                break;
            }
        }
        ids.sort_unstable();
        assert_eq!(ids, (0..15).collect::<Vec<u64>>());
    }

    #[test]
    fn scan_page_limit_spans_pages() {
        let mut p = Partition::new(1000, false);
        for i in 0..30 {
            p.put(&doc(i, 1)).unwrap();
        }
        let req = ScanRequest {
            limit: Some(7),
            ..ScanRequest::full()
        };
        let mut got = 0;
        let mut pos = ScanPos::default();
        loop {
            let (page, next, done) = p.scan_page(&req, pos, 3).unwrap();
            got += page.documents.len();
            pos = next;
            if done {
                break;
            }
        }
        assert_eq!(got, 7, "limit enforced across pages");
    }

    #[test]
    fn snapshot_scans_select_epoch_consistent_versions() {
        let mut p = Partition::new(3, true);
        let d1 = doc(1, 100);
        p.put_at(&d1, 1).unwrap();
        p.put_at(&doc(2, 50), 2).unwrap();
        let d1b = d1.new_version(Node::map([("amount".into(), Node::scalar(999i64))]), 1);
        p.put_at(&d1b, 3).unwrap(); // forces a seal at threshold 3
        p.put_at(&doc(3, 60), 4).unwrap();

        let at = |snap: u64| {
            let req = ScanRequest {
                snapshot: Some(snap),
                ..ScanRequest::full()
            };
            let res = p.scan(&req).unwrap();
            let mut pairs: Vec<(u64, i64)> = res
                .documents
                .iter()
                .map(|d| {
                    (
                        d.id().0,
                        d.get_str_path("amount")
                            .unwrap()
                            .as_value()
                            .unwrap()
                            .as_i64()
                            .unwrap(),
                    )
                })
                .collect();
            pairs.sort_unstable();
            pairs
        };
        assert_eq!(at(0), vec![]);
        assert_eq!(at(1), vec![(1, 100)]);
        assert_eq!(at(2), vec![(1, 100), (2, 50)]);
        assert_eq!(at(3), vec![(1, 999), (2, 50)]);
        assert_eq!(at(4), vec![(1, 999), (2, 50), (3, 60)]);
        // Point reads agree with scans at every snapshot.
        assert!(p.get_latest_at(DocId(1), 0).unwrap().is_none());
        let v_at_2 = p.get_latest_at(DocId(1), 2).unwrap().unwrap();
        assert_eq!(v_at_2.version(), Version(1));
        let v_at_3 = p.get_latest_at(DocId(1), 3).unwrap().unwrap();
        assert_eq!(v_at_3.version(), Version(2));
    }

    #[test]
    fn reclaim_drops_only_superseded_below_watermark() {
        let mut p = Partition::new(1000, false);
        let d1 = doc(1, 100);
        p.put_at(&d1, 1).unwrap();
        let d2 = d1.new_version(Node::map([("amount".into(), Node::scalar(200i64))]), 1);
        p.put_at(&d2, 2).unwrap();
        let d3 = d2.new_version(Node::map([("amount".into(), Node::scalar(300i64))]), 2);
        p.put_at(&d3, 3).unwrap();
        assert_eq!(p.total_versions(), 3);

        // Watermark 1: a snapshot at epoch 1 may still read v1.
        assert_eq!(p.reclaim(1), 0);
        // Watermark 2: v1 is superseded by v2 (epoch 2 ≤ watermark).
        assert_eq!(p.reclaim(2), 1);
        assert_eq!(p.total_versions(), 2);
        assert_eq!(p.versions(DocId(1)), vec![Version(2), Version(3)]);
        // Watermark 3: v2 superseded by v3.
        assert_eq!(p.reclaim(3), 1);
        assert_eq!(p.total_versions(), 1);
        // The survivor is intact, readable, and still the latest.
        let latest = p.get_latest(DocId(1)).unwrap().unwrap();
        assert_eq!(latest.version(), Version(3));
        let res = p.scan(&ScanRequest::full()).unwrap();
        assert_eq!(res.documents.len(), 1);
        assert_eq!(p.stats().versions_reclaimed, 2);
    }

    #[test]
    fn reclaimed_memtable_entries_survive_seal_and_cursors() {
        let mut p = Partition::new(1000, true);
        for i in 0..6 {
            p.put_at(&doc(i, i as i64), i + 1).unwrap();
        }
        // Overwrite docs 0..3 at later epochs, then reclaim.
        for i in 0..3u64 {
            let d = p.get_latest(DocId(i)).unwrap().unwrap();
            p.put_at(
                &d.new_version(Node::map([("amount".into(), Node::scalar(777i64))]), 1),
                10 + i,
            )
            .unwrap();
        }
        assert_eq!(p.reclaim(13), 3);
        // A scan cursor started now survives a seal landing mid-scan.
        let req = ScanRequest::full();
        let (page, pos, done) = p.scan_page(&req, ScanPos::default(), 2).unwrap();
        assert!(!done);
        p.seal();
        let mut ids: Vec<u64> = page.documents.iter().map(|d| d.id().0).collect();
        let mut pos = pos;
        loop {
            let (page, next, done) = p.scan_page(&req, pos, 2).unwrap();
            ids.extend(page.documents.iter().map(|d| d.id().0));
            pos = next;
            if done {
                break;
            }
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, (0..6).collect::<Vec<u64>>());
        // Sealing tombstoned entries must not disable zone pruning.
        assert!(
            p.segments.last().unwrap().zone_map().is_some(),
            "zone map built despite tombstoned entries in the sealed run"
        );
    }

    #[test]
    fn stored_bytes_nonzero_and_stats() {
        let mut p = Partition::new(4, true);
        for i in 0..8 {
            p.put(&doc(i, i as i64)).unwrap();
        }
        assert!(p.stored_bytes() > 0);
        assert_eq!(p.stats().doc_versions, 8);
        assert_eq!(p.stats().live_docs, 8);
        assert!(p.stats().paths.contains_key("amount"));
    }
}

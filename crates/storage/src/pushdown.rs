//! Predicate, projection, and aggregation push-down.
//!
//! §3.1: "higher-level functionality like aggregation and predicate
//! application can be more easily 'pushed down' closer to the storage for
//! early data reduction." This module defines the request language a data
//! node accepts and evaluates it *inside* the storage engine, so only
//! reduced data crosses the (simulated) network. [`ScanMetrics`] records
//! bytes scanned vs. bytes returned; experiment C2 compares the two with
//! push-down on and off.

use std::collections::BTreeMap;

use impliance_docmodel::{Document, Node, Value};

use crate::columnar::CmpOp;
use crate::segment::{PathZone, ZoneMap};

/// The total-order rank of a value, mirroring `Value::total_cmp`: values
/// of different ranks compare by rank alone (Null < Bool < numeric <
/// Str < Bytes), which is what lets zone maps and columnar kernels turn
/// cross-rank comparisons into constants.
pub fn value_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 2,
        Value::Str(_) => 3,
        Value::Bytes(_) => 4,
    }
}

/// A document-level predicate over structural paths.
///
/// Path operands are *structural* forms (`orders[].sku`): a comparison is
/// true if **any** leaf whose structural path matches satisfies it —
/// existential semantics, the natural choice for schema-free documents.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (full scan).
    True,
    /// Leaf equals value.
    Eq(String, Value),
    /// Leaf differs from value (existential: some matching leaf differs).
    Ne(String, Value),
    /// Leaf less than value.
    Lt(String, Value),
    /// Leaf less than or equal.
    Le(String, Value),
    /// Leaf greater than value.
    Gt(String, Value),
    /// Leaf greater than or equal.
    Ge(String, Value),
    /// String leaf contains the given substring (case-insensitive).
    Contains(String, String),
    /// A leaf exists at the structural path.
    Exists(String),
    /// Document belongs to the named collection.
    CollectionIs(String),
    /// Document was ingested from the named format (see
    /// `SourceFormat::name`).
    FormatIs(String),
    /// All of the sub-predicates hold.
    And(Vec<Predicate>),
    /// Any of the sub-predicates holds.
    Or(Vec<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Evaluate against a document.
    pub fn matches(&self, doc: &Document) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Eq(p, v) => any_leaf(doc, p, |leaf| leaf.query_eq(v)),
            Predicate::Ne(p, v) => any_leaf(doc, p, |leaf| !leaf.query_eq(v)),
            Predicate::Lt(p, v) => any_leaf(doc, p, |leaf| leaf.total_cmp(v).is_lt()),
            Predicate::Le(p, v) => any_leaf(doc, p, |leaf| leaf.total_cmp(v).is_le()),
            Predicate::Gt(p, v) => any_leaf(doc, p, |leaf| leaf.total_cmp(v).is_gt()),
            Predicate::Ge(p, v) => any_leaf(doc, p, |leaf| leaf.total_cmp(v).is_ge()),
            Predicate::Contains(p, needle) => {
                let needle = needle.to_ascii_lowercase();
                any_leaf(doc, p, |leaf| {
                    leaf.as_str()
                        .map(|s| s.to_ascii_lowercase().contains(&needle))
                        .unwrap_or(false)
                })
            }
            Predicate::Exists(p) => any_leaf(doc, p, |_| true),
            Predicate::CollectionIs(c) => doc.collection() == c,
            Predicate::FormatIs(f) => doc.format().name() == f,
            Predicate::And(ps) => ps.iter().all(|p| p.matches(doc)),
            Predicate::Or(ps) => ps.iter().any(|p| p.matches(doc)),
            Predicate::Not(p) => !p.matches(doc),
        }
    }

    /// The structural paths this predicate consults (used by the optimizer
    /// to pick indexes and by statistics-based selectivity estimation).
    pub fn referenced_paths(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_paths(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Conservative zone-map test: `true` means **no** document in the
    /// summarized segment can satisfy the predicate, so the segment may
    /// be skipped before decryption/decompression. `false` means
    /// "unknown — scan it". Soundness contract: this must never return
    /// `true` for a segment containing a matching document; it freely
    /// returns `false` for segments containing none.
    pub fn prunes_zone(&self, zone: &ZoneMap) -> bool {
        match self {
            // `Not`, collection and format tests are document-level —
            // zone maps summarize leaf values only, so never prune.
            Predicate::True
            | Predicate::CollectionIs(_)
            | Predicate::FormatIs(_)
            | Predicate::Not(_) => false,
            Predicate::Exists(p) => !zone.paths.contains_key(p),
            Predicate::Eq(p, v) => cmp_prunes(zone, p, CmpOp::Eq, v),
            Predicate::Ne(p, v) => cmp_prunes(zone, p, CmpOp::Ne, v),
            Predicate::Lt(p, v) => cmp_prunes(zone, p, CmpOp::Lt, v),
            Predicate::Le(p, v) => cmp_prunes(zone, p, CmpOp::Le, v),
            Predicate::Gt(p, v) => cmp_prunes(zone, p, CmpOp::Gt, v),
            Predicate::Ge(p, v) => cmp_prunes(zone, p, CmpOp::Ge, v),
            Predicate::Contains(p, needle) => match zone.paths.get(p) {
                None => true,
                Some(z) => contains_prunes(z, needle),
            },
            Predicate::And(ps) => ps.iter().any(|p| p.prunes_zone(zone)),
            // An empty Or matches nothing, and `all` on empty is true —
            // which is exactly the right answer.
            Predicate::Or(ps) => ps.iter().all(|p| p.prunes_zone(zone)),
        }
    }

    fn collect_paths<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::Eq(p, _)
            | Predicate::Ne(p, _)
            | Predicate::Lt(p, _)
            | Predicate::Le(p, _)
            | Predicate::Gt(p, _)
            | Predicate::Ge(p, _)
            | Predicate::Contains(p, _)
            | Predicate::Exists(p) => out.push(p),
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_paths(out);
                }
            }
            Predicate::Not(p) => p.collect_paths(out),
            _ => {}
        }
    }
}

fn any_leaf(doc: &Document, structural: &str, f: impl Fn(&Value) -> bool) -> bool {
    doc.leaves()
        .iter()
        .any(|(p, v)| p.structural_form() == structural && f(v))
}

/// A comparison predicate prunes a segment iff no populated value class
/// at the path could contain a satisfying leaf.
fn cmp_prunes(zone: &ZoneMap, path: &str, op: CmpOp, lit: &Value) -> bool {
    let z = match zone.paths.get(path) {
        // No leaf at the path anywhere in the segment: the existential
        // comparison is false for every document.
        None => return true,
        Some(z) => z,
    };
    let classes = [
        (0u8, z.nulls),
        (1, z.bools),
        (2, z.numerics),
        (3, z.strings),
        (4, z.bytes),
    ];
    !classes
        .iter()
        .any(|&(rank, count)| count > 0 && class_may_match(z, rank, op, lit))
}

/// Could *some* value of the given rank class stored at this path satisfy
/// `op` against `lit`? Errs toward `true` wherever the zone does not
/// track enough to decide.
fn class_may_match(z: &PathZone, class_rank: u8, op: CmpOp, lit: &Value) -> bool {
    let lit_rank = value_rank(lit);
    if class_rank != lit_rank {
        // Cross-rank comparisons are a constant of the ranks.
        return op.admits(class_rank.cmp(&lit_rank));
    }
    match class_rank {
        // Null vs Null is exactly Equal.
        0 => op.admits(std::cmp::Ordering::Equal),
        // Bool and Bytes values are not summarized — assume possible.
        1 | 4 => true,
        2 => {
            let f = lit.as_f64().unwrap_or(f64::NAN);
            let (min, max) = match (z.min, z.max) {
                (Some(min), Some(max)) => (min, max),
                _ => return true,
            };
            match op {
                CmpOp::Eq => min.total_cmp(&f).is_le() && max.total_cmp(&f).is_ge(),
                // Every numeric equals `lit` only when the range collapses
                // onto it; otherwise some value differs.
                CmpOp::Ne => !(min.total_cmp(&f).is_eq() && max.total_cmp(&f).is_eq()),
                CmpOp::Lt => min.total_cmp(&f).is_lt(),
                CmpOp::Le => min.total_cmp(&f).is_le(),
                CmpOp::Gt => max.total_cmp(&f).is_gt(),
                CmpOp::Ge => max.total_cmp(&f).is_ge(),
            }
        }
        3 => {
            let s = match lit.as_str() {
                Some(s) => s,
                None => return true,
            };
            match &z.dict {
                // Too many distinct strings to have kept them all.
                None => true,
                Some(dict) => dict.iter().any(|d| op.admits(d.as_str().cmp(s))),
            }
        }
        _ => true,
    }
}

fn contains_prunes(z: &PathZone, needle: &str) -> bool {
    if z.strings == 0 {
        // `Contains` only ever matches `as_str` values.
        return true;
    }
    match &z.dict {
        None => false,
        Some(dict) => {
            let needle = needle.to_ascii_lowercase();
            !dict
                .iter()
                .any(|d| d.to_ascii_lowercase().contains(&needle))
        }
    }
}

/// Which parts of matching documents to return.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Projection {
    /// Return full documents.
    #[default]
    All,
    /// Return only the listed structural paths (a pruned copy of each
    /// document). Early data reduction for the network.
    Paths(Vec<String>),
    /// Return only document ids (e.g. when an index or join will fetch
    /// bodies later).
    IdsOnly,
}

/// Aggregate functions computable at the storage node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Count of matching documents.
    Count,
    /// Sum of a numeric path.
    Sum,
    /// Minimum value of a path.
    Min,
    /// Maximum value of a path.
    Max,
    /// Arithmetic mean of a numeric path.
    Avg,
}

/// An aggregation request: optional group-by path plus one aggregate over
/// an operand path.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Structural path whose value keys the groups; `None` for a single
    /// global group.
    pub group_by: Option<String>,
    /// The aggregate function.
    pub func: AggFunc,
    /// Operand path (ignored for `Count`).
    pub operand: Option<String>,
}

/// Partial aggregate state, combinable across partitions and nodes — the
/// classic two-phase (local/global) aggregation the paper's grid nodes
/// perform.
#[derive(Debug, Clone, PartialEq)]
pub struct AggValue {
    /// Number of contributing leaves/documents.
    pub count: u64,
    /// Running sum (numeric aggregates).
    pub sum: f64,
    /// Running minimum.
    pub min: Option<Value>,
    /// Running maximum.
    pub max: Option<Value>,
}

impl Default for AggValue {
    fn default() -> Self {
        AggValue {
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }
}

impl AggValue {
    /// Fold one observed value into the state.
    pub fn observe(&mut self, v: &Value) {
        self.count += 1;
        if let Some(n) = v.as_f64() {
            self.sum += n;
        }
        match &self.min {
            None => self.min = Some(v.clone()),
            Some(m) if v.total_cmp(m).is_lt() => self.min = Some(v.clone()),
            _ => {}
        }
        match &self.max {
            None => self.max = Some(v.clone()),
            Some(m) if v.total_cmp(m).is_gt() => self.max = Some(v.clone()),
            _ => {}
        }
    }

    /// Merge another partial state into this one (global phase).
    pub fn merge(&mut self, other: &AggValue) {
        self.count += other.count;
        self.sum += other.sum;
        if let Some(m) = &other.min {
            match &self.min {
                None => self.min = Some(m.clone()),
                Some(cur) if m.total_cmp(cur).is_lt() => self.min = Some(m.clone()),
                _ => {}
            }
        }
        if let Some(m) = &other.max {
            match &self.max {
                None => self.max = Some(m.clone()),
                Some(cur) if m.total_cmp(cur).is_gt() => self.max = Some(m.clone()),
                _ => {}
            }
        }
    }

    /// Final scalar result for the requested function.
    pub fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => Value::Float(self.sum),
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
        }
    }
}

/// A complete scan request: filter, then project or aggregate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScanRequest {
    /// Filter evaluated at the storage node.
    pub predicate: Option<Predicate>,
    /// Projection applied to survivors.
    pub projection: Projection,
    /// Optional aggregation; when set, documents are consumed at the node
    /// and only group states travel.
    pub aggregate: Option<AggSpec>,
    /// Optional cap on returned documents (top-of-scan limit).
    pub limit: Option<usize>,
    /// Visibility epoch: only versions committed at or before this epoch
    /// are seen (see `crate::epoch`). `None` reads the unpinned latest.
    pub snapshot: Option<u64>,
}

impl ScanRequest {
    /// A full unfiltered scan.
    pub fn full() -> ScanRequest {
        ScanRequest::default()
    }

    /// A filtered scan.
    pub fn filtered(p: Predicate) -> ScanRequest {
        ScanRequest {
            predicate: Some(p),
            ..ScanRequest::default()
        }
    }
}

/// Byte-level accounting of a scan, the observable for experiment C2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanMetrics {
    /// Documents examined.
    pub docs_scanned: u64,
    /// Documents that satisfied the predicate.
    pub docs_matched: u64,
    /// Encoded bytes read from segments/memtables.
    pub bytes_scanned: u64,
    /// Encoded bytes of the result (what would cross the network).
    pub bytes_returned: u64,
    /// Segments skipped whole via zone maps (never decrypted or
    /// decompressed).
    pub segments_skipped: u64,
    /// Segments whose block was actually loaded and scanned.
    pub segments_scanned: u64,
}

impl ScanMetrics {
    /// Merge metrics from another partition/node.
    pub fn merge(&mut self, other: &ScanMetrics) {
        self.docs_scanned += other.docs_scanned;
        self.docs_matched += other.docs_matched;
        self.bytes_scanned += other.bytes_scanned;
        self.bytes_returned += other.bytes_returned;
        self.segments_skipped += other.segments_skipped;
        self.segments_scanned += other.segments_scanned;
    }
}

/// The result of a scan: documents or aggregate groups, plus metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScanResult {
    /// Matching (possibly projected) documents; empty when aggregating or
    /// `IdsOnly`.
    pub documents: Vec<Document>,
    /// Matching ids (populated for `IdsOnly`).
    pub ids: Vec<impliance_docmodel::DocId>,
    /// Aggregate groups keyed by group value rendering (`""` for the global
    /// group).
    pub groups: BTreeMap<String, AggValue>,
    /// Scan accounting.
    pub metrics: ScanMetrics,
}

impl ScanResult {
    /// Merge a partition-local result into a global one.
    pub fn merge(&mut self, mut other: ScanResult) {
        self.documents.append(&mut other.documents);
        self.ids.append(&mut other.ids);
        for (k, v) in other.groups {
            self.groups.entry(k).or_default().merge(&v);
        }
        self.metrics.merge(&other.metrics);
    }
}

/// Apply a projection to a document, producing the pruned copy that would
/// travel over the network.
pub fn project(doc: &Document, projection: &Projection) -> Document {
    match projection {
        Projection::All | Projection::IdsOnly => doc.clone(),
        Projection::Paths(paths) => {
            let mut root = Node::empty_map();
            for (path, value) in doc.leaves() {
                let structural = path.structural_form();
                if paths.contains(&structural) {
                    root.set(&path, Node::Value(value.clone()));
                }
            }
            // Rebuild with same identity/metadata but pruned body.
            let pruned = Document::new(
                doc.id(),
                doc.format(),
                doc.collection().to_string(),
                doc.ingested_at(),
                root,
            );
            advance_to_version(pruned, doc)
        }
    }
}

fn advance_to_version(mut pruned: Document, original: &Document) -> Document {
    while pruned.version() < original.version() {
        let body = pruned.root().clone();
        pruned = pruned.new_version(body, original.ingested_at());
    }
    pruned
}

/// Fold one matching document into an aggregation result.
pub fn aggregate_document(doc: &Document, spec: &AggSpec, groups: &mut BTreeMap<String, AggValue>) {
    let group_keys: Vec<String> = match &spec.group_by {
        None => vec![String::new()],
        Some(gp) => {
            let keys: Vec<String> = doc
                .leaves()
                .iter()
                .filter(|(p, _)| p.structural_form() == *gp)
                .map(|(_, v)| v.render())
                .collect();
            if keys.is_empty() {
                return; // no group value → excluded, like SQL GROUP BY on NULL-less key
            }
            keys
        }
    };
    for key in group_keys {
        let entry = groups.entry(key).or_default();
        match (&spec.operand, spec.func) {
            (_, AggFunc::Count) => {
                entry.count += 1;
            }
            (Some(op), _) => {
                for (p, v) in doc.leaves() {
                    if p.structural_form() == *op {
                        entry.observe(v);
                    }
                }
            }
            (None, _) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impliance_docmodel::{DocId, DocumentBuilder, SourceFormat};

    fn doc(amount: i64, make: &str) -> Document {
        DocumentBuilder::new(DocId(amount as u64), SourceFormat::Json, "claims")
            .field("claim.amount", amount)
            .field("claim.vehicle.make", make)
            .field("claim.notes", format!("Repair for {make} bumper"))
            .build()
    }

    #[test]
    fn comparison_predicates() {
        let d = doc(1500, "Volvo");
        assert!(Predicate::Eq("claim.amount".into(), Value::Int(1500)).matches(&d));
        assert!(Predicate::Gt("claim.amount".into(), Value::Int(1000)).matches(&d));
        assert!(!Predicate::Lt("claim.amount".into(), Value::Int(1000)).matches(&d));
        assert!(Predicate::Ge("claim.amount".into(), Value::Int(1500)).matches(&d));
        assert!(Predicate::Le("claim.amount".into(), Value::Float(1500.0)).matches(&d));
        assert!(Predicate::Ne("claim.vehicle.make".into(), Value::Str("Saab".into())).matches(&d));
    }

    #[test]
    fn contains_is_case_insensitive() {
        let d = doc(1, "Volvo");
        assert!(Predicate::Contains("claim.notes".into(), "volvo".into()).matches(&d));
        assert!(!Predicate::Contains("claim.notes".into(), "tesla".into()).matches(&d));
        // non-string leaf never matches contains
        assert!(!Predicate::Contains("claim.amount".into(), "1".into()).matches(&d));
    }

    #[test]
    fn exists_collection_format() {
        let d = doc(1, "Volvo");
        assert!(Predicate::Exists("claim.vehicle.make".into()).matches(&d));
        assert!(!Predicate::Exists("claim.vehicle.year".into()).matches(&d));
        assert!(Predicate::CollectionIs("claims".into()).matches(&d));
        assert!(!Predicate::CollectionIs("mail".into()).matches(&d));
        assert!(Predicate::FormatIs("json".into()).matches(&d));
    }

    #[test]
    fn boolean_combinators() {
        let d = doc(1500, "Volvo");
        let p = Predicate::And(vec![
            Predicate::Gt("claim.amount".into(), Value::Int(1000)),
            Predicate::Or(vec![
                Predicate::Eq("claim.vehicle.make".into(), Value::Str("Saab".into())),
                Predicate::Eq("claim.vehicle.make".into(), Value::Str("Volvo".into())),
            ]),
        ]);
        assert!(p.matches(&d));
        assert!(!Predicate::Not(Box::new(p)).matches(&d));
    }

    #[test]
    fn existential_semantics_over_sequences() {
        let d = DocumentBuilder::new(DocId(1), SourceFormat::Json, "orders")
            .node(
                "items",
                impliance_docmodel::Node::seq([
                    impliance_docmodel::Node::map([(
                        "sku".to_string(),
                        impliance_docmodel::Node::scalar("A-1"),
                    )]),
                    impliance_docmodel::Node::map([(
                        "sku".to_string(),
                        impliance_docmodel::Node::scalar("B-2"),
                    )]),
                ]),
            )
            .build();
        assert!(Predicate::Eq("items[].sku".into(), Value::Str("B-2".into())).matches(&d));
        assert!(!Predicate::Eq("items[].sku".into(), Value::Str("C-3".into())).matches(&d));
    }

    #[test]
    fn referenced_paths_dedup() {
        let p = Predicate::And(vec![
            Predicate::Eq("a".into(), Value::Int(1)),
            Predicate::Not(Box::new(Predicate::Gt("a".into(), Value::Int(0)))),
            Predicate::Exists("b".into()),
        ]);
        assert_eq!(p.referenced_paths(), vec!["a", "b"]);
    }

    #[test]
    fn projection_prunes_paths() {
        let d = doc(1500, "Volvo");
        let p = project(&d, &Projection::Paths(vec!["claim.amount".into()]));
        assert!(p.get_str_path("claim.amount").is_some());
        assert!(p.get_str_path("claim.vehicle.make").is_none());
        assert_eq!(p.id(), d.id());
    }

    #[test]
    fn projection_preserves_version() {
        let d = doc(1, "Volvo");
        let d2 = d.new_version(d.root().clone(), 9);
        let p = project(&d2, &Projection::Paths(vec!["claim.amount".into()]));
        assert_eq!(p.version(), d2.version());
    }

    #[test]
    fn agg_value_observe_and_merge() {
        let mut a = AggValue::default();
        a.observe(&Value::Int(10));
        a.observe(&Value::Int(20));
        let mut b = AggValue::default();
        b.observe(&Value::Int(5));
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.finish(AggFunc::Sum), Value::Float(35.0));
        assert_eq!(a.finish(AggFunc::Min), Value::Int(5));
        assert_eq!(a.finish(AggFunc::Max), Value::Int(20));
        assert_eq!(a.finish(AggFunc::Avg), Value::Float(35.0 / 3.0));
    }

    #[test]
    fn avg_of_nothing_is_null() {
        let a = AggValue::default();
        assert_eq!(a.finish(AggFunc::Avg), Value::Null);
        assert_eq!(a.finish(AggFunc::Count), Value::Int(0));
    }

    #[test]
    fn aggregate_with_group_by() {
        let docs = [doc(100, "Volvo"), doc(200, "Volvo"), doc(50, "Saab")];
        let spec = AggSpec {
            group_by: Some("claim.vehicle.make".into()),
            func: AggFunc::Sum,
            operand: Some("claim.amount".into()),
        };
        let mut groups = BTreeMap::new();
        for d in &docs {
            aggregate_document(d, &spec, &mut groups);
        }
        assert_eq!(groups["Volvo"].finish(AggFunc::Sum), Value::Float(300.0));
        assert_eq!(groups["Saab"].finish(AggFunc::Sum), Value::Float(50.0));
    }

    #[test]
    fn count_without_operand() {
        let docs = [doc(1, "Volvo"), doc(2, "Saab")];
        let spec = AggSpec {
            group_by: None,
            func: AggFunc::Count,
            operand: None,
        };
        let mut groups = BTreeMap::new();
        for d in &docs {
            aggregate_document(d, &spec, &mut groups);
        }
        assert_eq!(groups[""].finish(AggFunc::Count), Value::Int(2));
    }

    #[test]
    fn zone_pruning_is_sound_and_useful() {
        use crate::memtable::Memtable;
        use crate::segment::Segment;

        let mut m = Memtable::new();
        let docs: Vec<Document> = (0..10)
            .map(|i| doc(100 + i * 40, if i % 2 == 0 { "Volvo" } else { "Saab" }))
            .collect();
        for d in &docs {
            m.put(d);
        }
        let seg = Segment::seal(m.drain(), false);
        let zone = seg.zone_map().expect("zone map").clone();

        let amount = "claim.amount".to_string();
        let make = "claim.vehicle.make".to_string();
        let cases = [
            // (predicate, expected prune)
            (Predicate::Ge(amount.clone(), Value::Int(1000)), true),
            (Predicate::Ge(amount.clone(), Value::Int(300)), false),
            (Predicate::Lt(amount.clone(), Value::Int(100)), true),
            (Predicate::Le(amount.clone(), Value::Int(100)), false),
            (Predicate::Eq(make.clone(), Value::Str("BMW".into())), true),
            (
                Predicate::Eq(make.clone(), Value::Str("Saab".into())),
                false,
            ),
            (Predicate::Contains(make.clone(), "bmw".into()), true),
            (Predicate::Contains(make.clone(), "VOL".into()), false),
            (Predicate::Exists("claim.missing".into()), true),
            (Predicate::Exists(amount.clone()), false),
            (Predicate::Ne("claim.missing".into(), Value::Int(1)), true),
            (Predicate::Ne(amount.clone(), Value::Int(100)), false),
            // Nothing orders below Null; nothing orders above Bytes here.
            (Predicate::Lt(amount.clone(), Value::Null), true),
            (Predicate::Gt(amount.clone(), Value::Bytes(vec![0])), true),
            // Document-level predicates never prune.
            (Predicate::CollectionIs("nope".into()), false),
            (
                Predicate::Not(Box::new(Predicate::Exists(amount.clone()))),
                false,
            ),
            (
                Predicate::And(vec![
                    Predicate::Eq(make.clone(), Value::Str("Saab".into())),
                    Predicate::Ge(amount.clone(), Value::Int(1000)),
                ]),
                true,
            ),
            (
                Predicate::Or(vec![
                    Predicate::Eq(make.clone(), Value::Str("Saab".into())),
                    Predicate::Ge(amount.clone(), Value::Int(1000)),
                ]),
                false,
            ),
            (Predicate::Or(vec![]), true),
        ];
        for (pred, want) in &cases {
            assert_eq!(pred.prunes_zone(&zone), *want, "prune of {pred:?}");
            if pred.prunes_zone(&zone) {
                // Soundness: a pruned segment contains no matching doc.
                assert!(
                    docs.iter().all(|d| !pred.matches(d)),
                    "{pred:?} pruned a segment with matches"
                );
            }
        }
    }

    #[test]
    fn scan_result_merge_combines_groups_and_metrics() {
        let mut a = ScanResult::default();
        a.groups.insert("x".into(), {
            let mut v = AggValue::default();
            v.observe(&Value::Int(1));
            v
        });
        a.metrics.docs_scanned = 10;
        let mut b = ScanResult::default();
        b.groups.insert("x".into(), {
            let mut v = AggValue::default();
            v.observe(&Value::Int(2));
            v
        });
        b.metrics.docs_scanned = 5;
        a.merge(b);
        assert_eq!(a.groups["x"].count, 2);
        assert_eq!(a.metrics.docs_scanned, 15);
    }
}

//! # Impliance storage engine (data-node substrate)
//!
//! The paper's data nodes "have direct ownership of a subset of the
//! persistent storage" (§3.3) and run the push-down logic "in the software
//! component of a storage unit" (§3.1). This crate is that storage unit:
//!
//! * [`codec`] — deterministic binary encoding of documents (the on-disk
//!   format).
//! * [`columnar`] — typed column vectors ([`ColumnPage`]) decoded straight
//!   from segments, with validity bitmasks, page-level string dictionaries,
//!   and exact vectorized predicate masks.
//! * [`compress`] — block compression (LZ-style plus RLE), applied inside
//!   the storage node per §3.1's "pushing down logic … compression".
//! * [`crypt`] — segment encryption (XTEA-CTR, simulation-grade) applied
//!   after compression, the paper's second push-down example: plaintext
//!   never leaves the storage node.
//! * [`segment`] / [`memtable`] / [`partition`] — an append-only,
//!   immutable-segment layout: documents are never updated in place (§4);
//!   a new version is appended and the latest-version map is advanced.
//! * [`pushdown`] — predicate, projection, and aggregation evaluation *at*
//!   the storage node for early data reduction, with byte-level metrics so
//!   experiment C2 can show how much data movement pushdown saves.
//! * [`stats`] — per-partition statistics (path cardinalities, min/max,
//!   histograms, distinct estimates) maintained as a side effect of
//!   sealing segments; used by the cost-based baseline optimizer.
//! * [`epoch`] — monotonic commit epochs, ref-counted snapshot pins, and
//!   the change feed driving incremental background annotation; readers
//!   pin an epoch so concurrent ingest never tears a query's view.
//! * [`engine`] — the [`StorageEngine`] facade combining hash-partitioned
//!   storage with version-chain reads.

pub mod codec;
pub mod columnar;
pub mod compress;
pub mod crypt;
pub mod engine;
pub mod epoch;
pub mod error;
pub mod memtable;
pub mod partition;
pub mod pushdown;
pub mod segment;
pub mod stats;

pub use columnar::{Bitmask, Column, ColumnPage, ColumnPageBuilder, ColumnVec};
pub use engine::{BatchScan, ScanMorsel, StorageEngine, StorageOptions};
pub use epoch::{ChangeFeed, ChangeRecord, EpochRegistry, Snapshot};
pub use error::StorageError;
pub use partition::ScanPos;
pub use pushdown::{
    AggFunc, AggSpec, AggValue, Predicate, Projection, ScanMetrics, ScanRequest, ScanResult,
};
pub use segment::{PathZone, ZoneMap};
pub use stats::{PartitionStats, PathStats};

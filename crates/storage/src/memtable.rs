//! The mutable write buffer in front of immutable segments.
//!
//! Newly ingested document versions land here; once the buffer reaches its
//! seal threshold the partition freezes it into an immutable
//! [`crate::segment::Segment`]. The memtable keeps *encoded* documents so
//! byte accounting is identical before and after sealing.

use impliance_docmodel::{DocId, Document, Version};

use crate::codec;
use crate::error::StorageError;

/// One buffered entry: a document version and its encoding.
#[derive(Debug, Clone)]
pub struct MemEntry {
    /// Document id.
    pub id: DocId,
    /// Version of this entry.
    pub version: Version,
    /// Encoded bytes (codec format).
    pub encoded: Vec<u8>,
}

/// An append-only in-memory buffer of encoded document versions.
#[derive(Debug, Default)]
pub struct Memtable {
    entries: Vec<MemEntry>,
    bytes: usize,
}

impl Memtable {
    /// Create an empty memtable.
    pub fn new() -> Memtable {
        Memtable::default()
    }

    /// Append a document version. Returns the index of the new entry.
    pub fn put(&mut self, doc: &Document) -> usize {
        let encoded = codec::encode_document_vec(doc);
        self.bytes += encoded.len();
        self.entries.push(MemEntry {
            id: doc.id(),
            version: doc.version(),
            encoded,
        });
        self.entries.len() - 1
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total encoded bytes buffered.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Decode the entry at `idx`.
    pub fn get(&self, idx: usize) -> Result<Document, StorageError> {
        let entry = &self.entries[idx];
        let (doc, _) = codec::decode_document(&entry.encoded, 0)?;
        Ok(doc)
    }

    /// Encoded length of the entry at `idx`.
    pub fn encoded_len(&self, idx: usize) -> usize {
        self.entries[idx].encoded.len()
    }

    /// Iterate over entries (index, id, version, encoded length).
    pub fn iter_meta(&self) -> impl Iterator<Item = (usize, DocId, Version, usize)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.id, e.version, e.encoded.len()))
    }

    /// Drain all entries for sealing into a segment, leaving the memtable
    /// empty.
    pub fn drain(&mut self) -> Vec<MemEntry> {
        self.bytes = 0;
        std::mem::take(&mut self.entries)
    }

    /// Tombstone the entry at `idx`: drop its encoded bytes but KEEP the
    /// slot, so indices held by version chains and in-flight `ScanPos`
    /// cursors stay valid. Used by lazy version GC for superseded
    /// versions no live snapshot can observe.
    pub fn tombstone(&mut self, idx: usize) {
        let entry = &mut self.entries[idx];
        self.bytes -= entry.encoded.len();
        entry.encoded = Vec::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impliance_docmodel::{DocumentBuilder, SourceFormat};

    fn doc(i: u64) -> Document {
        DocumentBuilder::new(DocId(i), SourceFormat::Json, "c")
            .field("x", i as i64)
            .build()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut m = Memtable::new();
        let idx = m.put(&doc(1));
        assert_eq!(m.get(idx).unwrap(), doc(1));
        assert_eq!(m.len(), 1);
        assert!(m.bytes() > 0);
    }

    #[test]
    fn drain_empties() {
        let mut m = Memtable::new();
        m.put(&doc(1));
        m.put(&doc(2));
        let drained = m.drain();
        assert_eq!(drained.len(), 2);
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn iter_meta_reports_versions() {
        let mut m = Memtable::new();
        let d = doc(7);
        let d2 = d.new_version(d.root().clone(), 1);
        m.put(&d);
        m.put(&d2);
        let meta: Vec<_> = m.iter_meta().collect();
        assert_eq!(meta[0].2, Version(1));
        assert_eq!(meta[1].2, Version(2));
    }
}

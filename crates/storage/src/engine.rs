//! The storage engine facade: hash-partitioned, thread-safe storage for
//! one data node.
//!
//! Documents are routed to partitions by a hash of their id, so partitions
//! stay balanced without any administrator placement decisions (the
//! zero-knobs TCO story of §1). All public operations take `&self`;
//! partitions are individually locked so concurrent ingest and scans
//! interleave.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use impliance_analysis::{TrackedMutex, TrackedRwLock};
use impliance_docmodel::{DocId, Document, Version};
use impliance_obs::{Counter, Histogram, LATENCY_BUCKETS_US};

use crate::columnar::ColumnPage;
use crate::epoch::{ChangeFeed, ChangeRecord, EpochRegistry, Snapshot};
use crate::error::StorageError;
use crate::partition::{Partition, ScanPos};
use crate::pushdown::{Predicate, ScanRequest, ScanResult};
use crate::stats::PartitionStats;

/// Commits between lazy version-GC sweeps (a sweep walks every chain, so
/// running it on every commit would be quadratic under sustained
/// overwrite).
const GC_INTERVAL: u64 = 64;

/// Cached handles into the global metrics registry; obtained once so the
/// put/get/scan hot paths stay lock-free (one atomic RMW each).
struct EngineObs {
    puts: Arc<Counter>,
    put_us: Arc<Histogram>,
    gets: Arc<Counter>,
    get_us: Arc<Histogram>,
    scans: Arc<Counter>,
    scan_us: Arc<Histogram>,
    seals: Arc<Counter>,
    bytes_compressed: Arc<Counter>,
    seg_skipped: Arc<Counter>,
    seg_scanned: Arc<Counter>,
}

fn engine_obs() -> &'static EngineObs {
    static OBS: OnceLock<EngineObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let m = impliance_obs::global().metrics();
        EngineObs {
            puts: m.counter("storage.put.count"),
            put_us: m.histogram("storage.put.us", &LATENCY_BUCKETS_US),
            gets: m.counter("storage.get.count"),
            get_us: m.histogram("storage.get.us", &LATENCY_BUCKETS_US),
            scans: m.counter("storage.scan.count"),
            scan_us: m.histogram("storage.scan.us", &LATENCY_BUCKETS_US),
            seals: m.counter("storage.seal.count"),
            bytes_compressed: m.counter("storage.seal.bytes_compressed"),
            seg_skipped: m.counter("storage.segment.skipped"),
            seg_scanned: m.counter("storage.segment.scanned"),
        }
    })
}

/// Record a page's segment skip/scan accounting in the global registry.
fn observe_segments(skipped: u64, scanned: u64) {
    let obs = engine_obs();
    if skipped > 0 {
        obs.seg_skipped.add(skipped);
    }
    if scanned > 0 {
        obs.seg_scanned.add(scanned);
    }
}

/// Tuning options for a storage engine. Every field has a sensible default
/// — the appliance never requires these to be set.
#[derive(Debug, Clone)]
pub struct StorageOptions {
    /// Number of hash partitions.
    pub partitions: usize,
    /// Memtable entries before sealing a segment.
    pub seal_threshold: usize,
    /// Compress sealed segments.
    pub compression: bool,
    /// Encrypt sealed segments at rest with this key (§3.1 encryption
    /// push-down). `None` stores plaintext blocks.
    pub encryption_key: Option<crate::crypt::Key>,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            partitions: 4,
            seal_threshold: 1024,
            compression: true,
            encryption_key: None,
        }
    }
}

/// A data node's storage engine.
#[derive(Debug)]
pub struct StorageEngine {
    // All partitions share one lock-order node ("storage.partition"): the
    // engine never nests partition locks, and the shared name catches any
    // future code path that tries to. Lock order: commit_lock >
    // storage.partition > storage.epoch.feed; storage.epoch.pins is a
    // leaf.
    partitions: Vec<TrackedRwLock<Partition>>,
    epoch: Arc<EpochRegistry>,
    feed: ChangeFeed,
    commit_lock: TrackedMutex<()>,
    /// Lazy version GC switch. Off by default: with it off every version
    /// remains addressable (the §4 time-travel story); on, superseded
    /// versions below the pin low-watermark are reclaimed, trading
    /// history for bounded space under sustained overwrite.
    gc_enabled: AtomicBool,
    commits_since_gc: AtomicU64,
}

impl StorageEngine {
    /// Create an engine with the given options.
    pub fn new(opts: StorageOptions) -> StorageEngine {
        let n = opts.partitions.max(1);
        StorageEngine {
            partitions: (0..n)
                .map(|i| {
                    TrackedRwLock::new(
                        "storage.partition",
                        Partition::new_with_encryption(
                            opts.seal_threshold,
                            opts.compression,
                            opts.encryption_key,
                            // distinct nonce space per partition
                            (i as u64) << 32,
                        ),
                    )
                })
                .collect(),
            epoch: Arc::new(EpochRegistry::default()),
            feed: ChangeFeed::default(),
            commit_lock: TrackedMutex::new("storage.commit", ()),
            gc_enabled: AtomicBool::new(false),
            commits_since_gc: AtomicU64::new(0),
        }
    }

    /// Create an engine with default options.
    pub fn with_defaults() -> StorageEngine {
        StorageEngine::new(StorageOptions::default())
    }

    fn route(&self, id: DocId) -> usize {
        // Fibonacci hashing of the id for balanced routing.
        (id.0.wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize % self.partitions.len()
    }

    /// Store a document version: a single-document [`StorageEngine::commit`].
    pub fn put(&self, doc: &Document) -> Result<(), StorageError> {
        self.commit(std::slice::from_ref(doc)).map(|_| ())
    }

    /// Atomically commit a set of document versions in one epoch bump:
    /// every snapshot sees either all of them or none of them. Returns the
    /// commit epoch. Two-phase under the commit lock — validate everything
    /// first (stored chains *and* intra-batch version monotonicity), then
    /// apply, so phase 2 cannot fail halfway and tear the batch.
    pub fn commit(&self, docs: &[Document]) -> Result<u64, StorageError> {
        let obs = engine_obs();
        let started = Instant::now();
        let _commit = self.commit_lock.lock();
        if docs.is_empty() {
            return Ok(self.epoch.current());
        }
        let epoch = self.epoch.current() + 1;
        let mut batch_latest: HashMap<DocId, Version> = HashMap::new();
        for doc in docs {
            match batch_latest.get(&doc.id()) {
                Some(prev) if doc.version() <= *prev => {
                    return Err(StorageError::StaleVersion {
                        latest: prev.0,
                        attempted: doc.version().0,
                    });
                }
                Some(_) => {}
                None => self.partitions[self.route(doc.id())]
                    .read()
                    .validate_put(doc)?,
            }
            batch_latest.insert(doc.id(), doc.version());
        }
        for doc in docs {
            self.partitions[self.route(doc.id())]
                .write()
                .put_at(doc, epoch)?;
        }
        self.feed.append(epoch, docs.iter().map(|d| d.id()));
        self.epoch.publish(epoch);
        obs.puts.add(docs.len() as u64);
        obs.put_us.observe(started.elapsed().as_micros() as u64);
        self.maybe_gc();
        Ok(epoch)
    }

    /// Pin the current epoch for reading. Every scan and point read
    /// executed with the returned snapshot's epoch sees exactly the
    /// commits at or before it; dropping the snapshot unpins, letting the
    /// GC low-watermark advance.
    pub fn pin(&self) -> Snapshot {
        Snapshot::pin(Arc::clone(&self.epoch))
    }

    /// The latest published commit epoch.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.current()
    }

    /// The GC low-watermark: the minimum pinned epoch, or the current
    /// epoch when no snapshot is pinned.
    pub fn low_watermark(&self) -> u64 {
        self.epoch.low_watermark()
    }

    /// Enable or disable lazy version GC (off by default; see the field
    /// doc on `gc_enabled`). A sweep runs every [`GC_INTERVAL`] commits
    /// while enabled, or on demand via [`StorageEngine::run_gc`].
    pub fn set_version_gc(&self, enabled: bool) {
        self.gc_enabled.store(enabled, Ordering::Relaxed);
    }

    fn maybe_gc(&self) {
        if !self.gc_enabled.load(Ordering::Relaxed) {
            return;
        }
        let n = self.commits_since_gc.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(GC_INTERVAL) {
            self.run_gc();
        }
    }

    /// Reclaim superseded versions no longer observable from any live or
    /// future snapshot (successor epoch ≤ low-watermark). Returns the
    /// number of versions reclaimed. Memtable-resident reclaims free
    /// their bytes immediately; segment-resident ones only drop their
    /// chain entry (the sealed block is immutable).
    pub fn run_gc(&self) -> u64 {
        let watermark = self.epoch.low_watermark();
        let mut reclaimed = 0u64;
        for p in &self.partitions {
            reclaimed += p.write().reclaim(watermark);
        }
        crate::epoch::observe_reclaimed(reclaimed);
        reclaimed
    }

    /// Read up to `max` change-feed records from absolute cursor
    /// `cursor`, plus the next cursor. Records are `(epoch, DocId)` in
    /// commit order; re-reading an unacked cursor replays the same
    /// records, so a consumer that crashes before acking loses no work.
    pub fn recv_changes(&self, cursor: u64, max: usize) -> (Vec<ChangeRecord>, u64) {
        self.feed.recv_changes(cursor, max)
    }

    /// Truncate change-feed records below `cursor` (consumer checkpoint).
    pub fn ack_changes(&self, cursor: u64) {
        self.feed.ack(cursor)
    }

    /// Retained (unacked) change-feed records.
    pub fn feed_len(&self) -> usize {
        self.feed.len()
    }

    /// The change-feed cursor one past the newest record.
    pub fn feed_head(&self) -> u64 {
        self.feed.head()
    }

    /// Latest version of a document.
    pub fn get_latest(&self, id: DocId) -> Result<Option<Document>, StorageError> {
        self.get_latest_at(id, u64::MAX)
    }

    /// Latest version visible at snapshot epoch `snap` (`u64::MAX` for
    /// the unpinned latest).
    pub fn get_latest_at(&self, id: DocId, snap: u64) -> Result<Option<Document>, StorageError> {
        let obs = engine_obs();
        let started = Instant::now();
        let out = self.partitions[self.route(id)]
            .read()
            .get_latest_at(id, snap);
        obs.gets.inc();
        obs.get_us.observe(started.elapsed().as_micros() as u64);
        out
    }

    /// A specific stored version.
    pub fn get_version(&self, id: DocId, v: Version) -> Result<Option<Document>, StorageError> {
        self.partitions[self.route(id)].read().get_version(id, v)
    }

    /// All stored versions, oldest first.
    pub fn versions(&self, id: DocId) -> Vec<Version> {
        self.partitions[self.route(id)].read().versions(id)
    }

    /// The version current at timestamp `ts` (§4 time travel).
    pub fn get_as_of(&self, id: DocId, ts: i64) -> Result<Option<Document>, StorageError> {
        self.partitions[self.route(id)].read().get_as_of(id, ts)
    }

    /// Scan the snapshot as of timestamp `ts` across all partitions.
    pub fn scan_as_of(&self, req: &ScanRequest, ts: i64) -> Result<ScanResult, StorageError> {
        let mut out = ScanResult::default();
        for p in &self.partitions {
            out.merge(p.read().scan_as_of(req, ts)?);
        }
        Ok(out)
    }

    /// Execute a push-down scan over all partitions, merging results.
    /// Materialized wrapper over [`StorageEngine::scan_batches`].
    pub fn scan(&self, req: &ScanRequest) -> Result<ScanResult, StorageError> {
        let obs = engine_obs();
        let started = Instant::now();
        let mut out = ScanResult::default();
        let mut stream = self.scan_batches(req, usize::MAX);
        while let Some(batch) = stream.next_batch()? {
            out.merge(batch);
        }
        if let Some(limit) = req.limit {
            out.documents.truncate(limit);
            out.ids.truncate(limit);
        }
        obs.scans.inc();
        obs.scan_us.observe(started.elapsed().as_micros() as u64);
        Ok(out)
    }

    /// Open a batched, pull-based scan producing pages of at most
    /// `batch_size` matching documents. The partition read lock is taken
    /// per page rather than per scan, so long scans never starve writers.
    pub fn scan_batches(&self, req: &ScanRequest, batch_size: usize) -> BatchScan<'_> {
        BatchScan {
            engine: self,
            limit: req.limit,
            req: req.clone(),
            batch_size: batch_size.max(1),
            partition: 0,
            pos: ScanPos::default(),
            emitted: 0,
            done: false,
        }
    }

    /// Scan one page of a single partition (the morsel primitive for
    /// partition-parallel distributed scans). Out-of-range partitions
    /// yield an empty, exhausted page.
    pub fn scan_partition_page(
        &self,
        partition: usize,
        req: &ScanRequest,
        pos: ScanPos,
        max_docs: usize,
    ) -> Result<(ScanResult, ScanPos, bool), StorageError> {
        match self.partitions.get(partition) {
            Some(p) => {
                let (page, next, done) = p.read().scan_page(req, pos, max_docs)?;
                observe_segments(page.metrics.segments_skipped, page.metrics.segments_scanned);
                Ok((page, next, done))
            }
            None => Ok((ScanResult::default(), pos, true)),
        }
    }

    /// Columnar fast path of [`StorageEngine::scan_partition_page`]: one
    /// page of a single partition decoded straight into typed column
    /// vectors for `paths`. `prune` extends zone-map skipping with
    /// predicates the query layer will apply as vectorized masks (the
    /// page itself is filtered only by `req.predicate`).
    pub fn scan_partition_page_columnar(
        &self,
        partition: usize,
        req: &ScanRequest,
        prune: Option<&Predicate>,
        pos: ScanPos,
        max_docs: usize,
        paths: &[String],
    ) -> Result<(ColumnPage, ScanPos, bool), StorageError> {
        match self.partitions.get(partition) {
            Some(p) => {
                let (page, next, done) = p
                    .read()
                    .scan_page_columnar(req, prune, pos, max_docs, paths)?;
                observe_segments(page.metrics.segments_skipped, page.metrics.segments_scanned);
                Ok((page, next, done))
            }
            None => Ok((ColumnPage::default(), pos, true)),
        }
    }

    /// Force-seal every partition's memtable (used by benchmarks to get
    /// stable on-disk footprints).
    pub fn seal_all(&self) {
        let before = self.stored_bytes();
        for p in &self.partitions {
            p.write().seal();
        }
        let obs = engine_obs();
        obs.seals.add(self.partitions.len() as u64);
        // stored footprint shed by seal-time compression this round
        obs.bytes_compressed
            .add(before.saturating_sub(self.stored_bytes()) as u64);
    }

    /// Live (latest-version) document count.
    pub fn live_docs(&self) -> usize {
        self.partitions.iter().map(|p| p.read().live_docs()).sum()
    }

    /// Total stored versions.
    pub fn total_versions(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.read().total_versions())
            .sum()
    }

    /// Total stored bytes across partitions.
    pub fn stored_bytes(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.read().stored_bytes())
            .sum()
    }

    /// Merged statistics snapshot across partitions.
    pub fn stats(&self) -> PartitionStats {
        let mut out = PartitionStats::default();
        for p in &self.partitions {
            out.merge(p.read().stats());
        }
        out
    }

    /// Number of partitions (for tests and placement logic).
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Enumerate the engine's partitions as independent scan morsels,
    /// largest first (longest-processing-time order, so a worker pool
    /// claiming morsels greedily stays balanced). Each morsel is a whole
    /// partition: pages within it must be streamed sequentially through
    /// [`StorageEngine::scan_partition_page`], but distinct morsels are
    /// independent.
    pub fn scan_morsels(&self) -> Vec<ScanMorsel> {
        let mut morsels: Vec<ScanMorsel> = self
            .partitions
            .iter()
            .enumerate()
            .map(|(partition, p)| ScanMorsel {
                partition,
                estimated_docs: p.read().live_docs(),
            })
            .collect();
        // Descending size, partition index as the deterministic tie-break.
        morsels.sort_by(|a, b| {
            b.estimated_docs
                .cmp(&a.estimated_docs)
                .then(a.partition.cmp(&b.partition))
        });
        morsels
    }
}

/// One unit of parallel scan work: a whole partition, claimed by a
/// worker which then streams the partition's pages in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanMorsel {
    /// Partition index, valid for [`StorageEngine::scan_partition_page`].
    pub partition: usize,
    /// Live documents in the partition when enumerated (a load-balance
    /// estimate, not a promise — ingest may land concurrently).
    pub estimated_docs: usize,
}

/// A pull-based, batch-at-a-time scan over every partition of an engine.
///
/// Each [`BatchScan::next_batch`] call holds one partition's read lock for
/// a single page, so ingest interleaves with long scans, and seals landing
/// between pages are absorbed by the partition cursor. A request `limit`
/// is enforced globally across partitions.
#[derive(Debug)]
pub struct BatchScan<'a> {
    engine: &'a StorageEngine,
    req: ScanRequest,
    /// The request's original limit (`req.limit` is rewritten to the
    /// remainder at each partition boundary).
    limit: Option<usize>,
    batch_size: usize,
    partition: usize,
    pos: ScanPos,
    emitted: usize,
    done: bool,
}

impl BatchScan<'_> {
    /// Pull the next page, or `None` once every partition is exhausted or
    /// the limit is met. Pages that matched nothing are still returned so
    /// their scan metrics reach the caller.
    pub fn next_batch(&mut self) -> Result<Option<ScanResult>, StorageError> {
        if self.done || self.partition >= self.engine.partitions.len() {
            self.done = true;
            return Ok(None);
        }
        if let Some(l) = self.limit {
            if self.emitted >= l {
                self.done = true;
                return Ok(None);
            }
        }
        let (page, next, part_done) = self.engine.partitions[self.partition].read().scan_page(
            &self.req,
            self.pos,
            self.batch_size,
        )?;
        observe_segments(page.metrics.segments_skipped, page.metrics.segments_scanned);
        self.pos = next;
        self.emitted += page.documents.len() + page.ids.len();
        if part_done {
            self.partition += 1;
            self.pos = ScanPos::default();
            if let Some(l) = self.limit {
                self.req.limit = Some(l.saturating_sub(self.emitted));
            }
        }
        Ok(Some(page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pushdown::Predicate;
    use impliance_docmodel::{DocumentBuilder, Node, SourceFormat, Value};
    use std::sync::Arc;

    fn doc(i: u64) -> Document {
        DocumentBuilder::new(DocId(i), SourceFormat::Json, "c")
            .field("x", i as i64)
            .field("tag", if i.is_multiple_of(3) { "fizz" } else { "plain" })
            .build()
    }

    #[test]
    fn put_get_across_partitions() {
        let e = StorageEngine::new(StorageOptions {
            partitions: 8,
            seal_threshold: 16,
            compression: true,
            encryption_key: None,
        });
        for i in 0..200 {
            e.put(&doc(i)).unwrap();
        }
        assert_eq!(e.live_docs(), 200);
        for i in [0u64, 77, 199] {
            assert_eq!(e.get_latest(DocId(i)).unwrap().unwrap().id(), DocId(i));
        }
        assert!(e.get_latest(DocId(5000)).unwrap().is_none());
    }

    #[test]
    fn scan_merges_partitions() {
        let e = StorageEngine::new(StorageOptions {
            partitions: 4,
            seal_threshold: 10,
            compression: false,
            encryption_key: None,
        });
        for i in 0..100 {
            e.put(&doc(i)).unwrap();
        }
        let res = e
            .scan(&ScanRequest::filtered(Predicate::Eq(
                "tag".into(),
                Value::Str("fizz".into()),
            )))
            .unwrap();
        assert_eq!(res.documents.len(), 34); // i.is_multiple_of(3) for 0..100
        assert_eq!(res.metrics.docs_scanned, 100);
    }

    #[test]
    fn version_updates_visible_engine_wide() {
        let e = StorageEngine::with_defaults();
        let d = doc(1);
        e.put(&d).unwrap();
        let d2 = d.new_version(Node::map([("x".into(), Node::scalar(999i64))]), 1);
        e.put(&d2).unwrap();
        assert_eq!(e.total_versions(), 2);
        assert_eq!(e.live_docs(), 1);
        let latest = e.get_latest(DocId(1)).unwrap().unwrap();
        assert_eq!(
            latest.get_str_path("x").unwrap().as_value().unwrap(),
            &Value::Int(999)
        );
        let v1 = e.get_version(DocId(1), Version(1)).unwrap().unwrap();
        assert_eq!(
            v1.get_str_path("x").unwrap().as_value().unwrap(),
            &Value::Int(1)
        );
    }

    #[test]
    fn concurrent_ingest_and_scan() {
        let e = Arc::new(StorageEngine::new(StorageOptions {
            partitions: 4,
            seal_threshold: 32,
            compression: true,
            encryption_key: None,
        }));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let e = Arc::clone(&e);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        e.put(&doc(t * 1000 + i)).unwrap();
                    }
                })
            })
            .collect();
        // interleaved scans must never error
        for _ in 0..20 {
            let _ = e.scan(&ScanRequest::full()).unwrap();
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(e.live_docs(), 1000);
        let res = e.scan(&ScanRequest::full()).unwrap();
        assert_eq!(res.documents.len(), 1000);
    }

    #[test]
    fn batched_scan_matches_materialized_scan() {
        let e = StorageEngine::new(StorageOptions {
            partitions: 4,
            seal_threshold: 10,
            compression: false,
            encryption_key: None,
        });
        for i in 0..100 {
            e.put(&doc(i)).unwrap();
        }
        let req = ScanRequest::filtered(Predicate::Eq("tag".into(), Value::Str("fizz".into())));
        let full = e.scan(&req).unwrap();
        let mut stream = e.scan_batches(&req, 8);
        let mut merged = ScanResult::default();
        let mut batches = 0;
        while let Some(b) = stream.next_batch().unwrap() {
            assert!(b.documents.len() <= 8);
            merged.merge(b);
            batches += 1;
        }
        assert!(batches >= 5, "34 matches at ≤8/batch over 4 partitions");
        assert_eq!(merged.documents.len(), full.documents.len());
        assert_eq!(merged.metrics, full.metrics);
        assert_eq!(merged.metrics.docs_scanned, 100);
    }

    #[test]
    fn batched_scan_enforces_limit_across_partitions() {
        let e = StorageEngine::new(StorageOptions {
            partitions: 4,
            seal_threshold: 16,
            compression: true,
            encryption_key: None,
        });
        for i in 0..100 {
            e.put(&doc(i)).unwrap();
        }
        let req = ScanRequest {
            limit: Some(10),
            ..ScanRequest::full()
        };
        let mut stream = e.scan_batches(&req, 3);
        let mut got = 0;
        while let Some(b) = stream.next_batch().unwrap() {
            got += b.documents.len();
        }
        assert_eq!(got, 10);
        // the wrapper agrees
        assert_eq!(e.scan(&req).unwrap().documents.len(), 10);
    }

    #[test]
    fn batched_scan_survives_concurrent_seal() {
        let e = StorageEngine::new(StorageOptions {
            partitions: 1,
            seal_threshold: 10_000,
            compression: false,
            encryption_key: None,
        });
        for i in 0..20 {
            e.put(&doc(i)).unwrap();
        }
        let mut stream = e.scan_batches(&ScanRequest::full(), 6);
        let first = stream.next_batch().unwrap().unwrap();
        assert_eq!(first.documents.len(), 6);
        // a seal lands between batches (cursor was mid-memtable)
        e.seal_all();
        let mut ids: Vec<u64> = first.documents.iter().map(|d| d.id().0).collect();
        while let Some(b) = stream.next_batch().unwrap() {
            ids.extend(b.documents.iter().map(|d| d.id().0));
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            20,
            "no document duplicated or lost across the seal"
        );
    }

    #[test]
    fn columnar_partition_pages_match_row_pages() {
        let e = StorageEngine::new(StorageOptions {
            partitions: 4,
            seal_threshold: 10,
            compression: true,
            encryption_key: None,
        });
        for i in 0..100 {
            e.put(&doc(i)).unwrap();
        }
        let req = ScanRequest::filtered(Predicate::Eq("tag".into(), Value::Str("fizz".into())));
        let paths = vec!["x".to_string(), "tag".to_string()];
        for part in 0..e.partition_count() {
            let mut row_ids = Vec::new();
            let mut pos = ScanPos::default();
            loop {
                let (page, next, done) = e.scan_partition_page(part, &req, pos, 7).unwrap();
                row_ids.extend(page.documents.iter().map(|d| d.id().0));
                pos = next;
                if done {
                    break;
                }
            }
            let mut col_ids = Vec::new();
            let mut pos = ScanPos::default();
            loop {
                let (page, next, done) = e
                    .scan_partition_page_columnar(part, &req, None, pos, 7, &paths)
                    .unwrap();
                assert_eq!(page.docs.len(), page.len);
                col_ids.extend(page.docs.iter().map(|d| d.id().0));
                pos = next;
                if done {
                    break;
                }
            }
            assert_eq!(row_ids, col_ids, "partition {part} order must agree");
        }
        // Out-of-range partitions yield an empty, exhausted page.
        let (page, _, done) = e
            .scan_partition_page_columnar(99, &req, None, ScanPos::default(), 7, &paths)
            .unwrap();
        assert!(page.is_empty() && done);
    }

    #[test]
    fn commit_is_atomic_at_every_snapshot() {
        let e = StorageEngine::new(StorageOptions {
            partitions: 4,
            seal_threshold: 8,
            compression: true,
            encryption_key: None,
        });
        let before = e.commit(&(0..10).map(doc).collect::<Vec<_>>()).unwrap();
        let snap_before = e.pin();
        assert_eq!(snap_before.epoch(), before);
        // A multi-document commit spanning several partitions…
        let batch: Vec<Document> = (10..30).map(doc).collect();
        let after = e.commit(&batch).unwrap();
        assert_eq!(after, before + 1);
        // …is invisible in its entirety at the earlier snapshot…
        let at = |snap: u64| {
            let req = ScanRequest {
                snapshot: Some(snap),
                ..ScanRequest::full()
            };
            e.scan(&req).unwrap().documents.len()
        };
        assert_eq!(at(snap_before.epoch()), 10);
        // …and visible in its entirety at the commit epoch.
        assert_eq!(at(after), 30);
        for id in 10..30 {
            assert!(e
                .get_latest_at(DocId(id), snap_before.epoch())
                .unwrap()
                .is_none());
            assert!(e.get_latest_at(DocId(id), after).unwrap().is_some());
        }
    }

    #[test]
    fn failed_commit_publishes_nothing() {
        let e = StorageEngine::with_defaults();
        let d = doc(1);
        e.put(&d).unwrap();
        let epoch = e.current_epoch();
        let head = e.feed_head();
        // Batch with an intra-batch version conflict: same id, same
        // version twice. Phase-1 validation rejects it before any write.
        let res = e.commit(&[doc(50), doc(50)]);
        assert!(matches!(res, Err(StorageError::StaleVersion { .. })));
        assert_eq!(e.current_epoch(), epoch, "epoch not bumped");
        assert_eq!(e.feed_head(), head, "no feed records");
        assert!(
            e.get_latest(DocId(50)).unwrap().is_none(),
            "no partial write"
        );
    }

    #[test]
    fn change_feed_records_commits_in_epoch_order() {
        let e = StorageEngine::with_defaults();
        e.put(&doc(1)).unwrap();
        e.commit(&[doc(2), doc(3)]).unwrap();
        let (records, next) = e.recv_changes(0, 100);
        let ids: Vec<u64> = records.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert!(records.windows(2).all(|w| w[0].epoch <= w[1].epoch));
        assert_eq!(records[1].epoch, records[2].epoch, "one epoch per commit");
        e.ack_changes(next);
        assert_eq!(e.feed_len(), 0);
        let (empty, same) = e.recv_changes(next, 100);
        assert!(empty.is_empty());
        assert_eq!(same, next);
    }

    #[test]
    fn version_gc_bounds_versions_under_sustained_overwrite() {
        let e = StorageEngine::new(StorageOptions {
            partitions: 2,
            seal_threshold: 10_000, // keep everything memtable-resident
            compression: false,
            encryption_key: None,
        });
        e.set_version_gc(true);
        let mut d = doc(1);
        e.put(&d).unwrap();
        for _ in 0..(3 * GC_INTERVAL) {
            d = d.new_version(Node::map([("x".into(), Node::scalar(7i64))]), 1);
            e.put(&d).unwrap();
        }
        // Unpinned: the watermark is the current epoch, so each sweep
        // reclaims everything but the latest version.
        assert!(
            e.total_versions() as u64 <= GC_INTERVAL + 1,
            "total_versions {} not bounded by the GC interval",
            e.total_versions()
        );
        assert!(e.stats().versions_reclaimed > 0, "reclamation observable");
        let latest = e.get_latest(DocId(1)).unwrap().unwrap();
        assert_eq!(latest.version(), d.version());

        // A pinned snapshot blocks reclamation of what it can still see.
        let pinned = e.pin();
        let held = e.get_latest(DocId(1)).unwrap().unwrap();
        for _ in 0..GC_INTERVAL {
            d = d.new_version(Node::map([("x".into(), Node::scalar(8i64))]), 1);
            e.put(&d).unwrap();
        }
        e.run_gc();
        let visible = e
            .get_latest_at(DocId(1), pinned.epoch())
            .unwrap()
            .expect("pinned snapshot's version survives GC");
        assert_eq!(visible, held, "pinned snapshot still reads its version");
        drop(pinned);
        e.run_gc();
        assert_eq!(e.versions(DocId(1)).len(), 1, "unpinned: only latest kept");
    }

    #[test]
    fn stats_cover_all_partitions() {
        let e = StorageEngine::new(StorageOptions {
            partitions: 3,
            seal_threshold: 8,
            compression: true,
            encryption_key: None,
        });
        for i in 0..50 {
            e.put(&doc(i)).unwrap();
        }
        let s = e.stats();
        assert_eq!(s.doc_versions, 50);
        assert_eq!(s.paths["x"].count, 50);
        assert!(s.bytes > 0);
    }

    #[test]
    fn seal_all_flushes_memtables() {
        let e = StorageEngine::new(StorageOptions {
            partitions: 2,
            seal_threshold: 10_000,
            compression: true,
            encryption_key: None,
        });
        for i in 0..100 {
            e.put(&doc(i)).unwrap();
        }
        e.seal_all();
        // everything still readable post-seal
        assert_eq!(e.scan(&ScanRequest::full()).unwrap().documents.len(), 100);
    }

    #[test]
    fn compression_reduces_footprint() {
        let mk = |compress| {
            let e = StorageEngine::new(StorageOptions {
                partitions: 1,
                seal_threshold: 64,
                compression: compress,
                encryption_key: None,
            });
            for i in 0..512u64 {
                let d = DocumentBuilder::new(DocId(i), SourceFormat::Text, "t")
                    .field(
                        "body",
                        "the quick brown fox jumps over the lazy dog ".repeat(4),
                    )
                    .build();
                e.put(&d).unwrap();
            }
            e.seal_all();
            e.stored_bytes()
        };
        let compressed = mk(true);
        let raw = mk(false);
        assert!(compressed * 2 < raw, "compressed={compressed} raw={raw}");
    }
}

#[cfg(test)]
mod encryption_tests {
    use super::*;
    use crate::pushdown::ScanRequest;
    use impliance_docmodel::{DocumentBuilder, SourceFormat};

    fn engine(key: Option<crate::crypt::Key>) -> StorageEngine {
        StorageEngine::new(StorageOptions {
            partitions: 2,
            seal_threshold: 8,
            compression: true,
            encryption_key: key,
        })
    }

    #[test]
    fn encrypted_engine_round_trips_everything() {
        let e = engine(Some(*b"0123456789abcdef"));
        for i in 0..50u64 {
            let d = DocumentBuilder::new(DocId(i), SourceFormat::Text, "secret")
                .field("body", format!("confidential record {i}"))
                .build();
            e.put(&d).unwrap();
        }
        e.seal_all();
        // point reads and scans both decrypt transparently
        assert!(e.get_latest(DocId(17)).unwrap().is_some());
        let res = e.scan(&ScanRequest::full()).unwrap();
        assert_eq!(res.documents.len(), 50);
    }

    #[test]
    fn ciphertext_differs_from_plaintext_at_rest() {
        // same corpus, one engine encrypted, one not; identical logical
        // contents but different stored footprints prove the bytes at
        // rest are not plaintext
        let plain = engine(None);
        let secret = engine(Some(*b"fedcba9876543210"));
        for i in 0..20u64 {
            let d = DocumentBuilder::new(DocId(i), SourceFormat::Text, "c")
                .field("body", "the same marker text appears in every document")
                .build();
            plain.put(&d).unwrap();
            secret.put(&d).unwrap();
        }
        plain.seal_all();
        secret.seal_all();
        // logical equality
        assert_eq!(
            plain.scan(&ScanRequest::full()).unwrap().documents.len(),
            secret.scan(&ScanRequest::full()).unwrap().documents.len()
        );
        // stored size identical (CTR is length-preserving) but content
        // differs — verified indirectly: decryption with the right key
        // works, and compression ratio is unaffected by encryption order
        assert_eq!(plain.stored_bytes(), secret.stored_bytes());
    }

    #[test]
    fn version_chains_work_under_encryption() {
        let e = engine(Some(*b"0123456789abcdef"));
        let d = DocumentBuilder::new(DocId(1), SourceFormat::Json, "c")
            .field("x", 1i64)
            .build();
        e.put(&d).unwrap();
        let d2 = d.new_version(
            impliance_docmodel::Node::map([("x".into(), impliance_docmodel::Node::scalar(2i64))]),
            1,
        );
        e.put(&d2).unwrap();
        e.seal_all();
        assert_eq!(e.versions(DocId(1)).len(), 2);
        let v1 = e.get_version(DocId(1), Version(1)).unwrap().unwrap();
        assert_eq!(
            v1.get_str_path("x").unwrap().as_value().unwrap().as_i64(),
            Some(1)
        );
    }
}

#[cfg(test)]
mod time_travel_tests {
    use super::*;
    use crate::pushdown::{Predicate, ScanRequest};
    use impliance_docmodel::{Document, Node, SourceFormat, Value};

    fn doc_at(id: u64, amount: i64, ts: i64) -> Document {
        Document::new(
            DocId(id),
            SourceFormat::Json,
            "claims",
            ts,
            Node::map([("amount".to_string(), Node::scalar(amount))]),
        )
    }

    #[test]
    fn get_as_of_selects_the_version_current_at_ts() {
        let e = StorageEngine::with_defaults();
        let v1 = doc_at(1, 100, 10);
        e.put(&v1).unwrap();
        let v2 = v1.new_version(Node::map([("amount".into(), Node::scalar(200i64))]), 20);
        e.put(&v2).unwrap();
        let v3 = v2.new_version(Node::map([("amount".into(), Node::scalar(300i64))]), 30);
        e.put(&v3).unwrap();

        assert!(
            e.get_as_of(DocId(1), 5).unwrap().is_none(),
            "did not exist yet"
        );
        let at15 = e.get_as_of(DocId(1), 15).unwrap().unwrap();
        assert_eq!(
            at15.get_str_path("amount").unwrap().as_value().unwrap(),
            &Value::Int(100)
        );
        let at20 = e.get_as_of(DocId(1), 20).unwrap().unwrap();
        assert_eq!(
            at20.get_str_path("amount").unwrap().as_value().unwrap(),
            &Value::Int(200)
        );
        let at99 = e.get_as_of(DocId(1), 99).unwrap().unwrap();
        assert_eq!(
            at99.get_str_path("amount").unwrap().as_value().unwrap(),
            &Value::Int(300)
        );
    }

    #[test]
    fn scan_as_of_reconstructs_the_snapshot() {
        let e = StorageEngine::new(StorageOptions {
            partitions: 3,
            seal_threshold: 4,
            compression: true,
            encryption_key: None,
        });
        // ten docs created at t=10, half updated at t=20, two more docs at t=30
        let mut originals = Vec::new();
        for i in 0..10 {
            let d = doc_at(i, 100, 10);
            e.put(&d).unwrap();
            originals.push(d);
        }
        for d in originals.iter().take(5) {
            e.put(&d.new_version(Node::map([("amount".into(), Node::scalar(999i64))]), 20))
                .unwrap();
        }
        e.put(&doc_at(100, 1, 30)).unwrap();
        e.put(&doc_at(101, 1, 30)).unwrap();

        let at10 = e.scan_as_of(&ScanRequest::full(), 10).unwrap();
        assert_eq!(at10.documents.len(), 10);
        assert!(at10.documents.iter().all(|d| d
            .get_str_path("amount")
            .unwrap()
            .as_value()
            .unwrap()
            .query_eq(&Value::Int(100))));

        let at25 = e.scan_as_of(&ScanRequest::full(), 25).unwrap();
        assert_eq!(at25.documents.len(), 10, "new docs at t=30 invisible");
        let updated = at25.documents.iter().filter(|d| {
            d.get_str_path("amount")
                .unwrap()
                .as_value()
                .unwrap()
                .query_eq(&Value::Int(999))
        });
        assert_eq!(updated.count(), 5);

        let now = e.scan_as_of(&ScanRequest::full(), i64::MAX).unwrap();
        assert_eq!(now.documents.len(), 12);
        // predicates still push down in snapshot scans
        let filtered = e
            .scan_as_of(
                &ScanRequest::filtered(Predicate::Eq("amount".into(), Value::Int(999))),
                25,
            )
            .unwrap();
        assert_eq!(filtered.documents.len(), 5);
    }
}

//! The ratchet: pre-existing lint debt is recorded in
//! `lint_baseline.json`; a check run fails only on findings *not* covered
//! by the baseline, so debt can be burned down incrementally without a
//! flag day. Keys are `(lint, file, normalized line text)` with an
//! occurrence count — line numbers are excluded so unrelated edits don't
//! invalidate entries, and counts ratchet per signature: removing one of
//! three identical `unwrap()` lines shrinks the allowance from 3 to 2 on
//! the next `--update-baseline`.

use std::collections::BTreeMap;
use std::path::Path;

use crate::report::{count_by_key, Diagnostic, Json};

/// File name of the committed baseline, relative to the workspace root.
pub const BASELINE_FILE: &str = "lint_baseline.json";

/// Parsed baseline: ratchet key -> allowed occurrence count.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Baseline {
    /// Allowed occurrences per ratchet key.
    pub entries: BTreeMap<String, usize>,
}

impl Baseline {
    /// Load from `root/lint_baseline.json`. A missing file is an empty
    /// baseline (everything is "new"); a malformed file is an error so a
    /// bad merge can't silently allow regressions.
    pub fn load(root: &Path) -> Result<Baseline, String> {
        let path = root.join(BASELINE_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Baseline::default()),
            Err(e) => return Err(format!("reading {}: {e}", path.display())),
        };
        let doc = crate::report::parse_json(&text)
            .map_err(|e| format!("parsing {}: {e}", path.display()))?;
        let mut entries = BTreeMap::new();
        let list = doc
            .get("entries")
            .and_then(|e| e.as_arr())
            .ok_or_else(|| format!("{}: missing \"entries\" array", path.display()))?;
        for item in list {
            let key = item
                .get("key")
                .and_then(|k| k.as_str())
                .ok_or_else(|| format!("{}: entry missing \"key\"", path.display()))?;
            let count = item.get("count").and_then(|c| c.as_f64()).unwrap_or(1.0) as usize;
            entries.insert(key.to_string(), count);
        }
        Ok(Baseline { entries })
    }

    /// Build a baseline that exactly covers `diags`.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Baseline {
        Baseline {
            entries: count_by_key(diags),
        }
    }

    /// Total allowed occurrences.
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }

    /// Serialize to the committed JSON format.
    pub fn to_json(&self) -> Json {
        let entries: Vec<Json> = self
            .entries
            .iter()
            .map(|(key, count)| {
                let mut obj = BTreeMap::new();
                obj.insert("key".to_string(), Json::Str(key.clone()));
                obj.insert("count".to_string(), Json::Num(*count as f64));
                Json::Obj(obj)
            })
            .collect();
        let mut doc = BTreeMap::new();
        doc.insert("version".to_string(), Json::Num(1.0));
        doc.insert(
            "comment".to_string(),
            Json::Str(
                "Ratcheted lint debt. Regenerate with `cargo run -p impliance-analysis -- \
                 check --update-baseline`; the diff is the review artifact."
                    .to_string(),
            ),
        );
        doc.insert("entries".to_string(), Json::Arr(entries));
        Json::Obj(doc)
    }

    /// Write to `root/lint_baseline.json`.
    pub fn save(&self, root: &Path) -> std::io::Result<()> {
        std::fs::write(root.join(BASELINE_FILE), self.to_json().pretty())
    }

    /// Split `diags` into (covered-by-baseline, new) under the ratchet:
    /// for each key, up to the baseline count is covered; overflow is new.
    pub fn partition<'d>(
        &self,
        diags: &'d [Diagnostic],
    ) -> (Vec<&'d Diagnostic>, Vec<&'d Diagnostic>) {
        let mut budget = self.entries.clone();
        let mut covered = Vec::new();
        let mut fresh = Vec::new();
        for d in diags {
            let key = d.ratchet_key();
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    covered.push(d);
                }
                _ => fresh.push(d),
            }
        }
        (covered, fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::LintId;

    fn diag(id: LintId, file: &str, line: u32, sig: &str) -> Diagnostic {
        Diagnostic {
            id,
            file: file.into(),
            line,
            signature: sig.into(),
            message: "m".into(),
            suggestion: "s".into(),
            witness: Vec::new(),
        }
    }

    #[test]
    fn partition_ratchets_per_signature_count() {
        let existing = vec![
            diag(LintId::L1, "a.rs", 10, "x.unwrap()"),
            diag(LintId::L1, "a.rs", 20, "x.unwrap()"),
        ];
        let baseline = Baseline::from_diagnostics(&existing);
        // same two sites (lines moved) → all covered
        let moved = vec![
            diag(LintId::L1, "a.rs", 11, "x.unwrap()"),
            diag(LintId::L1, "a.rs", 99, "x.unwrap()"),
        ];
        let (covered, fresh) = baseline.partition(&moved);
        assert_eq!((covered.len(), fresh.len()), (2, 0));
        // a third identical site → 1 new
        let grown = vec![
            diag(LintId::L1, "a.rs", 11, "x.unwrap()"),
            diag(LintId::L1, "a.rs", 99, "x.unwrap()"),
            diag(LintId::L1, "a.rs", 120, "x.unwrap()"),
        ];
        let (covered, fresh) = baseline.partition(&grown);
        assert_eq!((covered.len(), fresh.len()), (2, 1));
    }

    #[test]
    fn roundtrip_through_json() {
        let diags = vec![
            diag(LintId::L1, "a.rs", 1, "x.unwrap()"),
            diag(LintId::L4, "b.rs", 2, "tx.send(v)"),
        ];
        let baseline = Baseline::from_diagnostics(&diags);
        let text = baseline.to_json().pretty();
        let doc = crate::report::parse_json(&text).unwrap();
        let mut back = Baseline::default();
        for item in doc.get("entries").unwrap().as_arr().unwrap() {
            back.entries.insert(
                item.get("key").unwrap().as_str().unwrap().to_string(),
                item.get("count").unwrap().as_f64().unwrap() as usize,
            );
        }
        assert_eq!(back, baseline);
    }

    #[test]
    fn missing_file_is_empty_baseline() {
        let b = Baseline::load(Path::new("/definitely/not/here")).unwrap();
        assert_eq!(b.total(), 0);
    }
}

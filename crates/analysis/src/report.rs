//! Diagnostics, human-readable rendering, and a dependency-free JSON
//! layer (writer + recursive-descent reader) used for
//! `analysis_report.json` and `lint_baseline.json`. serde is unavailable
//! offline, so the small JSON dialect these files need is implemented
//! here directly.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an enforced invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// No `unwrap()` / `expect()` / `panic!` in hot-path library code.
    L1,
    /// Cluster traffic must flow through the byte-accounted `Network`.
    L2,
    /// No wall-clock reads in simulation-deterministic cluster code.
    L3,
    /// No lock guard held across a channel `send` / `recv`.
    L4,
    /// Library crates must not print to stdout/stderr — diagnostics flow
    /// through the observability layer (`impliance-obs`), not the console.
    L5,
    /// The streaming executor core must not fall back to the materializing
    /// helpers (`ops::*` / `joins::*` / `collect_*`) — operators stream
    /// batches; only the compatibility wrappers may materialize.
    L6,
    /// No `unwrap()` / `expect()` on cluster `submit_to` / `transmit`
    /// result chains in the resilient distributed executor — those calls
    /// fail by design under chaos schedules, and must degrade, not panic.
    /// Unlike L1 this applies to test code too.
    L7,
    /// No raw `std::thread::spawn` in the query crate outside the morsel
    /// pool (`parallel.rs`) — ad-hoc threads escape the worker accounting,
    /// panic propagation, and queue-depth observability of `scoped_map`.
    L8,
}

impl LintId {
    /// All lints, in order.
    pub const ALL: [LintId; 8] = [
        LintId::L1,
        LintId::L2,
        LintId::L3,
        LintId::L4,
        LintId::L5,
        LintId::L6,
        LintId::L7,
        LintId::L8,
    ];

    /// Stable string form (`"L1"`...).
    pub fn as_str(&self) -> &'static str {
        match self {
            LintId::L1 => "L1",
            LintId::L2 => "L2",
            LintId::L3 => "L3",
            LintId::L4 => "L4",
            LintId::L5 => "L5",
            LintId::L6 => "L6",
            LintId::L7 => "L7",
            LintId::L8 => "L8",
        }
    }

    /// Parse from the stable string form.
    pub fn parse(s: &str) -> Option<LintId> {
        match s {
            "L1" => Some(LintId::L1),
            "L2" => Some(LintId::L2),
            "L3" => Some(LintId::L3),
            "L4" => Some(LintId::L4),
            "L5" => Some(LintId::L5),
            "L6" => Some(LintId::L6),
            "L7" => Some(LintId::L7),
            "L8" => Some(LintId::L8),
            _ => None,
        }
    }

    /// One-line description of what the invariant protects.
    pub fn description(&self) -> &'static str {
        match self {
            LintId::L1 => "no unwrap()/expect()/panic! in hot-path library code",
            LintId::L2 => "cluster sends/sleeps must go through the Network accounting layer",
            LintId::L3 => {
                "no Instant::now/SystemTime::now in simulation-deterministic cluster code"
            }
            LintId::L4 => "no Mutex/RwLock guard held across a channel send/recv",
            LintId::L5 => "no print!/println!/eprint!/eprintln! in library crates",
            LintId::L6 => {
                "no materializing helpers (ops::/joins::/collect_*) inside the streaming \
                 executor core"
            }
            LintId::L7 => {
                "no unwrap()/expect() on cluster submit_to/transmit chains in the resilient \
                 distributed executor (test code included)"
            }
            LintId::L8 => {
                "no raw std::thread::spawn in the query crate outside the morsel worker pool \
                 (parallel.rs)"
            }
        }
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which invariant was violated.
    pub id: LintId,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The offending construct (normalized snippet used as the ratchet key).
    pub signature: String,
    /// Human message.
    pub message: String,
    /// Suggested fix.
    pub suggestion: String,
}

impl Diagnostic {
    /// Stable ratchet key: file + lint + normalized signature. Line numbers
    /// are deliberately excluded so edits elsewhere in a file don't
    /// invalidate the baseline.
    pub fn ratchet_key(&self) -> String {
        format!("{}:{}:{}", self.id, self.file, self.signature)
    }

    /// `file:line: [Lx] message (suggestion)` — the human rendering.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}\n    suggestion: {}",
            self.file, self.line, self.id, self.message, self.suggestion
        )
    }
}

/// Aggregate findings keyed for the ratchet: key -> occurrence count.
pub fn count_by_key(diags: &[Diagnostic]) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for d in diags {
        *map.entry(d.ratchet_key()).or_insert(0) += 1;
    }
    map
}

// ---------------------------------------------------------------------
// JSON value + writer
// ---------------------------------------------------------------------

/// Minimal JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// null
    Null,
    /// true / false
    Bool(bool),
    /// Numbers (always written as f64; integral values print without `.0`).
    Num(f64),
    /// String
    Str(String),
    /// Array
    Arr(Vec<Json>),
    /// Object — BTreeMap so output is deterministic and diffs are stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation (stable, diff-friendly).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------

/// Parse a JSON document. Returns a message on malformed input.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let chars: Vec<char> = input.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing characters at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while *pos < chars.len() && chars[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some('{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(chars, pos);
                let key = match parse_value(chars, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be string, got {other:?}")),
                };
                skip_ws(chars, pos);
                if chars.get(*pos) != Some(&':') {
                    return Err(format!("expected ':' at offset {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(chars, pos)?;
                map.insert(key, value);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => {
                        *pos += 1;
                    }
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => {
                        *pos += 1;
                    }
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut s = String::new();
            while let Some(&c) = chars.get(*pos) {
                *pos += 1;
                match c {
                    '"' => return Ok(Json::Str(s)),
                    '\\' => {
                        let esc = chars.get(*pos).copied().ok_or("bad escape")?;
                        *pos += 1;
                        match esc {
                            'n' => s.push('\n'),
                            'r' => s.push('\r'),
                            't' => s.push('\t'),
                            'u' => {
                                let hex: String = chars
                                    .get(*pos..*pos + 4)
                                    .unwrap_or_default()
                                    .iter()
                                    .collect();
                                *pos += 4;
                                let cp = u32::from_str_radix(&hex, 16)
                                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                                s.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            }
                            other => s.push(other),
                        }
                    }
                    c => s.push(c),
                }
            }
            Err("unterminated string".into())
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            while let Some(&c) = chars.get(*pos) {
                if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                    *pos += 1;
                } else {
                    break;
                }
            }
            let text: String = chars[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
        Some('t') if chars[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if chars[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if chars[*pos..].starts_with(&['n', 'u', 'l', 'l']) => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) => Err(format!("unexpected character {c:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let mut obj = BTreeMap::new();
        obj.insert(
            "name".to_string(),
            Json::Str("a \"quoted\"\nvalue".to_string()),
        );
        obj.insert("count".to_string(), Json::Num(473.0));
        obj.insert(
            "nested".to_string(),
            Json::Arr(vec![Json::Bool(true), Json::Null]),
        );
        let doc = Json::Obj(obj);
        let text = doc.pretty();
        let back = parse_json(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{ \"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn ratchet_key_excludes_line() {
        let a = Diagnostic {
            id: LintId::L1,
            file: "crates/x/src/lib.rs".into(),
            line: 10,
            signature: "foo().unwrap()".into(),
            message: "m".into(),
            suggestion: "s".into(),
        };
        let mut b = a.clone();
        b.line = 99;
        assert_eq!(a.ratchet_key(), b.ratchet_key());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = parse_json(r#""snow☃man""#).unwrap();
        assert_eq!(v.as_str(), Some("snow☃man"));
    }
}

//! Diagnostics, human-readable rendering, and a dependency-free JSON
//! layer (writer + recursive-descent reader) used for
//! `analysis_report.json` and `lint_baseline.json`. serde is unavailable
//! offline, so the small JSON dialect these files need is implemented
//! here directly.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an enforced invariant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintId {
    /// No `unwrap()` / `expect()` / `panic!` in hot-path library code.
    L1,
    /// Cluster traffic must flow through the byte-accounted `Network`.
    L2,
    /// No wall-clock reads in simulation-deterministic cluster code.
    L3,
    /// No lock guard held across a channel `send` / `recv`.
    L4,
    /// Library crates must not print to stdout/stderr — diagnostics flow
    /// through the observability layer (`impliance-obs`), not the console.
    L5,
    /// The streaming executor core must not fall back to the materializing
    /// helpers (`ops::*` / `joins::*` / `collect_*`) — operators stream
    /// batches; only the compatibility wrappers may materialize.
    L6,
    /// No `unwrap()` / `expect()` on cluster `submit_to` / `transmit`
    /// result chains in the resilient distributed executor — those calls
    /// fail by design under chaos schedules, and must degrade, not panic.
    /// Unlike L1 this applies to test code too.
    L7,
    /// No raw `std::thread::spawn` in the query crate outside the morsel
    /// pool (`parallel.rs`) — ad-hoc threads escape the worker accounting,
    /// panic propagation, and queue-depth observability of `scoped_map`.
    L8,
    /// Panic-reachability: no `unwrap()` / `expect()` / `panic!` /
    /// `unreachable!` in non-test code transitively reachable from the
    /// public entry points (`Impliance::query`, `Operator::next_batch`
    /// impls, `dist_scan_resilient`) over the workspace call graph.
    L9,
    /// Hot-loop allocation: no allocating calls (`Vec::new`, `vec!`,
    /// `format!`, `.clone()`, `.to_vec()`, `.to_string()`,
    /// `String::from`) inside loops in operator `next_batch` bodies or
    /// the morsel worker loops (`parallel.rs`).
    L10,
    /// Interprocedural guard-across-blocking: no `Mutex`/`RwLock` guard
    /// live across a call whose callee transitively reaches
    /// `Network::transmit`, a channel `recv`, or `BackoffClock::sleep`.
    L11,
    /// Metrics drift: every metric name literal recorded via the
    /// `impliance-obs` registry must be documented in DESIGN.md's
    /// Observability section, and every concrete documented name must be
    /// recorded somewhere in the workspace.
    L12,
    /// Retrieval goes through the query pipeline: no direct
    /// `index::search` calls (`search::search`, `search_topk`,
    /// `search_phrase`) outside `crates/query` / `crates/index` — every
    /// other crate reaches text search via `Impliance::query` match
    /// clauses or `impliance_query::keyword_candidates`.
    L13,
}

impl LintId {
    /// All lints, in order.
    pub const ALL: [LintId; 13] = [
        LintId::L1,
        LintId::L2,
        LintId::L3,
        LintId::L4,
        LintId::L5,
        LintId::L6,
        LintId::L7,
        LintId::L8,
        LintId::L9,
        LintId::L10,
        LintId::L11,
        LintId::L12,
        LintId::L13,
    ];

    /// Stable string form (`"L1"`...).
    pub fn as_str(&self) -> &'static str {
        match self {
            LintId::L1 => "L1",
            LintId::L2 => "L2",
            LintId::L3 => "L3",
            LintId::L4 => "L4",
            LintId::L5 => "L5",
            LintId::L6 => "L6",
            LintId::L7 => "L7",
            LintId::L8 => "L8",
            LintId::L9 => "L9",
            LintId::L10 => "L10",
            LintId::L11 => "L11",
            LintId::L12 => "L12",
            LintId::L13 => "L13",
        }
    }

    /// Parse from the stable string form.
    pub fn parse(s: &str) -> Option<LintId> {
        match s {
            "L1" => Some(LintId::L1),
            "L2" => Some(LintId::L2),
            "L3" => Some(LintId::L3),
            "L4" => Some(LintId::L4),
            "L5" => Some(LintId::L5),
            "L6" => Some(LintId::L6),
            "L7" => Some(LintId::L7),
            "L8" => Some(LintId::L8),
            "L9" => Some(LintId::L9),
            "L10" => Some(LintId::L10),
            "L11" => Some(LintId::L11),
            "L12" => Some(LintId::L12),
            "L13" => Some(LintId::L13),
            _ => None,
        }
    }

    /// One-line description of what the invariant protects.
    pub fn description(&self) -> &'static str {
        match self {
            LintId::L1 => "no unwrap()/expect()/panic! in hot-path library code",
            LintId::L2 => "cluster sends/sleeps must go through the Network accounting layer",
            LintId::L3 => {
                "no Instant::now/SystemTime::now in simulation-deterministic cluster code"
            }
            LintId::L4 => "no Mutex/RwLock guard held across a channel send/recv",
            LintId::L5 => "no print!/println!/eprint!/eprintln! in library crates",
            LintId::L6 => {
                "no materializing helpers (ops::/joins::/collect_*) inside the streaming \
                 executor core"
            }
            LintId::L7 => {
                "no unwrap()/expect() on cluster submit_to/transmit chains in the resilient \
                 distributed executor (test code included)"
            }
            LintId::L8 => {
                "no raw std::thread::spawn in the query crate outside the morsel worker pool \
                 (parallel.rs)"
            }
            LintId::L9 => {
                "no unwrap()/expect()/panic!/unreachable! transitively reachable from the \
                 public entry points (Impliance::query, Operator::next_batch, \
                 dist_scan_resilient)"
            }
            LintId::L10 => {
                "no allocating calls (Vec::new/vec!/format!/.clone()/.to_vec()/.to_string()/\
                 String::from) inside loops in operator next_batch bodies or the morsel \
                 worker loops"
            }
            LintId::L11 => {
                "no Mutex/RwLock guard live across a call whose callee transitively reaches \
                 Network::transmit, a channel recv, or BackoffClock::sleep"
            }
            LintId::L12 => {
                "every metric name recorded via impliance-obs must be documented in \
                 DESIGN.md's Observability section, and vice versa"
            }
            LintId::L13 => {
                "direct index search entry points (search::search, search_topk, \
                 search_phrase) may only be called from crates/query and \
                 crates/index; everyone else goes through the query API"
            }
        }
    }

    /// Why the invariant exists — the paragraph `explain <Lx>` prints.
    pub fn rationale(&self) -> &'static str {
        match self {
            LintId::L1 => {
                "The storage/query/index/cluster/core crates are the appliance's hot path; a \
                 panic there aborts a worker mid-query and (under the morsel pool) takes the \
                 whole pipeline down. Errors must be values on the hot path."
            }
            LintId::L2 => {
                "Every byte the simulated cluster moves must be charged to the Network \
                 accounting layer, or the bench numbers lie. Raw channel sends and \
                 thread::sleep bypass both the byte ledger and simulated time."
            }
            LintId::L3 => {
                "Cluster simulations replay seeded fault schedules; reading the wall clock \
                 makes replays diverge between hosts and turns deterministic chaos tests \
                 into flakes."
            }
            LintId::L4 => {
                "A lock guard held across a channel send/recv couples the lock's critical \
                 section to the channel's latency and is the classic shape of the \
                 guard-across-await deadlock family."
            }
            LintId::L5 => {
                "Library output flows through impliance-obs so harnesses emit \
                 machine-readable streams; a stray println! corrupts golden stdout and is \
                 invisible to library consumers."
            }
            LintId::L6 => {
                "The batched executor's whole point is streaming: a call back into the \
                 materializing compatibility helpers silently re-buffers the input and \
                 defeats LIMIT early termination."
            }
            LintId::L7 => {
                "Chaos schedules make cluster calls fail on purpose; an unwrap on a \
                 submit_to/transmit chain converts an injected, recoverable fault into a \
                 panic — in tests too, which must assert on degraded outcomes."
            }
            LintId::L8 => {
                "The morsel pool owns worker accounting, queue-depth gauges, and panic \
                 re-raising; raw thread::spawn creates threads invisible to all of it and \
                 can silently swallow panics via detached handles."
            }
            LintId::L9 => {
                "The paper's self-managing appliance promise (§4) means no input may crash \
                 the box: any panic site transitively reachable from Impliance::query, an \
                 Operator::next_batch impl, or dist_scan_resilient is a denial-of-service \
                 bug waiting for the right input. L1 checks single files in hot-path \
                 crates; L9 follows the call graph into every crate."
            }
            LintId::L10 => {
                "BENCH_parallel.json blames the per-tuple interpreted loop for parallel \
                 scan running at 0.72x serial: each allocation in a next_batch or worker \
                 loop is a malloc per tuple per batch. Hot loops must reuse buffers; \
                 allocate once outside the loop."
            }
            LintId::L11 => {
                "Holding a Mutex/RwLock guard across a call that (transitively) blocks on \
                 Network::transmit, a channel recv, or a backoff sleep serializes every \
                 other thread on that lock behind simulated network latency. L4 sees only \
                 one function body; L11 follows callees across the call graph."
            }
            LintId::L12 => {
                "With no DBA watching, the appliance explains itself through its metrics — \
                 so DESIGN.md's Observability section is the contract. An undocumented \
                 metric is invisible to operators; a documented-but-dead metric is a lie \
                 dashboards will be built on."
            }
            LintId::L13 => {
                "Hybrid retrieval is one pipeline: BM25 scoring, top-k early \
                 termination, fusion, admission control, and the index_epoch freshness \
                 watermark all live on the IndexScan path behind Impliance::query. A \
                 crate that calls index::search directly gets unscored, unmetered, \
                 unwatermarked results and silently bypasses workload management — the \
                 exact split-brain the query API redesign removed."
            }
        }
    }

    /// How the lint decides — heuristics and known approximations.
    pub fn heuristics(&self) -> &'static str {
        match self {
            LintId::L1 => {
                "Lexical scan of non-test tokens in configured hot-path crates for \
                 `.unwrap(` / `.expect(` / `panic!`. #[cfg(test)] modules and #[test] fns \
                 are excluded."
            }
            LintId::L2 => {
                "Per function body: a `.send(`/`.try_send(` is flagged unless a \
                 `transmit(` call appears earlier in the same body; `::sleep(` always \
                 flags. The Network impl itself is exempt via config."
            }
            LintId::L3 => {
                "Flags `Instant::now` / `SystemTime::now` tokens in cluster-scoped files \
                 outside the clock exemptions."
            }
            LintId::L4 => {
                "Tracks `let g = x.lock()/read()/write();` bindings per body; the guard \
                 dies at drop(g) or scope end. Chained temporaries (`x.lock().len()`) are \
                 not guards. Guards smuggled through helper returns are missed (see L11 \
                 for the interprocedural case)."
            }
            LintId::L5 => {
                "Flags print-family macro tokens in library files; binaries (main.rs, \
                 src/bin/), the bench/analysis crates, and test code are exempt."
            }
            LintId::L6 => {
                "Flags `ops::*(`/`joins::*(` qualified calls and `collect_*(` helpers \
                 inside the streaming executor core files; definitions (`fn collect_*`) \
                 and test code pass."
            }
            LintId::L7 => {
                "Follows the direct method chain rooted at submit_to/submit_to_kind/\
                 map_kind/transmit; an unwrap/expect anywhere in the chain flags. A result \
                 bound first and unwrapped later is out of scope (caught by L1/L9)."
            }
            LintId::L8 => {
                "Flags `thread::spawn(` tokens in query-crate files outside parallel.rs; \
                 scoped `s.spawn(` and test code pass."
            }
            LintId::L9 => {
                "Builds a workspace call graph from a lightweight item parser (fn/impl/\
                 trait items over the lexer). Calls resolve by qualified path \
                 (`Type::name`) when present, else by bare name; receiver types are \
                 unknown, so method calls resolve to every workspace method of that name \
                 (over-approximate) except a fixed list of ubiquitous std-colliding names \
                 like get/len/push/insert/iter/next/clone (under-approximate, documented \
                 in symbols.rs). Panic sites in reachable non-test fns are flagged, each \
                 with an entry-point witness path. Calls through function pointers, \
                 trait objects with renamed methods, and macros-generated fns are missed."
            }
            LintId::L10 => {
                "Scope: `next_batch` bodies in `impl Operator for ..` blocks plus every \
                 fn in the configured worker-loop files (parallel.rs). Within loop bodies \
                 (for/while/loop brace spans), flags Vec::new/String::from qualified \
                 calls, vec!/format! macros, and .clone()/.to_vec()/.to_string() method \
                 calls. Allocations hidden behind helper calls are not followed."
            }
            LintId::L11 => {
                "Reuses the L4 guard-liveness heuristic to find calls made with a guard \
                 live, then asks the call graph whether any resolved callee transitively \
                 reaches a blocking sink (`transmit`, `.recv(`/`.recv_timeout(`, \
                 `BackoffClock::sleep` / clock `.sleep(`). Each finding carries the \
                 guard-site -> callee -> sink witness path. Same resolution \
                 approximations as L9; a finding L4 already reports on the same line is \
                 deduped in favour of L4."
            }
            LintId::L12 => {
                "Collects string literals passed directly to `.counter(\"..\")` / \
                 `.gauge(\"..\")` / `.histogram(\"..\")` in non-test code, and parses \
                 DESIGN.md's Observability section for backticked metric names \
                 (`a.{b,c}.d` brace sets expand; `<seg>` segments are wildcards that \
                 match any recorded segment and are exempt from the dead-metric \
                 direction). Dynamically formatted metric names are invisible to the \
                 recorded side — document them with a wildcard."
            }
            LintId::L13 => {
                "Lexical scan outside the allowed prefixes (crates/query/, \
                 crates/index/): flags qualified calls `search::search(...)`, \
                 `search::search_topk(...)`, `search::search_phrase(...)` (including \
                 longer paths ending in `search::<entry>`), and bare calls \
                 `search_topk(` / `search_phrase(` that are neither definitions (not \
                 preceded by `fn`) nor method calls (not preceded by `.` — the \
                 appliance wrapper methods are the sanctioned route). Test code is \
                 exempt — tests may use the index directly as a brute-force oracle."
            }
        }
    }

    /// Suppression syntax for `explain <Lx>`.
    pub fn suppression(&self) -> String {
        format!(
            "// impliance-lint: allow({id})  — on (or the line before) the flagged line, \
             with a justification; pre-existing debt ratchets via lint_baseline.json \
             (`check --update-baseline`)",
            id = self.as_str()
        )
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which invariant was violated.
    pub id: LintId,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The offending construct (normalized snippet used as the ratchet key).
    pub signature: String,
    /// Human message.
    pub message: String,
    /// Suggested fix.
    pub suggestion: String,
    /// For interprocedural findings (L9/L11): the call chain from an
    /// entry point (or guard site) to the offending call, rendered as
    /// `file:line fn_name` steps. Empty for single-function lints.
    pub witness: Vec<String>,
}

impl Diagnostic {
    /// Stable ratchet key: file + lint + normalized signature. Line numbers
    /// are deliberately excluded so edits elsewhere in a file don't
    /// invalidate the baseline.
    pub fn ratchet_key(&self) -> String {
        format!("{}:{}:{}", self.id, self.file, self.signature)
    }

    /// `file:line: [Lx] message (suggestion)` — the human rendering,
    /// with the witness path (when present) as indented steps.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}:{}: [{}] {}\n    suggestion: {}",
            self.file, self.line, self.id, self.message, self.suggestion
        );
        if !self.witness.is_empty() {
            out.push_str("\n    witness:");
            for step in &self.witness {
                out.push_str("\n      -> ");
                out.push_str(step);
            }
        }
        out
    }
}

/// Parse `impliance-lint: allow(L1)` / `allow(L1, L4)` out of a comment.
/// Shared by the lexical lint pass and the interprocedural parser.
pub fn parse_allow(comment: &str) -> Option<Vec<LintId>> {
    let marker = "impliance-lint:";
    let rest = &comment[comment.find(marker)? + marker.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let inner = &rest[..rest.find(')')?];
    let ids: Vec<LintId> = inner
        .split(',')
        .filter_map(|part| LintId::parse(part.trim()))
        .collect();
    (!ids.is_empty()).then_some(ids)
}

/// Aggregate findings keyed for the ratchet: key -> occurrence count.
pub fn count_by_key(diags: &[Diagnostic]) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for d in diags {
        *map.entry(d.ratchet_key()).or_insert(0) += 1;
    }
    map
}

// ---------------------------------------------------------------------
// JSON value + writer
// ---------------------------------------------------------------------

/// Minimal JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// null
    Null,
    /// true / false
    Bool(bool),
    /// Numbers (always written as f64; integral values print without `.0`).
    Num(f64),
    /// String
    Str(String),
    /// Array
    Arr(Vec<Json>),
    /// Object — BTreeMap so output is deterministic and diffs are stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation (stable, diff-friendly).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------

/// Parse a JSON document. Returns a message on malformed input.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let chars: Vec<char> = input.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing characters at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while *pos < chars.len() && chars[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some('{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(chars, pos);
                let key = match parse_value(chars, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be string, got {other:?}")),
                };
                skip_ws(chars, pos);
                if chars.get(*pos) != Some(&':') {
                    return Err(format!("expected ':' at offset {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(chars, pos)?;
                map.insert(key, value);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => {
                        *pos += 1;
                    }
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => {
                        *pos += 1;
                    }
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut s = String::new();
            while let Some(&c) = chars.get(*pos) {
                *pos += 1;
                match c {
                    '"' => return Ok(Json::Str(s)),
                    '\\' => {
                        let esc = chars.get(*pos).copied().ok_or("bad escape")?;
                        *pos += 1;
                        match esc {
                            'n' => s.push('\n'),
                            'r' => s.push('\r'),
                            't' => s.push('\t'),
                            'u' => {
                                let hex: String = chars
                                    .get(*pos..*pos + 4)
                                    .unwrap_or_default()
                                    .iter()
                                    .collect();
                                *pos += 4;
                                let cp = u32::from_str_radix(&hex, 16)
                                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                                s.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            }
                            other => s.push(other),
                        }
                    }
                    c => s.push(c),
                }
            }
            Err("unterminated string".into())
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            while let Some(&c) = chars.get(*pos) {
                if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                    *pos += 1;
                } else {
                    break;
                }
            }
            let text: String = chars[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
        Some('t') if chars[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if chars[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if chars[*pos..].starts_with(&['n', 'u', 'l', 'l']) => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) => Err(format!("unexpected character {c:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let mut obj = BTreeMap::new();
        obj.insert(
            "name".to_string(),
            Json::Str("a \"quoted\"\nvalue".to_string()),
        );
        obj.insert("count".to_string(), Json::Num(473.0));
        obj.insert(
            "nested".to_string(),
            Json::Arr(vec![Json::Bool(true), Json::Null]),
        );
        let doc = Json::Obj(obj);
        let text = doc.pretty();
        let back = parse_json(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{ \"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn ratchet_key_excludes_line() {
        let a = Diagnostic {
            id: LintId::L1,
            file: "crates/x/src/lib.rs".into(),
            line: 10,
            signature: "foo().unwrap()".into(),
            message: "m".into(),
            suggestion: "s".into(),
            witness: Vec::new(),
        };
        let mut b = a.clone();
        b.line = 99;
        assert_eq!(a.ratchet_key(), b.ratchet_key());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = parse_json(r#""snow☃man""#).unwrap();
        assert_eq!(v.as_str(), Some("snow☃man"));
    }
}

//! The workspace call graph: nodes are parsed `fn` items (ids =
//! [`crate::symbols::SymbolTable`] indexes), edges are resolved call
//! sites. Provides the reachability queries behind L9 and L11 and the
//! witness-path reconstruction serialized into `analysis_report.json`.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::report::Json;
use crate::symbols::SymbolTable;

/// One resolved call edge.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Callee fn id.
    pub to: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// Adjacency-list call graph over a [`SymbolTable`].
#[derive(Debug)]
pub struct CallGraph {
    /// `edges[caller]` -> resolved callees (deduped, first call line kept).
    pub edges: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Resolve every call site in the table into edges.
    pub fn build(table: &SymbolTable) -> CallGraph {
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); table.fns.len()];
        for (caller, def) in table.fns.iter().enumerate() {
            let owner = def.item.owner.as_deref();
            let mut seen: Vec<usize> = Vec::new();
            for call in &def.item.calls {
                for &to in table.resolve(
                    &call.callee,
                    call.qualifier.as_deref(),
                    call.is_method,
                    call.is_macro,
                    owner,
                ) {
                    if to != caller && !seen.contains(&to) {
                        seen.push(to);
                        edges[caller].push(Edge {
                            to,
                            line: call.line,
                        });
                    }
                }
            }
        }
        CallGraph { edges }
    }

    /// BFS from `entries` over non-test nodes; returns a parent map
    /// (`parent[n] = Some((pred, call line))`, entries map to `None` but
    /// are marked visited). Test fns are never entered.
    pub fn reach_from(
        &self,
        table: &SymbolTable,
        entries: &[usize],
    ) -> Vec<Option<Option<(usize, u32)>>> {
        let mut state: Vec<Option<Option<(usize, u32)>>> = vec![None; self.edges.len()];
        let mut queue = VecDeque::new();
        for &e in entries {
            if table.fns[e].item.is_test || state[e].is_some() {
                continue;
            }
            state[e] = Some(None);
            queue.push_back(e);
        }
        while let Some(n) = queue.pop_front() {
            for edge in &self.edges[n] {
                if state[edge.to].is_none() && !table.fns[edge.to].item.is_test {
                    state[edge.to] = Some(Some((n, edge.line)));
                    queue.push_back(edge.to);
                }
            }
        }
        state
    }

    /// For each node, the next hop on a shortest path to any node in
    /// `targets` (following call edges forward). `targets` themselves get
    /// `Some(None)`; unreachable nodes get `None`. Used by L11 to extend
    /// a witness from a guarded call down to the blocking sink.
    pub fn next_hop_to(&self, targets: &[bool]) -> Vec<Option<Option<(usize, u32)>>> {
        // reverse adjacency
        let mut rev: Vec<Vec<Edge>> = vec![Vec::new(); self.edges.len()];
        for (from, outs) in self.edges.iter().enumerate() {
            for e in outs {
                rev[e.to].push(Edge {
                    to: from,
                    line: e.line,
                });
            }
        }
        let mut state: Vec<Option<Option<(usize, u32)>>> = vec![None; self.edges.len()];
        let mut queue = VecDeque::new();
        for (n, &is_target) in targets.iter().enumerate() {
            if is_target {
                state[n] = Some(None);
                queue.push_back(n);
            }
        }
        while let Some(n) = queue.pop_front() {
            for edge in &rev[n] {
                if state[edge.to].is_none() {
                    // from edge.to, the next hop toward a target is n
                    state[edge.to] = Some(Some((n, edge.line)));
                    queue.push_back(edge.to);
                }
            }
        }
        state
    }

    /// Render the entry-point witness path for node `n` from a
    /// [`CallGraph::reach_from`] parent map: entry first, `n` last, each
    /// step as `file:line fn_name` (line = the fn item for the entry, the
    /// call site for each hop).
    pub fn witness(
        &self,
        table: &SymbolTable,
        parents: &[Option<Option<(usize, u32)>>],
        n: usize,
    ) -> Vec<String> {
        let mut chain: Vec<(usize, Option<u32>)> = Vec::new();
        let mut cur = n;
        let mut hop_line: Option<u32> = None;
        loop {
            chain.push((cur, hop_line));
            match parents.get(cur).and_then(|s| s.as_ref()) {
                Some(Some((pred, line))) => {
                    hop_line = Some(*line);
                    cur = *pred;
                }
                Some(None) => break,
                None => break, // not reachable; render what we have
            }
        }
        chain.reverse();
        chain
            .iter()
            .map(|&(id, call_line)| {
                let def = &table.fns[id];
                // the entry step anchors at its fn item; later steps at the
                // call site in the *caller*, which reads naturally as "this
                // fn, entered from line N of the previous file"
                let line = call_line.unwrap_or(def.item.line);
                format!("{}:{} {}", def.file, line, def.item.qual_name())
            })
            .collect()
    }

    /// Serialize nodes + edges for `analysis_report.json`.
    pub fn to_json(&self, table: &SymbolTable) -> Json {
        let nodes: Vec<Json> = table
            .fns
            .iter()
            .enumerate()
            .map(|(id, def)| {
                let mut obj = BTreeMap::new();
                obj.insert("id".to_string(), Json::Num(id as f64));
                obj.insert("fn".to_string(), Json::Str(def.item.qual_name()));
                obj.insert("file".to_string(), Json::Str(def.file.clone()));
                obj.insert("line".to_string(), Json::Num(def.item.line as f64));
                if def.item.is_test {
                    obj.insert("test".to_string(), Json::Bool(true));
                }
                if let Some(t) = &def.item.trait_name {
                    obj.insert("trait".to_string(), Json::Str(t.clone()));
                }
                Json::Obj(obj)
            })
            .collect();
        // edges as [from, to, line] triples — compact, deterministic
        let mut edge_rows: Vec<Json> = Vec::new();
        for (from, outs) in self.edges.iter().enumerate() {
            for e in outs {
                edge_rows.push(Json::Arr(vec![
                    Json::Num(from as f64),
                    Json::Num(e.to as f64),
                    Json::Num(e.line as f64),
                ]));
            }
        }
        let mut obj = BTreeMap::new();
        obj.insert("nodes".to_string(), Json::Arr(nodes));
        obj.insert("edges".to_string(), Json::Arr(edge_rows));
        Json::Obj(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn graph(src: &str) -> (SymbolTable, CallGraph) {
        let table = SymbolTable::build(vec![parse_file("a.rs", src)]);
        let graph = CallGraph::build(&table);
        (table, graph)
    }

    #[test]
    fn reachability_and_witness_paths() {
        let src = r#"
            impl Impliance { pub fn query(&self) { step_one(); } }
            fn step_one() { step_two(); }
            fn step_two() { boom(); }
            fn boom() {}
            fn unrelated() {}
        "#;
        let (table, graph) = graph(src);
        let entries = table.matching("query", Some("Impliance"), None);
        let parents = graph.reach_from(&table, &entries);
        let boom = table.matching("boom", None, None)[0];
        let unrelated = table.matching("unrelated", None, None)[0];
        assert!(parents[boom].is_some());
        assert!(parents[unrelated].is_none());
        let witness = graph.witness(&table, &parents, boom);
        assert_eq!(witness.len(), 4);
        assert!(witness[0].ends_with("Impliance::query"));
        assert!(witness[3].ends_with("boom"));
    }

    #[test]
    fn test_fns_block_reachability() {
        let src = r#"
            impl Impliance { pub fn query(&self) { helper(); } }
            #[cfg(test)]
            mod tests {
                fn helper() { boom(); }
            }
            fn boom() {}
        "#;
        let (table, graph) = graph(src);
        let entries = table.matching("query", Some("Impliance"), None);
        let parents = graph.reach_from(&table, &entries);
        let boom = table.matching("boom", None, None)[0];
        assert!(
            parents[boom].is_none(),
            "path through a test fn must not count"
        );
    }

    #[test]
    fn next_hop_points_toward_sink() {
        let src = r#"
            fn a() { b(); }
            fn b() { c(); }
            fn c() {}
            fn d() {}
        "#;
        let (table, graph) = graph(src);
        let c = table.matching("c", None, None)[0];
        let a = table.matching("a", None, None)[0];
        let d = table.matching("d", None, None)[0];
        let mut targets = vec![false; table.fns.len()];
        targets[c] = true;
        let hops = graph.next_hop_to(&targets);
        assert!(hops[a].is_some());
        assert!(hops[c].is_some());
        assert!(hops[d].is_none());
        // walking hops from a reaches c
        let mut cur = a;
        let mut steps = 0;
        while let Some(Some((next, _))) = hops[cur] {
            cur = next;
            steps += 1;
            assert!(steps < 10);
        }
        assert_eq!(cur, c);
    }
}

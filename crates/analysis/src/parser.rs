//! A lightweight item parser on top of [`crate::lexer`], feeding the
//! interprocedural lints (L9-L12).
//!
//! The parser recognizes `impl`/`trait`/`fn` items and reduces each
//! function body to the streams the call-graph lints need:
//!
//! * **call sites** — every `name(..)`, `recv.name(..)`, `Path::name(..)`
//!   and `name!(..)` occurrence, annotated with the loop depth and the
//!   set of lock guards live at the call;
//! * **metric sites** — string literals passed directly to
//!   `.counter("..")` / `.gauge("..")` / `.histogram("..")` (for L12);
//! * **suppressions** — `impliance-lint: allow(Lx)` comments, resolved to
//!   `(lint, line)` pairs exactly as the lexical pass does.
//!
//! Known approximations (deliberate — the environment has no `syn`):
//! nested `fn` items are parsed as their own functions and excluded from
//! the parent's call stream, but closures stay attributed to the
//! enclosing fn; calls in a loop *header* (`for x in f() {`) take the
//! loop depth of the enclosing scope, not the new loop; tuple-struct and
//! enum-variant constructions (`Some(x)`) lex like calls but resolve to
//! nothing in the symbol table, so they are harmless.

use std::collections::{HashMap, HashSet};

use crate::lexer::{lex, Lexed, Token, TokenKind};
use crate::report::{parse_allow, LintId};

/// One parsed source file: its function items plus file-level side
/// channels the interprocedural lints consume.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Every `fn` item with a body, in source order (nested fns too).
    pub fns: Vec<FnItem>,
    /// Metric name literals registered in this file: `(name, line, in_test)`.
    pub metric_sites: Vec<MetricSite>,
    /// `(lint, line)` pairs suppressed by `impliance-lint: allow(..)`.
    pub allows: HashSet<(LintId, u32)>,
}

/// A string literal passed directly to a metrics-registry constructor.
#[derive(Debug)]
pub struct MetricSite {
    /// The metric name (literal contents, quotes stripped).
    pub name: String,
    /// 1-based line of the literal.
    pub line: u32,
    /// Whether the registration is inside test code.
    pub in_test: bool,
    /// The source line text, whitespace-normalized (ratchet signature).
    pub signature: String,
}

/// One `fn` item with a body.
#[derive(Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Surrounding `impl`/`trait` type name (`Impliance` for
    /// `impl Impliance { fn query .. }`), if any.
    pub owner: Option<String>,
    /// Trait being implemented (`Operator` for `impl Operator for X`),
    /// or the trait's own name for default methods in `trait X { .. }`.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// `Owner::name` when inside an impl/trait, else the bare name.
    pub fn qual_name(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A lock guard live at a call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuardRef {
    /// Binding name (`let g = x.lock();` -> `g`).
    pub name: String,
    /// Line the guard was taken on.
    pub line: u32,
}

/// One call-shaped occurrence inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Callee name (`transmit` in `net.transmit(..)`, `new` in
    /// `Vec::new()`, `format` in `format!(..)`).
    pub callee: String,
    /// Path qualifier, when called as `Qual::callee(..)`.
    pub qualifier: Option<String>,
    /// `recv.callee(..)` — a method call.
    pub is_method: bool,
    /// `callee!(..)` — a macro invocation.
    pub is_macro: bool,
    /// 1-based line.
    pub line: u32,
    /// How many loop bodies enclose this call.
    pub loop_depth: u32,
    /// Lock guards live at the call (L4-style heuristic).
    pub guards: Vec<GuardRef>,
}

/// Keywords that read like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "let", "fn", "move", "ref", "in",
    "as", "where", "impl", "use", "pub", "mod", "unsafe", "dyn", "box", "break", "continue",
    "crate", "super", "self", "Self", "trait", "struct", "enum", "union", "static", "const",
    "type", "extern", "async", "await",
];

/// Parse one source file into its item/call streams.
pub fn parse_file(path: &str, source: &str) -> ParsedFile {
    let lexed = lex(source);
    parse_lexed(path, source, &lexed)
}

/// Parse an already-lexed file (so callers lexing for the L1-L8 pass can
/// reuse the token stream).
pub fn parse_lexed(path: &str, source: &str, lexed: &Lexed) -> ParsedFile {
    let toks = &lexed.tokens;
    let test_marks = mark_test_tokens(lexed);
    let lines: Vec<&str> = source.lines().collect();

    let mut allows = HashSet::new();
    for comment in &lexed.comments {
        if let Some(ids) = parse_allow(&comment.text) {
            for id in ids {
                for line in comment.line..=comment.end_line + 1 {
                    allows.insert((id, line));
                }
            }
        }
    }

    let mut out = ParsedFile {
        path: path.to_string(),
        fns: Vec::new(),
        metric_sites: Vec::new(),
        allows,
    };

    // Stack of surrounding impl/trait regions: (end token idx, owner, trait).
    let mut regions: Vec<(usize, String, Option<String>)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        while regions.last().is_some_and(|r| i > r.0) {
            regions.pop();
        }
        let text = toks[i].text.as_str();
        if toks[i].kind == TokenKind::Ident && (text == "impl" || text == "trait") {
            if let Some((owner, trait_name, open)) = parse_impl_header(toks, i, text == "trait") {
                let end = match_brace(toks, open);
                regions.push((end, owner, trait_name));
                i = open + 1; // descend into the impl/trait body
                continue;
            }
        }
        if toks[i].kind == TokenKind::Ident && text == "fn" {
            let (owner, trait_name) = match regions.last() {
                Some((_, o, t)) => (Some(o.clone()), t.clone()),
                None => (None, None),
            };
            if let Some(next) = parse_fn(toks, i, owner, trait_name, &test_marks, &lines, &mut out)
            {
                i = next;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Mark every token inside `#[cfg(test)] mod .. { }` bodies and
/// `#[test]`-attributed items as test code. (Shared with the lexical
/// lint pass.)
pub fn mark_test_tokens(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut marked = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            let is_cfg_test = toks.get(i + 2).map(|t| t.text.as_str()) == Some("cfg")
                && toks.get(i + 3).map(|t| t.text.as_str()) == Some("(")
                && toks.get(i + 4).map(|t| t.text.as_str()) == Some("test");
            let is_test_attr = toks.get(i + 2).map(|t| t.text.as_str()) == Some("test")
                && toks.get(i + 3).map(|t| t.text.as_str()) == Some("]");
            if is_cfg_test || is_test_attr {
                // skip to the end of the attribute
                let mut j = i + 2;
                let mut bracket_depth = 1;
                while j < toks.len() && bracket_depth > 0 {
                    match toks[j].text.as_str() {
                        "[" => bracket_depth += 1,
                        "]" => bracket_depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                // scan forward to the item's opening brace; bail on `;`
                let mut k = j;
                let mut paren_depth = 0i32;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" | "<" => paren_depth += 1,
                        ")" | ">" => paren_depth -= 1,
                        "{" if paren_depth <= 0 => break,
                        ";" if paren_depth <= 0 => {
                            k = toks.len();
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if k < toks.len() {
                    let mut depth = 0i32;
                    let mut m = k;
                    while m < toks.len() {
                        match toks[m].text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        marked[m] = true;
                        m += 1;
                    }
                    if m < toks.len() {
                        marked[m] = true;
                    }
                    i = m + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    marked
}

/// From an `impl`/`trait` keyword, extract `(owner, trait_name, body open
/// brace index)`. `impl A for B { .. }` -> (B, Some(A));
/// `impl B { .. }` -> (B, None); `trait T { .. }` -> (T, Some(T)).
fn parse_impl_header(
    toks: &[Token],
    kw: usize,
    is_trait: bool,
) -> Option<(String, Option<String>, usize)> {
    let mut j = kw + 1;
    j = skip_angles(toks, j);
    let (first, mut j) = read_path_tail(toks, j)?;
    let (owner, trait_name);
    if !is_trait && toks.get(j).map(|t| t.text.as_str()) == Some("for") {
        let (second, j2) = read_path_tail(toks, j + 1)?;
        owner = second;
        trait_name = Some(first);
        j = j2;
    } else if is_trait {
        owner = first.clone();
        trait_name = Some(first);
    } else {
        owner = first;
        trait_name = None;
    }
    // skip the where clause (if any) to the body `{`; bail on `;`
    let mut paren_depth = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => paren_depth += 1,
            ")" => paren_depth -= 1,
            "{" if paren_depth == 0 => return Some((owner, trait_name, j)),
            ";" if paren_depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Skip a balanced `<..>` group if one starts at `j`.
fn skip_angles(toks: &[Token], j: usize) -> usize {
    if toks.get(j).map(|t| t.text.as_str()) != Some("<") {
        return j;
    }
    let mut depth = 0i32;
    let mut k = j;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    k
}

/// Read a type path (`a::b::Name<..>`, `&mut Name`, `dyn Name`) starting
/// at `j`; return the final segment's identifier and the index after the
/// path.
fn read_path_tail(toks: &[Token], mut j: usize) -> Option<(String, usize)> {
    // skip reference/pointer/dyn prefixes and lifetimes
    while j < toks.len() {
        match toks[j].text.as_str() {
            "&" | "mut" | "dyn" => j += 1,
            _ if toks[j].kind == TokenKind::Lifetime => j += 1,
            _ => break,
        }
    }
    let mut last: Option<String> = None;
    loop {
        let tok = toks.get(j)?;
        if tok.kind != TokenKind::Ident {
            break;
        }
        last = Some(tok.text.clone());
        j += 1;
        j = skip_angles(toks, j);
        if toks.get(j).map(|t| t.text.as_str()) == Some(":")
            && toks.get(j + 1).map(|t| t.text.as_str()) == Some(":")
        {
            j += 2;
            continue;
        }
        break;
    }
    last.map(|name| (name, j))
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut m = open;
    while m < toks.len() {
        match toks[m].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return m;
                }
            }
            _ => {}
        }
        m += 1;
    }
    toks.len() - 1
}

/// Parse a `fn` item starting at keyword index `kw`. On success pushes
/// the item (and any nested fns) into `out` and returns the index after
/// the body; `None` for bodyless declarations.
#[allow(clippy::too_many_arguments)]
fn parse_fn(
    toks: &[Token],
    kw: usize,
    owner: Option<String>,
    trait_name: Option<String>,
    test_marks: &[bool],
    lines: &[&str],
    out: &mut ParsedFile,
) -> Option<usize> {
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None; // `fn(..)` pointer type, not an item
    }
    // find the body `{` at paren depth 0; `;` means no body
    let mut j = kw + 2;
    let mut paren_depth = 0i32;
    let open = loop {
        match toks.get(j).map(|t| t.text.as_str()) {
            Some("(") => paren_depth += 1,
            Some(")") => paren_depth -= 1,
            Some("{") if paren_depth == 0 => break j,
            Some(";") if paren_depth == 0 => return Some(j + 1),
            None => return None,
            _ => {}
        }
        j += 1;
    };
    let close = match_brace(toks, open);
    let is_test = test_marks.get(kw).copied().unwrap_or(false);
    let mut item = FnItem {
        name: name_tok.text.clone(),
        owner,
        trait_name,
        line: toks[kw].line,
        is_test,
        calls: Vec::new(),
    };
    parse_body(toks, open, close, test_marks, lines, &mut item, out);
    out.fns.push(item);
    Some(close + 1)
}

/// Walk a function body, emitting call sites with loop/guard context.
/// Nested `fn` items are parsed recursively and excluded from the parent
/// stream; closures stay in the parent.
fn parse_body(
    toks: &[Token],
    open: usize,
    close: usize,
    test_marks: &[bool],
    lines: &[&str],
    item: &mut FnItem,
    out: &mut ParsedFile,
) {
    // Pre-scan for loop bodies so loop depth is known when walking.
    let mut loop_opens: HashMap<usize, usize> = HashMap::new();
    let mut s = open + 1;
    while s < close {
        if toks[s].kind == TokenKind::Ident
            && matches!(toks[s].text.as_str(), "for" | "while" | "loop")
        {
            let mut k = s + 1;
            let mut paren_depth = 0i32;
            while k < close {
                match toks[k].text.as_str() {
                    "(" => paren_depth += 1,
                    ")" => paren_depth -= 1,
                    "{" if paren_depth == 0 => {
                        loop_opens.insert(k, match_brace(toks, k));
                        break;
                    }
                    ";" if paren_depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
        }
        s += 1;
    }

    let mut depth = 0i32;
    let mut guards: Vec<(GuardRef, i32)> = Vec::new();
    let mut active_loops: Vec<usize> = Vec::new(); // close indexes
    let mut i = open;
    while i <= close {
        active_loops.retain(|&end| i <= end);
        if let Some(&end) = loop_opens.get(&i) {
            active_loops.push(end);
        }
        let text = toks[i].text.as_str();
        match text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                guards.retain(|(_, d)| *d <= depth);
            }
            "let" if toks[i].kind == TokenKind::Ident => {
                if let Some((name, end)) = guard_binding(toks, i, close) {
                    guards.push((
                        GuardRef {
                            name,
                            line: toks[i].line,
                        },
                        depth,
                    ));
                    i = end;
                    continue;
                }
            }
            "drop"
                if toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
                    && toks.get(i + 3).map(|t| t.text.as_str()) == Some(")") =>
            {
                if let Some(dropped) = toks.get(i + 2) {
                    guards.retain(|(g, _)| g.name != dropped.text);
                }
            }
            "fn" if toks[i].kind == TokenKind::Ident && i > open => {
                // nested fn item: parse on its own, skip in the parent
                if let Some(next) = parse_fn(toks, i, None, None, test_marks, lines, out) {
                    i = next;
                    continue;
                }
            }
            _ if toks[i].kind == TokenKind::Ident && !KEYWORDS.contains(&text) => {
                let next = toks.get(i + 1).map(|t| t.text.as_str());
                let is_macro = next == Some("!")
                    && matches!(
                        toks.get(i + 2).map(|t| t.text.as_str()),
                        Some("(") | Some("[") | Some("{")
                    );
                let is_call = next == Some("(");
                if is_macro || is_call {
                    let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
                    let is_method = prev == Some(".");
                    let qualifier = if !is_method
                        && prev == Some(":")
                        && i >= 2
                        && toks[i - 2].text == ":"
                        && i >= 3
                        && toks[i - 3].kind == TokenKind::Ident
                    {
                        Some(toks[i - 3].text.clone())
                    } else {
                        None
                    };
                    item.calls.push(CallSite {
                        callee: text.to_string(),
                        qualifier,
                        is_method,
                        is_macro,
                        line: toks[i].line,
                        loop_depth: active_loops.len() as u32,
                        guards: guards.iter().map(|(g, _)| g.clone()).collect(),
                    });
                    // metric registration literal (L12)
                    if is_method
                        && matches!(text, "counter" | "gauge" | "histogram")
                        && toks.get(i + 2).map(|t| t.kind == TokenKind::Literal) == Some(true)
                        && toks.get(i + 2).map(|t| t.text.starts_with('"')) == Some(true)
                    {
                        let lit = &toks[i + 2];
                        out.metric_sites.push(MetricSite {
                            name: lit.text.trim_matches('"').to_string(),
                            line: lit.line,
                            in_test: item.is_test || test_marks.get(i).copied().unwrap_or(false),
                            signature: normalize_line(lines, lit.line),
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Whitespace-normalized source line (ratchet signature), 1-based.
pub fn normalize_line(lines: &[&str], line: u32) -> String {
    let text = lines.get(line as usize - 1).copied().unwrap_or("");
    let mut sig = String::with_capacity(text.len());
    let mut last_space = true;
    for c in text.trim().chars() {
        if c.is_whitespace() {
            if !last_space {
                sig.push(' ');
            }
            last_space = true;
        } else {
            sig.push(c);
            last_space = false;
        }
    }
    sig
}

/// If tokens at `let_idx` form `let [mut] name = .. .lock|read|write ( ) ;`
/// (the lock call terminating the statement), return the guard name and
/// the index of the `;`. (Shared with the L4 lexical pass.)
pub(crate) fn guard_binding(
    toks: &[Token],
    let_idx: usize,
    limit: usize,
) -> Option<(String, usize)> {
    let mut j = let_idx + 1;
    if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
        j += 1;
    }
    let name_tok = toks.get(j)?;
    if name_tok.kind != TokenKind::Ident {
        return None; // tuple/struct pattern — not a simple guard binding
    }
    let name = name_tok.text.clone();
    if toks.get(j + 1).map(|t| t.text.as_str()) != Some("=") {
        return None; // typed `let x: T = ..` or something else
    }
    let mut k = j + 2;
    let mut nest = 0i32;
    while k <= limit {
        match toks.get(k).map(|t| t.text.as_str()) {
            Some("(") | Some("[") | Some("{") => nest += 1,
            Some(")") | Some("]") | Some("}") => nest -= 1,
            Some(";") if nest == 0 => break,
            None => return None,
            _ => {}
        }
        k += 1;
    }
    if k > limit {
        return None;
    }
    if k >= 4
        && toks[k - 1].text == ")"
        && toks[k - 2].text == "("
        && matches!(toks[k - 3].text.as_str(), "lock" | "read" | "write")
        && toks[k - 4].text == "."
    {
        Some((name, k))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/x/src/lib.rs", src)
    }

    #[test]
    fn impl_and_trait_items_get_owners() {
        let src = r#"
            pub struct Impliance;
            impl Impliance {
                pub fn query(&self) -> u32 { helper() }
            }
            impl Operator for FilterOp {
                fn next_batch(&mut self) -> Option<u32> { None }
            }
            trait Widget {
                fn draw(&self) { self.paint(); }
                fn area(&self) -> u32;
            }
            fn helper() -> u32 { 7 }
        "#;
        let parsed = parse(src);
        let names: Vec<String> = parsed.fns.iter().map(|f| f.qual_name()).collect();
        assert_eq!(
            names,
            vec![
                "Impliance::query",
                "FilterOp::next_batch",
                "Widget::draw",
                "helper"
            ]
        );
        let nb = &parsed.fns[1];
        assert_eq!(nb.trait_name.as_deref(), Some("Operator"));
        let draw = &parsed.fns[2];
        assert_eq!(draw.trait_name.as_deref(), Some("Widget"));
        assert!(parsed.fns[0].calls.iter().any(|c| c.callee == "helper"));
    }

    #[test]
    fn generics_and_where_clauses_parse() {
        let src = r#"
            impl<'a, T: Clone + Iterator<Item = u8>> Operator for Scan<'a, T>
            where
                T: Send,
            {
                fn next_batch(&mut self) -> Option<T> { self.pull() }
            }
        "#;
        let parsed = parse(src);
        assert_eq!(parsed.fns.len(), 1);
        assert_eq!(parsed.fns[0].qual_name(), "Scan::next_batch");
        assert_eq!(parsed.fns[0].trait_name.as_deref(), Some("Operator"));
    }

    #[test]
    fn call_sites_carry_qualifiers_and_shapes() {
        let src = r#"
            fn f(x: &Net) {
                let v = Vec::new();
                x.transmit(1, 2, 3);
                free_call(v);
                format!("{}", 1);
            }
        "#;
        let calls = &parse(src).fns[0].calls;
        let find = |n: &str| calls.iter().find(|c| c.callee == n).unwrap();
        assert_eq!(find("new").qualifier.as_deref(), Some("Vec"));
        assert!(find("transmit").is_method);
        assert!(!find("free_call").is_method);
        assert!(find("format").is_macro);
    }

    #[test]
    fn loop_depth_tracks_nested_loops_not_headers() {
        let src = r#"
            fn f(rows: &[u32]) {
                setup();
                for r in rows.iter() {
                    once(r);
                    while more() {
                        twice(r);
                    }
                }
                teardown();
            }
        "#;
        let calls = &parse(src).fns[0].calls;
        let depth = |n: &str| calls.iter().find(|c| c.callee == n).unwrap().loop_depth;
        assert_eq!(depth("setup"), 0);
        assert_eq!(depth("iter"), 0, "loop header runs once");
        assert_eq!(depth("once"), 1);
        assert_eq!(depth("twice"), 2);
        assert_eq!(depth("teardown"), 0);
    }

    #[test]
    fn guards_attach_to_calls_until_drop_or_scope_end() {
        let src = r#"
            fn f(&self) {
                let g = self.state.lock();
                with_guard();
                drop(g);
                without_guard();
                {
                    let h = self.other.read();
                    inner();
                }
                after_scope();
            }
        "#;
        let calls = &parse(src).fns[0].calls;
        let guards = |n: &str| calls.iter().find(|c| c.callee == n).unwrap().guards.clone();
        assert_eq!(guards("with_guard").len(), 1);
        assert_eq!(guards("with_guard")[0].name, "g");
        assert!(guards("without_guard").is_empty());
        assert_eq!(guards("inner")[0].name, "h");
        assert!(guards("after_scope").is_empty());
    }

    #[test]
    fn nested_fns_split_out_of_parent() {
        let src = r#"
            fn outer() {
                fn inner() { deep_call(); }
                outer_call();
            }
        "#;
        let parsed = parse(src);
        let outer = parsed.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = parsed.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.calls.iter().all(|c| c.callee != "deep_call"));
        assert!(inner.calls.iter().any(|c| c.callee == "deep_call"));
    }

    #[test]
    fn test_marks_and_allows_flow_through() {
        let src = r#"
            // impliance-lint: allow(L9)
            fn risky() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { probe(); }
            }
        "#;
        let parsed = parse(src);
        assert!(parsed.allows.contains(&(LintId::L9, 3)));
        let t = parsed.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.is_test);
        assert!(
            !parsed
                .fns
                .iter()
                .find(|f| f.name == "risky")
                .unwrap()
                .is_test
        );
    }

    #[test]
    fn metric_sites_collect_literals_only() {
        let src = r#"
            fn install(m: &MetricsRegistry, name: &str) {
                m.counter("a.count");
                m.histogram("a.us", &BUCKETS);
                m.gauge(name);
                m.counter(&format!("dyn.{name}"));
            }
        "#;
        let parsed = parse(src);
        let names: Vec<&str> = parsed
            .metric_sites
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(names, vec!["a.count", "a.us"]);
    }

    #[test]
    fn raw_string_bodies_do_not_confuse_the_parser() {
        let src = r##"
            fn render() -> &'static str {
                let tpl = r#"fn fake() { panic!("not real") } for { }"#;
                real_call(tpl)
            }
        "##;
        let parsed = parse(src);
        assert_eq!(parsed.fns.len(), 1);
        let calls = &parsed.fns[0].calls;
        assert!(calls.iter().any(|c| c.callee == "real_call"));
        assert!(calls.iter().all(|c| c.callee != "panic"));
    }
}

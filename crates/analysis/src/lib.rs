//! `impliance-analysis`: correctness tooling for the Impliance workspace.
//!
//! Two halves:
//!
//! * **Static invariant linter** ([`lints`], [`baseline`], [`report`]) —
//!   enforces the L1-L12 workspace invariants over a self-contained lexer
//!   ([`lexer`]), with pre-existing debt ratcheted through
//!   `lint_baseline.json`. L1-L8 are per-file token-stream lints; L9-L12
//!   are interprocedural, built on a lightweight item parser
//!   ([`parser`]), a workspace symbol table ([`symbols`]) and a call
//!   graph ([`callgraph`]) with witness paths (see [`iplints`]). Run it
//!   with `cargo run -p impliance-analysis -- check`, or
//!   `-- explain L9` for any lint's rationale and heuristics.
//! * **Runtime lock-order detector** ([`locks`]) — [`TrackedMutex`] /
//!   [`TrackedRwLock`] wrappers that, in debug builds, maintain a global
//!   acquired-before graph and panic with the offending cycle on
//!   lock-order inversion. Adopted by the cluster runtime, the storage
//!   engine, and the virtualization execution manager.
//!
//! The paper's appliance promise ("ease of administration", §3) is only
//! honest if the substrate's invariants are checked by machines, not by
//! reviewers; this crate is that machine.

pub mod baseline;
pub mod callgraph;
pub mod iplints;
pub mod lexer;
pub mod lints;
pub mod locks;
pub mod parser;
pub mod report;
pub mod symbols;

pub use baseline::{Baseline, BASELINE_FILE};
pub use callgraph::CallGraph;
pub use iplints::{EntrySpec, Workspace};
pub use lints::{
    analyze_workspace, collect_sources, lint_source, lint_workspace, LintConfig, WorkspaceAnalysis,
};
#[cfg(debug_assertions)]
pub use locks::reset_lock_order_graph_for_tests;
pub use locks::{TrackedMutex, TrackedRwLock};
pub use report::{Diagnostic, Json, LintId};
pub use symbols::SymbolTable;

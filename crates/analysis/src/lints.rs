//! The Impliance workspace invariants (L1-L6), enforced over the
//! token stream produced by [`crate::lexer`].
//!
//! | id | invariant |
//! |----|-----------|
//! | L1 | no `unwrap()` / `expect()` / `panic!` in non-test library code of hot-path crates |
//! | L2 | no raw channel `send` / `thread::sleep` in cluster code outside the `Network` accounting layer |
//! | L3 | no `Instant::now` / `SystemTime::now` in simulation-deterministic cluster code outside the clock exemptions |
//! | L4 | no `Mutex`/`RwLock` guard held across a channel `send`/`recv` in the same function body |
//! | L5 | no `print!`/`println!`/`eprint!`/`eprintln!` in library crates |
//! | L6 | no materializing helpers (`ops::*` / `joins::*` / `collect_*`) inside the streaming executor core |
//! | L7 | no `unwrap()` / `expect()` on cluster `submit_to`/`transmit` chains in the resilient distributed executor — test code included |
//! | L8 | no raw `std::thread::spawn` in the query crate outside the morsel worker pool (`parallel.rs`) |
//! | L13 | no direct `index::search` entry-point calls (`search::search` / `search_topk` / `search_phrase`) outside `crates/query` / `crates/index` |
//!
//! The interprocedural invariants L9-L12 live in [`crate::iplints`] on
//! top of the call graph ([`crate::parser`] -> [`crate::symbols`] ->
//! [`crate::callgraph`]); [`analyze_workspace`] runs both halves and
//! finalizes the combined diagnostics deterministically.
//!
//! The analysis is lexical (the environment has no `syn`), which buys
//! simplicity and zero dependencies at the cost of heuristics that are
//! documented on each lint below. Every finding can be suppressed with a
//! trailing or preceding comment `impliance-lint: allow(Lx)`; pre-existing
//! debt is ratcheted via `lint_baseline.json` (see [`crate::baseline`]).

use std::collections::{BTreeSet, HashSet};
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Lexed, TokenKind};
use crate::report::{Diagnostic, LintId};

/// What to scan and which invariants apply where. All paths are
/// workspace-relative with forward slashes.
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Directory prefixes holding library code to scan at all.
    pub scan_prefixes: Vec<String>,
    /// Prefixes of hot-path crates for L1.
    pub l1_prefixes: Vec<String>,
    /// Prefixes of simulation/cluster code for L2 and L3.
    pub cluster_prefixes: Vec<String>,
    /// Files exempt from L2 (the byte-accounting layer itself).
    pub l2_exempt: Vec<String>,
    /// Files exempt from L3 (the clock abstraction).
    pub l3_exempt: Vec<String>,
    /// Prefixes exempt from L5 (harness/tooling crates whose job is to
    /// print: the bench harness and the analysis driver itself).
    pub l5_exempt_prefixes: Vec<String>,
    /// Files forming the streaming executor core for L6: operator
    /// internals here must stream batches, never call the materializing
    /// compatibility helpers.
    pub l6_streaming_files: Vec<String>,
    /// Files forming the resilient distributed executor for L7: cluster
    /// call results here must never be unwrapped, even in tests, because
    /// chaos schedules make those calls fail on purpose.
    pub l7_files: Vec<String>,
    /// Prefixes where L8 applies: query execution code must parallelize
    /// through the morsel worker pool, never `std::thread::spawn`.
    pub l8_prefixes: Vec<String>,
    /// Files exempt from L8 (the worker pool implementation itself).
    pub l8_exempt: Vec<String>,
    /// L9 entry points: panic sites transitively reachable from these
    /// fns (outside test code) are findings.
    pub l9_entries: Vec<crate::iplints::EntrySpec>,
    /// Files whose loops are hot paths for L10 in addition to every
    /// `Operator::next_batch` impl (the morsel worker pool).
    pub l10_worker_files: Vec<String>,
    /// Workspace-relative design document holding the Observability
    /// section that L12 checks metric names against.
    pub l12_design_doc: String,
    /// Prefixes allowed to call the direct index search entry points for
    /// L13: the query pipeline (which owns scoring, top-k, fusion, and
    /// the freshness watermark) and the index crate itself.
    pub l13_allowed_prefixes: Vec<String>,
}

impl LintConfig {
    /// The configuration for this repository.
    pub fn impliance(root: impl Into<PathBuf>) -> LintConfig {
        LintConfig {
            root: root.into(),
            scan_prefixes: vec!["crates/".into(), "src/".into()],
            l1_prefixes: vec![
                "crates/storage/src/".into(),
                "crates/query/src/".into(),
                "crates/index/src/".into(),
                "crates/cluster/src/".into(),
                "crates/core/src/".into(),
            ],
            cluster_prefixes: vec![
                "crates/cluster/src/".into(),
                "crates/core/src/cluster_app.rs".into(),
            ],
            l2_exempt: vec!["crates/cluster/src/network.rs".into()],
            l3_exempt: vec!["crates/cluster/src/network.rs".into()],
            l5_exempt_prefixes: vec!["crates/bench/".into(), "crates/analysis/".into()],
            l6_streaming_files: vec![
                "crates/query/src/exec.rs".into(),
                "crates/query/src/batch.rs".into(),
            ],
            l7_files: vec!["crates/query/src/dist.rs".into()],
            l8_prefixes: vec!["crates/query/src/".into()],
            l8_exempt: vec!["crates/query/src/parallel.rs".into()],
            l9_entries: vec![
                crate::iplints::EntrySpec::method("Impliance", "query"),
                crate::iplints::EntrySpec::trait_impl("Operator", "next_batch"),
                crate::iplints::EntrySpec::free("dist_scan_resilient"),
                // The background annotation worker: a panic here kills
                // incremental discovery, so its reachable-panic surface
                // is audited like the query entry points.
                crate::iplints::EntrySpec::method("DiscoveryPipeline", "run_incremental"),
                // The admission gate runs before every query, including
                // under overload — a reachable panic here turns graceful
                // shedding into an outage, so both admission surfaces are
                // audited roots.
                crate::iplints::EntrySpec::method("WorkloadManager", "admit"),
                crate::iplints::EntrySpec::method("WorkloadManager", "submit"),
                crate::iplints::EntrySpec::method("WorkloadManager", "next_ready"),
            ],
            l10_worker_files: vec!["crates/query/src/parallel.rs".into()],
            l12_design_doc: "DESIGN.md".into(),
            l13_allowed_prefixes: vec!["crates/query/".into(), "crates/index/".into()],
        }
    }

    fn in_any(prefixes: &[String], rel: &str) -> bool {
        prefixes.iter().any(|p| rel.starts_with(p.as_str()))
    }
}

/// Directories never scanned (tests, benches, fixtures, build output,
/// vendored shims).
const SKIP_DIRS: &[&str] = &[
    "tests", "benches", "examples", "fixtures", "target", "vendor", ".git",
];

/// Recursively collect workspace-relative paths of library `.rs` files.
pub fn collect_sources(config: &LintConfig) -> Vec<String> {
    let mut out = Vec::new();
    for prefix in &config.scan_prefixes {
        let dir = config.root.join(prefix.trim_end_matches('/'));
        walk(&dir, &config.root, &mut out);
    }
    out.sort();
    out.dedup();
    out
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            walk(&path, root, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

/// Run every applicable lint over one file's source text.
pub fn lint_source(config: &LintConfig, rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let lines: Vec<&str> = source.lines().collect();
    let ctx = FileContext::new(rel_path, &lexed, &lines);

    let mut diags = Vec::new();
    if LintConfig::in_any(&config.l1_prefixes, rel_path) {
        lint_l1(&ctx, &mut diags);
    }
    if LintConfig::in_any(&config.cluster_prefixes, rel_path) {
        if !config.l2_exempt.iter().any(|f| f == rel_path) {
            lint_l2(&ctx, &mut diags);
        }
        if !config.l3_exempt.iter().any(|f| f == rel_path) {
            lint_l3(&ctx, &mut diags);
        }
    }
    lint_l4(&ctx, &mut diags);
    if !LintConfig::in_any(&config.l5_exempt_prefixes, rel_path)
        && !rel_path.ends_with("main.rs")
        && !rel_path.contains("/bin/")
    {
        lint_l5(&ctx, &mut diags);
    }
    if config.l6_streaming_files.iter().any(|f| f == rel_path) {
        lint_l6(&ctx, &mut diags);
    }
    if config.l7_files.iter().any(|f| f == rel_path) {
        lint_l7(&ctx, &mut diags);
    }
    if LintConfig::in_any(&config.l8_prefixes, rel_path)
        && !config.l8_exempt.iter().any(|f| f == rel_path)
    {
        lint_l8(&ctx, &mut diags);
    }
    if !LintConfig::in_any(&config.l13_allowed_prefixes, rel_path) {
        lint_l13(&ctx, &mut diags);
    }

    diags.retain(|d| !ctx.allowed(d.id, d.line));
    diags.sort_by_key(|d| (d.line, d.id));
    diags
}

/// Run the full scan over the workspace (diagnostics only; see
/// [`analyze_workspace`] for the call graph as well).
pub fn lint_workspace(config: &LintConfig) -> std::io::Result<Vec<Diagnostic>> {
    Ok(analyze_workspace(config)?.diagnostics)
}

/// The full result of a workspace scan: finalized diagnostics plus the
/// interprocedural index they were computed over.
pub struct WorkspaceAnalysis {
    /// All findings across L1-L12, sorted by `(file, line, lint id)`
    /// and deduped (see [`finalize_diagnostics`]).
    pub diagnostics: Vec<Diagnostic>,
    /// Parsed + indexed workspace, for call-graph serialization.
    pub workspace: crate::iplints::Workspace,
}

/// Run the per-file lints (L1-L8) and the interprocedural passes
/// (L9-L12) over the workspace.
pub fn analyze_workspace(config: &LintConfig) -> std::io::Result<WorkspaceAnalysis> {
    let mut diags = Vec::new();
    let mut inputs = Vec::new();
    for rel in collect_sources(config) {
        let path = config.root.join(&rel);
        let source = std::fs::read_to_string(&path)?;
        diags.extend(lint_source(config, &rel, &source));
        inputs.push((rel, source));
    }
    let workspace = crate::iplints::Workspace::build(inputs);
    diags.extend(crate::iplints::lint_graph(config, &workspace));
    diags.extend(crate::iplints::lint_l12(config, &workspace));
    finalize_diagnostics(&mut diags);
    Ok(WorkspaceAnalysis {
        diagnostics: diags,
        workspace,
    })
}

/// Deterministic output contract: stable sort by `(file, line, lint
/// id)`, drop exact duplicates, and apply the cross-lint precedence
/// rules — when two lints describe the same underlying hazard at the
/// same site, the more specific one wins:
///
/// * L1 (panic in hot-path crate) beats L9 (panic reachable from an
///   entry point) at the same `(file, line)`;
/// * L4 (guard across channel op, intra-procedural) beats L11 (guard
///   across transitively-blocking call) at the same `(file, line)`.
pub fn finalize_diagnostics(diags: &mut Vec<Diagnostic>) {
    use std::collections::HashSet;
    let occupied: HashSet<(LintId, String, u32)> = diags
        .iter()
        .map(|d| (d.id, d.file.clone(), d.line))
        .collect();
    diags.retain(|d| {
        let shadowed_by = match d.id {
            LintId::L9 => Some(LintId::L1),
            LintId::L11 => Some(LintId::L4),
            _ => None,
        };
        !shadowed_by.is_some_and(|winner| occupied.contains(&(winner, d.file.clone(), d.line)))
    });
    diags.sort_by(|a, b| {
        (
            a.file.as_str(),
            a.line,
            a.id,
            a.signature.as_str(),
            a.message.as_str(),
        )
            .cmp(&(
                b.file.as_str(),
                b.line,
                b.id,
                b.signature.as_str(),
                b.message.as_str(),
            ))
    });
    diags.dedup_by(|a, b| {
        a.id == b.id && a.file == b.file && a.line == b.line && a.signature == b.signature
    });
}

// ---------------------------------------------------------------------
// shared per-file context
// ---------------------------------------------------------------------

struct FileContext<'a> {
    rel_path: &'a str,
    lexed: &'a Lexed,
    lines: &'a [&'a str],
    /// Token indexes inside `#[cfg(test)] mod ... { }` bodies.
    test_tokens: Vec<bool>,
    /// (lint, line) pairs suppressed by `impliance-lint: allow(..)`.
    allows: HashSet<(LintId, u32)>,
}

impl<'a> FileContext<'a> {
    fn new(rel_path: &'a str, lexed: &'a Lexed, lines: &'a [&'a str]) -> FileContext<'a> {
        let test_tokens = mark_test_modules(lexed);
        let mut allows = HashSet::new();
        for comment in &lexed.comments {
            if let Some(ids) = parse_allow(&comment.text) {
                for id in ids {
                    // a marker covers its own lines and the next line
                    for line in comment.line..=comment.end_line + 1 {
                        allows.insert((id, line));
                    }
                }
            }
        }
        FileContext {
            rel_path,
            lexed,
            lines,
            test_tokens,
            allows,
        }
    }

    fn allowed(&self, id: LintId, line: u32) -> bool {
        self.allows.contains(&(id, line))
    }

    fn is_test_token(&self, idx: usize) -> bool {
        self.test_tokens.get(idx).copied().unwrap_or(false)
    }

    fn signature(&self, line: u32) -> String {
        let text = self.lines.get(line as usize - 1).copied().unwrap_or("");
        let mut sig = String::with_capacity(text.len());
        let mut last_space = true;
        for c in text.trim().chars() {
            if c.is_whitespace() {
                if !last_space {
                    sig.push(' ');
                }
                last_space = true;
            } else {
                sig.push(c);
                last_space = false;
            }
        }
        sig
    }

    fn diag(&self, id: LintId, line: u32, message: String, suggestion: &str) -> Diagnostic {
        Diagnostic {
            id,
            file: self.rel_path.to_string(),
            line,
            signature: self.signature(line),
            message,
            suggestion: suggestion.to_string(),
            witness: Vec::new(),
        }
    }
}

/// Parse `impliance-lint: allow(L1)` / `allow(L1, L4)` out of a comment.
fn parse_allow(comment: &str) -> Option<Vec<LintId>> {
    let marker = "impliance-lint:";
    let rest = &comment[comment.find(marker)? + marker.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let inner = &rest[..rest.find(')')?];
    let ids: Vec<LintId> = inner
        .split(',')
        .filter_map(|part| LintId::parse(part.trim()))
        .collect();
    (!ids.is_empty()).then_some(ids)
}

/// Mark every token inside `#[cfg(test)] mod name { ... }` bodies, plus
/// `#[test]`-attributed functions, as test code.
fn mark_test_modules(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut marked = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        // match "#" "[" ("cfg" "(" "test" ...| "test" "]") — i.e. the
        // attribute opener for either #[cfg(test)] or #[test]
        if toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            let is_cfg_test = toks.get(i + 2).map(|t| t.text.as_str()) == Some("cfg")
                && toks.get(i + 3).map(|t| t.text.as_str()) == Some("(")
                && toks.get(i + 4).map(|t| t.text.as_str()) == Some("test");
            let is_test_attr = toks.get(i + 2).map(|t| t.text.as_str()) == Some("test")
                && toks.get(i + 3).map(|t| t.text.as_str()) == Some("]");
            if is_cfg_test || is_test_attr {
                // find the end of the attribute, then the item's body
                let mut j = i + 2;
                let mut bracket_depth = 1; // we're inside "["
                while j < toks.len() && bracket_depth > 0 {
                    match toks[j].text.as_str() {
                        "[" => bracket_depth += 1,
                        "]" => bracket_depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                // scan forward to the item's opening brace (skipping
                // further attributes and the item header); bail on `;`
                let mut k = j;
                let mut paren_depth = 0i32;
                while k < toks.len() {
                    match toks[k].text.as_str() {
                        "(" | "<" => paren_depth += 1,
                        ")" | ">" => paren_depth -= 1,
                        "{" if paren_depth <= 0 => break,
                        ";" if paren_depth <= 0 => {
                            k = toks.len();
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if k < toks.len() {
                    // mark to the matching close brace
                    let mut depth = 0i32;
                    let mut m = k;
                    while m < toks.len() {
                        match toks[m].text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        marked[m] = true;
                        m += 1;
                    }
                    if m < toks.len() {
                        marked[m] = true;
                    }
                    i = m + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    marked
}

// ---------------------------------------------------------------------
// function spans (for L2/L4)
// ---------------------------------------------------------------------

struct FnSpan {
    /// Index of the `{` opening the body.
    body_start: usize,
    /// Index of the matching `}`.
    body_end: usize,
}

/// Locate function bodies: each `fn` keyword followed (at paren-depth 0)
/// by `{`. Declarations ending in `;` (trait methods, externs) are
/// skipped. Nested functions/closures are inside their parent's span;
/// lints that walk spans de-duplicate findings by token index.
fn function_spans(lexed: &Lexed) -> Vec<FnSpan> {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident || toks[i].text != "fn" {
            continue;
        }
        let mut j = i + 1;
        let mut paren_depth = 0i32;
        let mut body_start = None;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => paren_depth += 1,
                ")" => paren_depth -= 1,
                "{" if paren_depth == 0 => {
                    body_start = Some(j);
                    break;
                }
                ";" if paren_depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(start) = body_start else { continue };
        let mut depth = 0i32;
        let mut m = start;
        while m < toks.len() {
            match toks[m].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            m += 1;
        }
        if m < toks.len() {
            spans.push(FnSpan {
                body_start: start,
                body_end: m,
            });
        }
    }
    spans
}

// ---------------------------------------------------------------------
// L1: no unwrap/expect/panic! in hot-path library code
// ---------------------------------------------------------------------

fn lint_l1(ctx: &FileContext<'_>, diags: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.is_test_token(i) || toks[i].kind != TokenKind::Ident {
            continue;
        }
        let next_is = |off: usize, s: &str| toks.get(i + off).map(|t| t.text.as_str()) == Some(s);
        let prev_is_dot = i > 0 && toks[i - 1].text == ".";
        match toks[i].text.as_str() {
            "unwrap" | "expect" if prev_is_dot && next_is(1, "(") => {
                diags.push(ctx.diag(
                    LintId::L1,
                    toks[i].line,
                    format!(
                        "`{}()` in hot-path library code can panic under load",
                        toks[i].text
                    ),
                    "propagate the error (`?` / `ok_or`) or handle the None/Err arm explicitly",
                ));
            }
            "panic" if next_is(1, "!") => {
                diags.push(ctx.diag(
                    LintId::L1,
                    toks[i].line,
                    "`panic!` in hot-path library code aborts the worker thread".to_string(),
                    "return a typed error; reserve panics for programmer bugs behind debug_assert!",
                ));
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// L2: cluster sends must go through the Network accounting layer
// ---------------------------------------------------------------------

/// Heuristic: inside each function body in cluster-scoped files, a
/// `.send(...)` is legal only if a `transmit(...)` call appears earlier in
/// the same body (the runtime charges the Network before shipping bytes).
/// `thread::sleep` is never legal — simulated time must come from the
/// clock abstraction so single-node runs stay deterministic.
fn lint_l2(ctx: &FileContext<'_>, diags: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for span in function_spans(ctx.lexed) {
        let mut transmit_seen = false;
        for i in span.body_start..=span.body_end.min(toks.len() - 1) {
            if ctx.is_test_token(i) || toks[i].kind != TokenKind::Ident {
                continue;
            }
            let next_is_paren = toks.get(i + 1).map(|t| t.text.as_str()) == Some("(");
            match toks[i].text.as_str() {
                "transmit" if next_is_paren => transmit_seen = true,
                "send" | "try_send"
                    if next_is_paren
                        && i > 0
                        && toks[i - 1].text == "."
                        && !transmit_seen
                        && seen.insert(i) =>
                {
                    diags.push(ctx.diag(
                        LintId::L2,
                        toks[i].line,
                        "raw channel send in cluster code without a preceding Network::transmit \
                         charge in this function"
                            .to_string(),
                        "route the transfer through Network::transmit so bytes are accounted, \
                         or move the send into the accounting layer",
                    ));
                }
                "sleep"
                    if next_is_paren
                        && i >= 2
                        && toks[i - 1].text == ":"
                        && toks[i - 2].text == ":"
                        && seen.insert(i) =>
                {
                    diags.push(ctx.diag(
                        LintId::L2,
                        toks[i].line,
                        "thread::sleep in cluster code couples simulation behaviour to \
                         wall-clock time"
                            .to_string(),
                        "use the simulated clock / latency model on Network instead of sleeping",
                    ));
                }
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------
// L3: no wall-clock reads in simulation-deterministic cluster code
// ---------------------------------------------------------------------

fn lint_l3(ctx: &FileContext<'_>, diags: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.is_test_token(i) || toks[i].kind != TokenKind::Ident {
            continue;
        }
        let is_clock = matches!(toks[i].text.as_str(), "Instant" | "SystemTime");
        if is_clock
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some(":")
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some(":")
            && toks.get(i + 3).map(|t| t.text.as_str()) == Some("now")
        {
            diags.push(ctx.diag(
                LintId::L3,
                toks[i].line,
                format!(
                    "`{}::now` leaks wall-clock time into simulation-deterministic cluster code",
                    toks[i].text
                ),
                "take timestamps from the clock abstraction (or pass them in) so simulated \
                 runs are reproducible",
            ));
        }
    }
}

// ---------------------------------------------------------------------
// L5: library crates must not print to stdout/stderr
// ---------------------------------------------------------------------

/// Library code talks through the observability layer, not the console:
/// a `println!` inside a storage or query crate corrupts harness output
/// (the figures binary emits machine-readable tables and a JSON metrics
/// snapshot on stdout) and is invisible to anything consuming the
/// appliance as a library. Binaries (`main.rs`, `src/bin/`) and the
/// harness/analysis crates are exempt via config.
fn lint_l5(ctx: &FileContext<'_>, diags: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.is_test_token(i) || toks[i].kind != TokenKind::Ident {
            continue;
        }
        let is_print = matches!(
            toks[i].text.as_str(),
            "println" | "print" | "eprintln" | "eprint"
        );
        if is_print && toks.get(i + 1).map(|t| t.text.as_str()) == Some("!") {
            diags.push(ctx.diag(
                LintId::L5,
                toks[i].line,
                format!(
                    "`{}!` in library code writes to the console instead of the \
                     observability layer",
                    toks[i].text
                ),
                "record a counter/event via impliance-obs, or return the text to the caller; \
                 only binaries may print",
            ));
        }
    }
}

// ---------------------------------------------------------------------
// L6: the streaming executor core must not materialize
// ---------------------------------------------------------------------

/// The batched pipeline's whole point is that operators pull one batch at
/// a time; a call back into the materializing compatibility layer
/// (`ops::filter(..)`, `joins::hash_join(..)`, `collect_tuples(..)`,
/// `collect_all(..)`, ...) inside the executor core silently re-buffers
/// the entire input and defeats LIMIT early termination. Definitions
/// (`fn collect_tuples(...)`) and test code are exempt — the collect
/// helpers *live* in the core so wrappers and tests can call them.
fn lint_l6(ctx: &FileContext<'_>, diags: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.is_test_token(i) || toks[i].kind != TokenKind::Ident {
            continue;
        }
        let next_is = |off: usize, s: &str| toks.get(i + off).map(|t| t.text.as_str()) == Some(s);
        match toks[i].text.as_str() {
            "ops" | "joins"
                if next_is(1, ":")
                    && next_is(2, ":")
                    && toks.get(i + 3).map(|t| t.kind == TokenKind::Ident) == Some(true)
                    && next_is(4, "(") =>
            {
                diags.push(ctx.diag(
                    LintId::L6,
                    toks[i].line,
                    format!(
                        "`{}::{}(..)` materializes its whole input inside the streaming \
                         executor core",
                        toks[i].text,
                        toks[i + 3].text
                    ),
                    "build the batched operator directly (crate::batch::*) so rows stream \
                     and LIMIT can terminate the pipeline early",
                ));
            }
            "collect_all" | "collect_tuples" | "collect_rows"
                if next_is(1, "(") && !(i > 0 && toks[i - 1].text == "fn") =>
            {
                diags.push(ctx.diag(
                    LintId::L6,
                    toks[i].line,
                    format!(
                        "`{}(..)` drains the operator into a Vec inside the streaming \
                         executor core",
                        toks[i].text
                    ),
                    "pull batches in a loop (`while let Some(batch) = op.next_batch()?`) \
                     instead of materializing the full result",
                ));
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// L7: cluster call results in the resilient executor must be handled
// ---------------------------------------------------------------------

/// The whole point of the fault-tolerant executor is that cluster calls
/// fail: `submit_to` returns `Err` when a node is dead or the request
/// envelope is dropped, and the chaos harness injects exactly those
/// failures. An `.unwrap()` / `.expect(..)` anywhere in a method chain
/// rooted at `submit_to` / `submit_to_kind` / `map_kind` / `transmit`
/// turns an injected fault into a panic — in TEST code too, since chaos
/// tests must assert on retried/degraded outcomes, not die. Scope is the
/// resilient executor files (`l7_files`); handled results (let-else,
/// match, the retry/failover helpers) pass. Heuristic: only the direct
/// chain is tracked — a result bound first and unwrapped later is caught
/// by review, not this lint.
fn lint_l7(ctx: &FileContext<'_>, diags: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    const ROOTS: &[&str] = &["submit_to", "submit_to_kind", "map_kind", "transmit"];
    let skip_parens = |start: usize| -> usize {
        // `start` indexes the opening "("; returns the index of its match
        let mut depth = 0i32;
        let mut m = start;
        while m < toks.len() {
            match toks[m].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            m += 1;
        }
        m
    };
    let mut i = 0;
    while i < toks.len() {
        let is_root = toks[i].kind == TokenKind::Ident
            && ROOTS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(");
        if !is_root {
            i += 1;
            continue;
        }
        let call_end = skip_parens(i + 1);
        // walk the rest of the method chain: `?`, `.name`, `.name(..)`
        let mut k = call_end + 1;
        while k < toks.len() {
            match toks.get(k).map(|t| t.text.as_str()) {
                Some("?") => k += 1,
                Some(".") => {
                    let Some(name) = toks.get(k + 1) else { break };
                    if name.kind != TokenKind::Ident {
                        break;
                    }
                    let called = toks.get(k + 2).map(|t| t.text.as_str()) == Some("(");
                    if called && matches!(name.text.as_str(), "unwrap" | "expect") {
                        diags.push(ctx.diag(
                            LintId::L7,
                            name.line,
                            format!(
                                "`{}()` on a cluster `{}` chain panics on injected faults \
                                 (node kills and message drops are expected here)",
                                name.text, toks[i].text
                            ),
                            "handle the Err arm (let-else / match) or route the call through \
                             the retry/failover helpers so chaos schedules degrade instead of \
                             panicking",
                        ));
                    }
                    if called {
                        k = skip_parens(k + 2) + 1;
                    } else {
                        break; // field access / turbofish — chain type changed
                    }
                }
                _ => break,
            }
        }
        i = call_end + 1;
    }
}

// ---------------------------------------------------------------------
// L8: query execution threads come from the morsel pool
// ---------------------------------------------------------------------

/// The morsel pool (`parallel::scoped_map`) owns worker accounting: it
/// reports `query.parallel.workers_used`, maintains the queue-depth
/// gauge, and re-raises worker panics on the caller thread. A raw
/// `thread::spawn` / `std::thread::spawn` elsewhere in the query crate
/// produces threads invisible to all of that — and detached `spawn`
/// handles can silently swallow panics. Scoped spawns (`s.spawn(..)`,
/// preceded by `.`) are the pool's own mechanism and pass; test code
/// is exempt like L1.
fn lint_l8(ctx: &FileContext<'_>, diags: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.is_test_token(i) || toks[i].kind != TokenKind::Ident {
            continue;
        }
        if toks[i].text == "spawn"
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].text == "thread"
        {
            diags.push(
                ctx.diag(
                    LintId::L8,
                    toks[i].line,
                    "raw `thread::spawn` in query execution code bypasses the morsel worker pool"
                        .to_string(),
                    "run the work through parallel::scoped_map (or a thread::scope inside \
                 parallel.rs) so workers are counted, observed, and panic-safe",
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// L13: retrieval goes through the query pipeline
// ---------------------------------------------------------------------

/// The direct index entry points (`search::search`, `search_topk`,
/// `search_phrase`) return unscored, unmetered results with no freshness
/// watermark and no admission control — everything the IndexScan operator
/// adds. Outside `crates/query` / `crates/index`, callers must go through
/// `Impliance::query` match clauses or `impliance_query::keyword_candidates`.
/// Definitions (`fn search_topk(...)`) and test code are exempt — tests
/// use the index directly as a brute-force oracle.
fn lint_l13(ctx: &FileContext<'_>, diags: &mut Vec<Diagnostic>) {
    const ENTRIES: &[&str] = &["search", "search_topk", "search_phrase"];
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.is_test_token(i) || toks[i].kind != TokenKind::Ident {
            continue;
        }
        let next_is = |off: usize, s: &str| toks.get(i + off).map(|t| t.text.as_str()) == Some(s);
        let qualified = toks[i].text == "search"
            && next_is(1, ":")
            && next_is(2, ":")
            && toks
                .get(i + 3)
                .map(|t| t.kind == TokenKind::Ident && ENTRIES.contains(&t.text.as_str()))
                == Some(true)
            && next_is(4, "(");
        if qualified {
            diags.push(ctx.diag(
                LintId::L13,
                toks[i].line,
                format!(
                    "direct call to `search::{}(..)` bypasses the hybrid retrieval pipeline",
                    toks[i + 3].text
                ),
                "route the lookup through `Impliance::query` with a match clause (or \
                 `impliance_query::keyword_candidates` for raw candidate sets) so results \
                 are scored, metered, and carry the index_epoch watermark",
            ));
            continue;
        }
        let bare = matches!(toks[i].text.as_str(), "search_topk" | "search_phrase")
            && next_is(1, "(")
            && !(i > 0 && toks[i - 1].text == "fn")
            // method calls (`imp.search_phrase(..)`) are the sanctioned
            // appliance wrappers, not the index free functions
            && !(i > 0 && toks[i - 1].text == ".")
            // `search::search_topk(` is already reported as the qualified
            // form above; other qualifiers (`impliance_index::search_topk`)
            // still land here
            && !(i >= 3
                && toks[i - 1].text == ":"
                && toks[i - 2].text == ":"
                && toks[i - 3].text == "search");
        if bare {
            diags.push(ctx.diag(
                LintId::L13,
                toks[i].line,
                format!(
                    "direct call to `{}(..)` bypasses the hybrid retrieval pipeline",
                    toks[i].text
                ),
                "route the lookup through `Impliance::query` with a match clause (or \
                 `impliance_query::keyword_candidates` for raw candidate sets) so results \
                 are scored, metered, and carry the index_epoch watermark",
            ));
        }
    }
}

// ---------------------------------------------------------------------
// L4: no lock guard held across a channel send/recv
// ---------------------------------------------------------------------

#[derive(Debug)]
struct ActiveGuard {
    name: String,
    depth: i32,
    line: u32,
}

/// Heuristic: a `let g = <expr>.lock();` / `.read();` / `.write();`
/// statement binds a guard named `g`; the guard is live until `drop(g)` or
/// the closing brace of its block. Any `.send(` / `.recv(` /
/// `.recv_timeout(` / `.try_recv(` while a guard is live is a finding.
/// Chained uses (`map.lock().get(..)`) create only a temporary guard and
/// are ignored.
fn lint_l4(ctx: &FileContext<'_>, diags: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    let mut reported: BTreeSet<usize> = BTreeSet::new();
    for span in function_spans(ctx.lexed) {
        let mut depth = 0i32;
        let mut guards: Vec<ActiveGuard> = Vec::new();
        let mut i = span.body_start;
        while i <= span.body_end.min(toks.len() - 1) {
            let text = toks[i].text.as_str();
            match text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                }
                "let" if toks[i].kind == TokenKind::Ident && !ctx.is_test_token(i) => {
                    // find simple `let [mut] name = ... .lock() ;` pattern
                    if let Some((name, end)) = guard_binding(toks, i, span.body_end) {
                        guards.push(ActiveGuard {
                            name,
                            depth,
                            line: toks[i].line,
                        });
                        i = end;
                        continue;
                    }
                }
                "drop"
                    if toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
                        && toks.get(i + 3).map(|t| t.text.as_str()) == Some(")") =>
                {
                    if let Some(dropped) = toks.get(i + 2) {
                        guards.retain(|g| g.name != dropped.text);
                    }
                }
                "send" | "recv" | "recv_timeout" | "try_recv" | "try_send"
                    if !ctx.is_test_token(i)
                        && i > 0
                        && toks[i - 1].text == "."
                        && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
                        && !guards.is_empty()
                        && reported.insert(i) =>
                {
                    let held: Vec<String> = guards
                        .iter()
                        .map(|g| format!("`{}` (taken line {})", g.name, g.line))
                        .collect();
                    diags.push(ctx.diag(
                        LintId::L4,
                        toks[i].line,
                        format!(
                            "channel `{}` while lock guard{} {} still held — blocks the lock \
                             for the channel's latency and invites deadlock",
                            text,
                            if held.len() == 1 { "" } else { "s" },
                            held.join(", ")
                        ),
                        "drop the guard (narrow scope or explicit drop()) before touching the \
                         channel",
                    ));
                }
                _ => {}
            }
            i += 1;
        }
    }
}

/// If tokens at `let_idx` form `let [mut] name = ... .lock|read|write ( ) ;`
/// (the lock call terminating the statement), return the guard name and the
/// index of the `;`.
fn guard_binding(
    toks: &[crate::lexer::Token],
    let_idx: usize,
    limit: usize,
) -> Option<(String, usize)> {
    let mut j = let_idx + 1;
    if toks.get(j).map(|t| t.text.as_str()) == Some("mut") {
        j += 1;
    }
    let name_tok = toks.get(j)?;
    if name_tok.kind != TokenKind::Ident {
        return None; // tuple/struct pattern — not a simple guard binding
    }
    let name = name_tok.text.clone();
    if toks.get(j + 1).map(|t| t.text.as_str()) != Some("=") {
        return None; // `let x: T = ...` (typed) or something else; skip type ascription
    }
    // scan to the end of the statement at nesting depth 0
    let mut k = j + 2;
    let mut nest = 0i32;
    while k <= limit {
        match toks.get(k).map(|t| t.text.as_str()) {
            Some("(") | Some("[") | Some("{") => nest += 1,
            Some(")") | Some("]") | Some("}") => nest -= 1,
            Some(";") if nest == 0 => break,
            None => return None,
            _ => {}
        }
        k += 1;
    }
    if k > limit {
        return None;
    }
    // statement must end with `. lock|read|write ( ) ;`
    if k >= 4
        && toks[k - 1].text == ")"
        && toks[k - 2].text == "("
        && matches!(toks[k - 3].text.as_str(), "lock" | "read" | "write")
        && toks[k - 4].text == "."
    {
        Some((name, k))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config_for(path: &str) -> LintConfig {
        let mut c = LintConfig::impliance("/nonexistent");
        if !path.starts_with("crates/") {
            c.l1_prefixes.push(path.to_string());
            c.cluster_prefixes.push(path.to_string());
        }
        c
    }

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(&config_for(path), path, src)
    }

    #[test]
    fn l1_flags_unwrap_expect_panic() {
        let src = r#"
            pub fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect("boom");
                if a + b > 100 { panic!("too big"); }
                a
            }
        "#;
        let diags = run("crates/storage/src/engine.rs", src);
        let ids: Vec<_> = diags.iter().map(|d| d.id).collect();
        assert_eq!(ids, vec![LintId::L1, LintId::L1, LintId::L1]);
    }

    #[test]
    fn l1_ignores_test_modules_and_strings() {
        let src = r#"
            pub fn g() -> &'static str { "please .unwrap() responsibly" }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); }
            }
        "#;
        assert!(run("crates/storage/src/engine.rs", src).is_empty());
    }

    #[test]
    fn l1_not_applied_outside_hot_path() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(run("crates/docmodel/src/node.rs", src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = r#"
            pub fn f(x: Option<u32>) -> u32 {
                // impliance-lint: allow(L1)
                x.unwrap()
            }
        "#;
        assert!(run("crates/storage/src/engine.rs", src).is_empty());
    }

    #[test]
    fn l2_send_without_transmit_flags() {
        let src = r#"
            pub fn relay(tx: &Sender<u32>) {
                tx.send(1).ok();
            }
        "#;
        let diags = run("crates/cluster/src/group.rs", src);
        assert_eq!(diags.iter().filter(|d| d.id == LintId::L2).count(), 1);
    }

    #[test]
    fn l2_send_after_transmit_passes() {
        let src = r#"
            pub fn relay(net: &Network, tx: &Sender<u32>) {
                net.transmit(a, b, 64);
                tx.send(1).ok();
            }
        "#;
        assert!(run("crates/cluster/src/group.rs", src)
            .iter()
            .all(|d| d.id != LintId::L2));
    }

    #[test]
    fn l2_sleep_always_flags() {
        let src = r#"
            pub fn wait() { std::thread::sleep(Duration::from_millis(5)); }
        "#;
        let diags = run("crates/cluster/src/group.rs", src);
        assert_eq!(diags.iter().filter(|d| d.id == LintId::L2).count(), 1);
    }

    #[test]
    fn l3_flags_wall_clock() {
        let src = r#"
            pub fn stamp() -> Instant { Instant::now() }
            pub fn stamp2() -> SystemTime { SystemTime::now() }
        "#;
        let diags = run("crates/cluster/src/group.rs", src);
        assert_eq!(diags.iter().filter(|d| d.id == LintId::L3).count(), 2);
    }

    #[test]
    fn l3_exempt_file_passes() {
        let src = "pub fn stamp() -> Instant { Instant::now() }";
        let c = LintConfig::impliance("/nonexistent");
        assert!(lint_source(&c, "crates/cluster/src/network.rs", src).is_empty());
    }

    #[test]
    fn l4_guard_across_send_flags() {
        let src = r#"
            pub fn f(&self) {
                let nodes = self.nodes.read();
                self.tx.send(1).ok();
            }
        "#;
        let diags = run("crates/docmodel/src/node.rs", src);
        assert_eq!(diags.iter().filter(|d| d.id == LintId::L4).count(), 1);
        assert!(diags[0].message.contains("`nodes`"));
    }

    #[test]
    fn l4_dropped_guard_passes() {
        let src = r#"
            pub fn f(&self) {
                let nodes = self.nodes.read();
                drop(nodes);
                self.tx.send(1).ok();
            }
        "#;
        assert!(run("crates/docmodel/src/node.rs", src).is_empty());
    }

    #[test]
    fn l4_scoped_guard_passes() {
        let src = r#"
            pub fn f(&self) {
                {
                    let nodes = self.nodes.read();
                    let _ = nodes.len();
                }
                self.tx.send(1).ok();
            }
        "#;
        assert!(run("crates/docmodel/src/node.rs", src).is_empty());
    }

    #[test]
    fn l4_chained_temporary_is_not_a_guard() {
        let src = r#"
            pub fn f(&self) {
                let n = self.nodes.read().len();
                self.tx.send(n).ok();
            }
        "#;
        assert!(run("crates/docmodel/src/node.rs", src).is_empty());
    }

    #[test]
    fn l5_flags_console_prints_in_library_code() {
        let src = r#"
            pub fn noisy(x: u32) {
                println!("value = {x}");
                eprintln!("warning");
            }
        "#;
        let diags = run("crates/storage/src/engine.rs", src);
        assert_eq!(diags.iter().filter(|d| d.id == LintId::L5).count(), 2);
    }

    #[test]
    fn l5_skips_binaries_harness_and_tests() {
        let src = r#"pub fn noisy() { println!("hello"); }"#;
        let c = LintConfig::impliance("/nonexistent");
        assert!(lint_source(&c, "crates/bench/src/report.rs", src).is_empty());
        assert!(lint_source(&c, "crates/analysis/src/main.rs", src).is_empty());
        assert!(lint_source(&c, "crates/bench/src/bin/figures.rs", src).is_empty());
        assert!(lint_source(&c, "src/main.rs", src).is_empty());
        let test_src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { println!("debugging a test is fine"); }
            }
        "#;
        assert!(lint_source(&c, "crates/storage/src/engine.rs", test_src).is_empty());
    }

    #[test]
    fn l5_allow_comment_suppresses() {
        let src = r#"
            pub fn report() {
                // impliance-lint: allow(L5)
                println!("sanctioned output");
            }
        "#;
        let c = LintConfig::impliance("/nonexistent");
        assert!(lint_source(&c, "crates/storage/src/engine.rs", src).is_empty());
    }

    #[test]
    fn l6_flags_materializing_helpers_in_streaming_core() {
        let src = r#"
            fn run(op: &mut dyn Operator) -> Vec<Tuple> {
                let a = ops::filter(&input, "c", &p);
                let b = joins::hash_join(l, r, lk, rk);
                collect_tuples(op).unwrap_or_default()
            }
        "#;
        let diags = run("crates/query/src/exec.rs", src);
        assert_eq!(diags.iter().filter(|d| d.id == LintId::L6).count(), 3);
    }

    #[test]
    fn l6_ignores_definitions_and_test_code() {
        let src = r#"
            pub fn collect_tuples(op: &mut dyn Operator) -> Result<Vec<Tuple>, ExecError> {
                let mut out = Vec::new();
                while let Some(batch) = op.next_batch()? {
                    out.extend(batch.into_tuples());
                }
                Ok(out)
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let got = collect_tuples(&mut op).unwrap();
                }
            }
        "#;
        let diags = run("crates/query/src/batch.rs", src);
        assert!(diags.iter().all(|d| d.id != LintId::L6));
    }

    #[test]
    fn l6_not_applied_to_compatibility_wrappers() {
        let src = r#"
            pub fn filter(tuples: &[Tuple], alias: &str, p: &Predicate) -> Vec<Tuple> {
                let mut op = FilterOp::new(source(tuples.to_vec()), alias.to_string(), p.clone());
                collect_tuples(&mut op).unwrap_or_default()
            }
        "#;
        let diags = run("crates/query/src/ops.rs", src);
        assert!(diags.iter().all(|d| d.id != LintId::L6));
    }

    #[test]
    fn l7_flags_unwrap_on_submit_chain_even_in_tests() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let n = rt.submit_to(node, 8, |_| 1u64).unwrap().join().unwrap();
                    let m = rt.map_kind(NodeKind::Data, 8, job).expect("map");
                    let _ = (n, m);
                }
            }
        "#;
        let diags = run("crates/query/src/dist.rs", src);
        assert_eq!(diags.iter().filter(|d| d.id == LintId::L7).count(), 3);
    }

    #[test]
    fn l7_handled_results_and_other_files_pass() {
        let src = r#"
            pub fn dispatch(rt: &Runtime) -> Result<u64, ClusterError> {
                let handle = rt.submit_to(node, 8, job)?;
                let Ok(n) = handle.join() else {
                    return Err(ClusterError::TaskLost);
                };
                Ok(n)
            }
        "#;
        assert!(run("crates/query/src/dist.rs", src)
            .iter()
            .all(|d| d.id != LintId::L7));
        // same unwrap chain outside the resilient executor: L7 silent
        let chained = "fn f() { rt.submit_to(n, 8, job).unwrap(); }";
        assert!(run("crates/query/src/exec.rs", chained)
            .iter()
            .all(|d| d.id != LintId::L7));
    }

    #[test]
    fn l7_allow_comment_suppresses() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    // impliance-lint: allow(L7)
                    rt.submit_to(node, 8, job).unwrap();
                }
            }
        "#;
        assert!(run("crates/query/src/dist.rs", src)
            .iter()
            .all(|d| d.id != LintId::L7));
    }

    #[test]
    fn l8_flags_raw_thread_spawn_in_query_crate() {
        let src = r#"
            pub fn run(jobs: Vec<Job>) {
                let a = std::thread::spawn(move || jobs.len());
                let b = thread::spawn(|| 1u64);
                let _ = (a, b);
            }
        "#;
        let diags = run("crates/query/src/exec.rs", src);
        assert_eq!(diags.iter().filter(|d| d.id == LintId::L8).count(), 2);
    }

    #[test]
    fn l8_allows_pool_file_scoped_spawns_and_other_crates() {
        let c = LintConfig::impliance("/nonexistent");
        let raw = "pub fn run() { let h = std::thread::spawn(|| 1u64); h.join().ok(); }";
        // the pool implementation itself is exempt
        assert!(lint_source(&c, "crates/query/src/parallel.rs", raw)
            .iter()
            .all(|d| d.id != LintId::L8));
        // other crates are out of scope
        assert!(lint_source(&c, "crates/storage/src/engine.rs", raw)
            .iter()
            .all(|d| d.id != LintId::L8));
        // scoped spawns are the pool mechanism, not a raw thread
        let scoped = r#"
            pub fn pooled(workers: usize) {
                std::thread::scope(|s| {
                    for _ in 0..workers {
                        s.spawn(|| {});
                    }
                });
            }
        "#;
        assert!(lint_source(&c, "crates/query/src/exec.rs", scoped)
            .iter()
            .all(|d| d.id != LintId::L8));
        // test code is exempt like L1
        let test_src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { std::thread::spawn(|| {}).join().ok(); }
            }
        "#;
        assert!(lint_source(&c, "crates/query/src/exec.rs", test_src)
            .iter()
            .all(|d| d.id != LintId::L8));
    }

    #[test]
    fn l13_flags_direct_search_calls_outside_query() {
        let src = r#"
            pub fn lookup(idx: &InvertedIndex, q: &str) -> Vec<DocId> {
                let hits = search::search(idx, &SearchQuery::terms(q));
                let (scored, _, _) = search_topk(idx, q, 10);
                let ph = impliance_index::search_phrase(idx, q, None);
                hits
            }
        "#;
        let diags = run("crates/facet/src/session.rs", src);
        assert_eq!(diags.iter().filter(|d| d.id == LintId::L13).count(), 3);
    }

    #[test]
    fn l13_exempts_query_index_definitions_and_tests() {
        let c = LintConfig::impliance("/nonexistent");
        let raw = "pub fn go(i: &InvertedIndex) { let _ = search::search_topk(i, \"q\", 5); }";
        // the pipeline itself may call the entry points
        assert!(lint_source(&c, "crates/query/src/batch.rs", raw)
            .iter()
            .all(|d| d.id != LintId::L13));
        assert!(lint_source(&c, "crates/index/src/search.rs", raw)
            .iter()
            .all(|d| d.id != LintId::L13));
        // defining the entry point is not calling it
        let def = "pub fn search_topk(i: &InvertedIndex, q: &str, k: usize) -> Vec<Hit> { vec![] }";
        assert!(lint_source(&c, "crates/facet/src/session.rs", def)
            .iter()
            .all(|d| d.id != LintId::L13));
        // tests use the index as a brute-force oracle
        let test_src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn oracle() { let _ = search::search_topk(&idx, "q", 5); }
            }
        "#;
        assert!(lint_source(&c, "crates/facet/src/session.rs", test_src)
            .iter()
            .all(|d| d.id != LintId::L13));
    }

    #[test]
    fn signatures_normalize_whitespace() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x   .unwrap()\n}";
        let diags = run("crates/storage/src/engine.rs", src);
        assert_eq!(diags[0].signature, "x .unwrap()");
    }
}

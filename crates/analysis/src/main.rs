//! CLI for the Impliance invariant linter.
//!
//! ```text
//! cargo run -p impliance-analysis -- check                    # gate: fail on NEW violations
//! cargo run -p impliance-analysis -- check --update-baseline  # re-ratchet after intentional changes
//! cargo run -p impliance-analysis -- check --verify-baseline  # CI drift gate: fail if the ratchet is stale
//! cargo run -p impliance-analysis -- check --json-out out.json --root /path/to/ws
//! cargo run -p impliance-analysis -- explain L9               # rationale + heuristics for a lint
//! ```
//!
//! Exit codes: 0 = clean (all findings covered by the baseline), 1 = new
//! violations (or baseline drift under `--verify-baseline`), 2 = usage or
//! I/O error.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use impliance_analysis::report::{count_by_key, Json};
use impliance_analysis::{analyze_workspace, Baseline, Diagnostic, LintConfig, LintId, Workspace};

fn usage() -> ExitCode {
    eprintln!(
        "usage: impliance-analysis check [--update-baseline] [--verify-baseline] [--root DIR] [--json-out FILE]\n\
         \x20      impliance-analysis explain <L1..L12>\n\
         \n\
         check    scan the workspace, gate on NEW violations vs lint_baseline.json\n\
         explain  print a lint's rationale, detection heuristics, and suppression syntax\n\
         \n\
         Enforced invariants:\n\
         {}",
        LintId::ALL
            .iter()
            .map(|l| format!("  {l}: {}\n", l.description()))
            .collect::<String>()
    );
    ExitCode::from(2)
}

fn explain(id: LintId) -> ExitCode {
    println!("{id}: {}\n", id.description());
    println!("Why it matters:\n{}\n", id.rationale());
    println!("How it is detected:\n{}\n", id.heuristics());
    println!("Suppression:\n{}", id.suppression());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut update_baseline = false;
    let mut verify_baseline = false;
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut command: Option<String> = None;
    let mut explain_id: Option<LintId> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "check" if command.is_none() => command = Some("check".into()),
            "explain" if command.is_none() => {
                command = Some("explain".into());
                match iter.next().and_then(|s| LintId::parse(s)) {
                    Some(id) => explain_id = Some(id),
                    None => {
                        eprintln!(
                            "impliance-analysis: explain takes a lint id (L1..L{})",
                            LintId::ALL.len()
                        );
                        return usage();
                    }
                }
            }
            "--update-baseline" => update_baseline = true,
            "--verify-baseline" => verify_baseline = true,
            "--root" => match iter.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--json-out" => match iter.next() {
                Some(file) => json_out = Some(PathBuf::from(file)),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    match command.as_deref() {
        Some("explain") => return explain(explain_id.expect("parsed above")),
        Some("check") => {}
        _ => return usage(),
    }
    if update_baseline && verify_baseline {
        eprintln!("impliance-analysis: --update-baseline and --verify-baseline are exclusive");
        return usage();
    }

    let root = root.unwrap_or_else(find_workspace_root);
    let config = LintConfig::impliance(&root);

    let analysis = match analyze_workspace(&config) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("impliance-analysis: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = &analysis.diagnostics;

    let baseline = match Baseline::load(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("impliance-analysis: {e}");
            return ExitCode::from(2);
        }
    };

    if update_baseline {
        let fresh = Baseline::from_diagnostics(diags);
        let (old_total, new_total) = (baseline.total(), fresh.total());
        if let Err(e) = fresh.save(&root) {
            eprintln!("impliance-analysis: writing baseline: {e}");
            return ExitCode::from(2);
        }
        println!(
            "baseline updated: {} -> {} allowed findings ({} keys); review the \
             lint_baseline.json diff",
            old_total,
            new_total,
            fresh.entries.len()
        );
        write_report(&root, json_out, diags, &[], &fresh, &analysis.workspace);
        return ExitCode::SUCCESS;
    }

    if verify_baseline {
        // CI drift gate: the committed ratchet must be exactly what
        // `--update-baseline` would write now. A stale baseline hides
        // paid-down debt (the ratchet stops ratcheting).
        let fresh = Baseline::from_diagnostics(diags);
        if fresh.entries != baseline.entries {
            let fresh_keys: std::collections::BTreeSet<_> = fresh.entries.keys().collect();
            let old_keys: std::collections::BTreeSet<_> = baseline.entries.keys().collect();
            eprintln!("FAIL: lint_baseline.json is stale (ratchet drift):");
            for k in old_keys.difference(&fresh_keys) {
                eprintln!("  no longer needed: {k}");
            }
            for k in fresh_keys.difference(&old_keys) {
                eprintln!("  missing entry:    {k}");
            }
            for (k, v) in &fresh.entries {
                if let Some(old) = baseline.entries.get(k) {
                    if old != v {
                        eprintln!("  count changed:    {k} ({old} -> {v})");
                    }
                }
            }
            eprintln!(
                "run `cargo run -p impliance-analysis -- check --update-baseline` and \
                 commit the diff"
            );
            return ExitCode::from(1);
        }
        println!(
            "baseline verified: {} allowed findings ({} keys) match the committed ratchet",
            baseline.total(),
            baseline.entries.len()
        );
        // fall through to the normal gate as well
    }

    let (covered, fresh) = baseline.partition(diags);

    let report_path = write_report(
        &root,
        json_out,
        diags,
        &fresh,
        &baseline,
        &analysis.workspace,
    );

    let mut per_lint: BTreeMap<LintId, usize> = BTreeMap::new();
    for d in diags {
        *per_lint.entry(d.id).or_insert(0) += 1;
    }
    println!(
        "impliance-analysis: scanned workspace at {}",
        root.display()
    );
    for id in LintId::ALL {
        println!(
            "  {id} ({}): {} finding(s)",
            id.description(),
            per_lint.get(&id).copied().unwrap_or(0)
        );
    }
    println!(
        "  total {} finding(s): {} covered by baseline, {} NEW",
        diags.len(),
        covered.len(),
        fresh.len()
    );
    if let Some(p) = report_path {
        println!("  report: {}", p.display());
    }

    if fresh.is_empty() {
        println!("OK: no new invariant violations");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nNEW violations (not in lint_baseline.json):");
        for d in &fresh {
            eprintln!("{}", d.render());
        }
        eprintln!(
            "\nFAIL: {} new violation(s). Fix them, annotate with \
             `// impliance-lint: allow(Lx)` and a justification, or (for intentional \
             additions) run `cargo run -p impliance-analysis -- check --update-baseline` \
             and commit the diff. `cargo run -p impliance-analysis -- explain <Lx>` \
             prints each lint's rationale and heuristics.",
            fresh.len()
        );
        ExitCode::from(1)
    }
}

/// Walk up from CWD to the first directory holding a `[workspace]`
/// Cargo.toml; fall back to CWD.
fn find_workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent.to_path_buf(),
            None => return cwd,
        }
    }
}

/// Emit `analysis_report.json` (machine-readable mirror of the run,
/// including the serialized call graph and per-finding witness paths).
fn write_report(
    root: &std::path::Path,
    json_out: Option<PathBuf>,
    diags: &[Diagnostic],
    fresh: &[&Diagnostic],
    baseline: &Baseline,
    workspace: &Workspace,
) -> Option<PathBuf> {
    let path = json_out.unwrap_or_else(|| root.join("analysis_report.json"));

    let diag_json = |d: &Diagnostic| {
        let mut obj = BTreeMap::new();
        obj.insert("id".to_string(), Json::Str(d.id.as_str().to_string()));
        obj.insert("file".to_string(), Json::Str(d.file.clone()));
        obj.insert("line".to_string(), Json::Num(d.line as f64));
        obj.insert("signature".to_string(), Json::Str(d.signature.clone()));
        obj.insert("message".to_string(), Json::Str(d.message.clone()));
        obj.insert("suggestion".to_string(), Json::Str(d.suggestion.clone()));
        if !d.witness.is_empty() {
            obj.insert(
                "witness".to_string(),
                Json::Arr(d.witness.iter().map(|s| Json::Str(s.clone())).collect()),
            );
        }
        Json::Obj(obj)
    };

    let mut per_lint: BTreeMap<String, Json> = BTreeMap::new();
    for id in LintId::ALL {
        let n = diags.iter().filter(|d| d.id == id).count();
        per_lint.insert(id.as_str().to_string(), Json::Num(n as f64));
    }

    let mut totals = BTreeMap::new();
    totals.insert("findings".to_string(), Json::Num(diags.len() as f64));
    totals.insert("new".to_string(), Json::Num(fresh.len() as f64));
    totals.insert(
        "baseline_allowed".to_string(),
        Json::Num(baseline.total() as f64),
    );
    totals.insert("per_lint".to_string(), Json::Obj(per_lint));

    let mut doc = BTreeMap::new();
    doc.insert(
        "tool".to_string(),
        Json::Str("impliance-analysis".to_string()),
    );
    doc.insert("version".to_string(), Json::Num(2.0));
    doc.insert("totals".to_string(), Json::Obj(totals));
    doc.insert(
        "new_violations".to_string(),
        Json::Arr(fresh.iter().map(|d| diag_json(d)).collect()),
    );
    doc.insert(
        "diagnostics".to_string(),
        Json::Arr(diags.iter().map(diag_json).collect()),
    );
    doc.insert(
        "callgraph".to_string(),
        workspace.graph.to_json(&workspace.table),
    );
    doc.insert(
        "invariants".to_string(),
        Json::Obj(
            LintId::ALL
                .iter()
                .map(|l| {
                    (
                        l.as_str().to_string(),
                        Json::Str(l.description().to_string()),
                    )
                })
                .collect(),
        ),
    );
    // sanity: occurrence counts by ratchet key, for diffing runs
    doc.insert(
        "by_key".to_string(),
        Json::Obj(
            count_by_key(diags)
                .into_iter()
                .map(|(k, v)| (k, Json::Num(v as f64)))
                .collect(),
        ),
    );

    match std::fs::write(&path, Json::Obj(doc).pretty()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!(
                "impliance-analysis: warning: could not write {}: {e}",
                path.display()
            );
            None
        }
    }
}

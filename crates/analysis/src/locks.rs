//! Runtime lock-order detection: [`TrackedMutex`] / [`TrackedRwLock`].
//!
//! In debug builds every tracked acquisition records, per thread, the set
//! of lock *names* currently held; acquiring lock `B` while holding `A`
//! inserts the edge `A -> B` into a process-global order graph. If the new
//! edge closes a cycle the process panics immediately, naming the cycle —
//! converting a maybe-once-a-month deadlock into a deterministic test
//! failure the first time two call paths disagree about ordering. The
//! graph is keyed by the static name given at construction, so all
//! instances created at one site share a node (that is what makes the
//! A->B / B->A pattern detectable from single-threaded tests).
//!
//! Release builds compile the tracking away entirely: the wrappers are
//! `#[repr(transparent)]`-thin over `parking_lot` and the lock/unlock path
//! has zero extra work.

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(debug_assertions)]
mod graph {
    use parking_lot::Mutex;
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};

    /// Process-global acquired-before graph: name -> names acquired while
    /// it was held.
    static EDGES: Mutex<BTreeMap<&'static str, BTreeSet<&'static str>>> =
        Mutex::new(BTreeMap::new());

    thread_local! {
        /// Names of tracked locks currently held by this thread, in
        /// acquisition order (duplicates possible for reentrant reads).
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// Record an acquisition of `name`, panicking if it inverts an order
    /// the process has already committed to.
    pub fn on_acquire(name: &'static str) {
        HELD.with(|held| {
            let held = held.borrow();
            if held.is_empty() {
                return;
            }
            let mut edges = EDGES.lock();
            for &h in held.iter() {
                if h == name {
                    continue; // same-name reentrancy is the lock's business
                }
                edges.entry(h).or_default().insert(name);
            }
            // adding h->name may close a cycle: walk from `name` back to
            // any held lock
            for &h in held.iter() {
                if h == name {
                    continue;
                }
                if let Some(path) = path_between(&edges, name, h) {
                    let mut cycle: Vec<&str> = path;
                    cycle.push(name);
                    panic!(
                        "lock-order inversion: acquiring `{name}` while holding `{h}`, but the \
                         process already acquired them in the opposite order \
                         (cycle: {})",
                        cycle.join(" -> ")
                    );
                }
            }
        });
        HELD.with(|held| held.borrow_mut().push(name));
    }

    /// Record a release of `name` (latest acquisition wins).
    pub fn on_release(name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&h| h == name) {
                held.remove(pos);
            }
        });
    }

    /// DFS: path from `from` to `to` along recorded edges, if any.
    fn path_between(
        edges: &BTreeMap<&'static str, BTreeSet<&'static str>>,
        from: &'static str,
        to: &'static str,
    ) -> Option<Vec<&'static str>> {
        let mut stack = vec![(from, vec![from])];
        let mut seen = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            if node == to {
                return Some(path);
            }
            if !seen.insert(node) {
                continue;
            }
            if let Some(nexts) = edges.get(node) {
                for &n in nexts {
                    let mut p = path.clone();
                    p.push(n);
                    stack.push((n, p));
                }
            }
        }
        None
    }

    /// Test-only: forget all recorded edges (thread-held state is left
    /// alone; callers must have released their guards).
    pub fn reset_for_tests() {
        EDGES.lock().clear();
    }
}

/// Test-only escape hatch: clear the global order graph so independent
/// tests don't see each other's edges. Debug builds only.
#[cfg(debug_assertions)]
pub fn reset_lock_order_graph_for_tests() {
    graph::reset_for_tests();
}

/// A [`parking_lot::Mutex`] that participates in lock-order checking in
/// debug builds. The `name` should be unique per lock *role* (e.g.
/// `"cluster.nodes"`), not per instance.
pub struct TrackedMutex<T: ?Sized> {
    name: &'static str,
    inner: Mutex<T>,
}

/// Guard for [`TrackedMutex`]; releases the order-graph hold on drop.
pub struct TrackedMutexGuard<'a, T: ?Sized> {
    name: &'static str,
    // Option so Drop can release the graph entry after the guard.
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> TrackedMutex<T> {
    /// Create a named tracked mutex.
    pub const fn new(name: &'static str, value: T) -> TrackedMutex<T> {
        TrackedMutex {
            name,
            inner: Mutex::new(value),
        }
    }
}

impl<T: ?Sized> TrackedMutex<T> {
    /// The role name this lock registers in the order graph.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire, recording the acquisition order in debug builds. Panics on
    /// lock-order inversion (debug builds only).
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        graph::on_acquire(self.name);
        TrackedMutexGuard {
            name: self.name,
            guard: Some(self.inner.lock()),
        }
    }
}

impl<T: ?Sized> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        #[cfg(debug_assertions)]
        graph::on_release(self.name);
        #[cfg(not(debug_assertions))]
        let _ = self.name;
    }
}

impl<T: ?Sized> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

/// A [`parking_lot::RwLock`] that participates in lock-order checking in
/// debug builds. Read and write acquisitions share one graph node: a
/// read/write pair in opposite orders can deadlock just like two writes.
pub struct TrackedRwLock<T: ?Sized> {
    name: &'static str,
    inner: RwLock<T>,
}

/// Read guard for [`TrackedRwLock`].
pub struct TrackedReadGuard<'a, T: ?Sized> {
    name: &'static str,
    guard: Option<RwLockReadGuard<'a, T>>,
}

/// Write guard for [`TrackedRwLock`].
pub struct TrackedWriteGuard<'a, T: ?Sized> {
    name: &'static str,
    guard: Option<RwLockWriteGuard<'a, T>>,
}

impl<T> TrackedRwLock<T> {
    /// Create a named tracked rwlock.
    pub const fn new(name: &'static str, value: T) -> TrackedRwLock<T> {
        TrackedRwLock {
            name,
            inner: RwLock::new(value),
        }
    }
}

impl<T: ?Sized> TrackedRwLock<T> {
    /// The role name this lock registers in the order graph.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire shared, recording order in debug builds.
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        graph::on_acquire(self.name);
        TrackedReadGuard {
            name: self.name,
            guard: Some(self.inner.read()),
        }
    }

    /// Acquire exclusive, recording order in debug builds.
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        graph::on_acquire(self.name);
        TrackedWriteGuard {
            name: self.name,
            guard: Some(self.inner.write()),
        }
    }
}

impl<T: ?Sized> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        #[cfg(debug_assertions)]
        graph::on_release(self.name);
        #[cfg(not(debug_assertions))]
        let _ = self.name;
    }
}

impl<T: ?Sized> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        #[cfg(debug_assertions)]
        graph::on_release(self.name);
        #[cfg(not(debug_assertions))]
        let _ = self.name;
    }
}

impl<T: ?Sized> std::ops::Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T: ?Sized> std::ops::Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedRwLock")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

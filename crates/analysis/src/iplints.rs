//! The interprocedural invariants (L9-L11) and the metrics-drift check
//! (L12), built on [`crate::parser`] -> [`crate::symbols`] ->
//! [`crate::callgraph`].
//!
//! | id  | invariant |
//! |-----|-----------|
//! | L9  | no panic site transitively reachable from the public entry points |
//! | L10 | no allocating call inside operator `next_batch` / worker loops |
//! | L11 | no lock guard live across a call that transitively blocks |
//! | L12 | recorded metric names and DESIGN.md's Observability section agree |
//!
//! Every L9/L11 finding carries a witness path (entry point or guard
//! site down to the offending call) rendered into the diagnostic and
//! serialized in `analysis_report.json`. Approximations are documented
//! on [`crate::symbols`] (call resolution) and [`crate::parser`]
//! (body heuristics).

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::callgraph::CallGraph;
use crate::lints::LintConfig;
use crate::parser::{parse_file, CallSite, MetricSite};
use crate::report::{Diagnostic, LintId};
use crate::symbols::SymbolTable;

/// An L9 entry-point spec: fn `name`, optionally constrained to an impl
/// owner (`Impliance::query`) or an implemented trait
/// (`<X as Operator>::next_batch`).
#[derive(Clone, Debug)]
pub struct EntrySpec {
    /// Bare fn name.
    pub name: String,
    /// Required impl owner, if any.
    pub owner: Option<String>,
    /// Required implemented trait, if any.
    pub trait_name: Option<String>,
}

impl EntrySpec {
    /// Free fn entry.
    pub fn free(name: &str) -> EntrySpec {
        EntrySpec {
            name: name.into(),
            owner: None,
            trait_name: None,
        }
    }

    /// `Owner::name` entry.
    pub fn method(owner: &str, name: &str) -> EntrySpec {
        EntrySpec {
            name: name.into(),
            owner: Some(owner.into()),
            trait_name: None,
        }
    }

    /// Every impl of `Trait::name`.
    pub fn trait_impl(trait_name: &str, name: &str) -> EntrySpec {
        EntrySpec {
            name: name.into(),
            owner: None,
            trait_name: Some(trait_name.into()),
        }
    }
}

/// Parsed-and-indexed workspace: the input to the L9-L12 passes and the
/// source of the serialized call graph.
pub struct Workspace {
    /// All fn items, indexed.
    pub table: SymbolTable,
    /// Resolved call edges.
    pub graph: CallGraph,
    /// Per-file `allow(Lx)` suppressions.
    allows: HashMap<String, HashSet<(LintId, u32)>>,
    /// Metric registration literals: `(file, site)`.
    metric_sites: Vec<(String, MetricSite)>,
    /// Raw source lines per file, for diagnostic signatures.
    sources: HashMap<String, Vec<String>>,
}

impl Workspace {
    /// Parse + index a set of `(workspace-relative path, source)` files.
    /// Pass them sorted by path for deterministic node ids.
    pub fn build(files: Vec<(String, String)>) -> Workspace {
        let mut allows = HashMap::new();
        let mut metric_sites = Vec::new();
        let mut sources = HashMap::new();
        let mut parsed = Vec::new();
        for (rel, source) in files {
            let mut file = parse_file(&rel, &source);
            allows.insert(rel.clone(), std::mem::take(&mut file.allows));
            for site in file.metric_sites.drain(..) {
                metric_sites.push((rel.clone(), site));
            }
            sources.insert(rel.clone(), source.lines().map(|l| l.to_string()).collect());
            parsed.push(file);
        }
        let table = SymbolTable::build(parsed);
        let graph = CallGraph::build(&table);
        Workspace {
            table,
            graph,
            allows,
            metric_sites,
            sources,
        }
    }

    fn allowed(&self, file: &str, id: LintId, line: u32) -> bool {
        self.allows
            .get(file)
            .is_some_and(|s| s.contains(&(id, line)))
    }

    fn signature(&self, file: &str, line: u32) -> String {
        let lines = match self.sources.get(file) {
            Some(l) => l,
            None => return String::new(),
        };
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        crate::parser::normalize_line(&refs, line)
    }

    fn diag(
        &self,
        id: LintId,
        file: &str,
        line: u32,
        message: String,
        suggestion: &str,
        witness: Vec<String>,
    ) -> Diagnostic {
        Diagnostic {
            id,
            file: file.to_string(),
            line,
            signature: self.signature(file, line),
            message,
            suggestion: suggestion.to_string(),
            witness,
        }
    }
}

/// Run the call-graph lints (L9, L10, L11).
pub fn lint_graph(config: &LintConfig, ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    lint_l9(config, ws, &mut diags);
    lint_l10(config, ws, &mut diags);
    lint_l11(ws, &mut diags);
    diags
}

// ---------------------------------------------------------------------
// L9: panic-reachability from public entry points
// ---------------------------------------------------------------------

/// Is this call site a panic site?
fn panic_site(call: &CallSite) -> Option<&'static str> {
    if call.is_method && matches!(call.callee.as_str(), "unwrap" | "expect") {
        return Some(if call.callee == "unwrap" {
            "unwrap()"
        } else {
            "expect()"
        });
    }
    if call.is_macro && matches!(call.callee.as_str(), "panic" | "unreachable") {
        return Some(if call.callee == "panic" {
            "panic!"
        } else {
            "unreachable!"
        });
    }
    None
}

fn lint_l9(config: &LintConfig, ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    let mut entries: Vec<usize> = Vec::new();
    for spec in &config.l9_entries {
        entries.extend(ws.table.matching(
            &spec.name,
            spec.owner.as_deref(),
            spec.trait_name.as_deref(),
        ));
    }
    entries.sort_unstable();
    entries.dedup();
    let parents = ws.graph.reach_from(&ws.table, &entries);
    for (id, def) in ws.table.fns.iter().enumerate() {
        if def.item.is_test || parents[id].is_none() {
            continue;
        }
        for call in &def.item.calls {
            let Some(kind) = panic_site(call) else {
                continue;
            };
            if ws.allowed(&def.file, LintId::L9, call.line) {
                continue;
            }
            let mut witness = ws.graph.witness(&ws.table, &parents, id);
            let entry = witness
                .first()
                .and_then(|s| s.rsplit(' ').next())
                .unwrap_or("?")
                .to_string();
            witness.push(format!("{}:{} {} site", def.file, call.line, kind));
            diags.push(ws.diag(
                LintId::L9,
                &def.file,
                call.line,
                format!(
                    "`{kind}` in `{}` is reachable from entry point `{entry}` \
                     ({} call hop{}) — a bad input can crash the appliance",
                    def.item.qual_name(),
                    witness.len() - 2,
                    if witness.len() == 3 { "" } else { "s" },
                ),
                "return a typed error along the call chain (or prove the invariant and \
                 suppress with a justification)",
                witness,
            ));
        }
    }
}

// ---------------------------------------------------------------------
// L10: allocating calls inside hot loops
// ---------------------------------------------------------------------

/// Is this call site an allocating construct?
fn alloc_site(call: &CallSite) -> Option<String> {
    if call.is_macro && matches!(call.callee.as_str(), "format" | "vec") {
        return Some(format!("{}!", call.callee));
    }
    if call.is_method && matches!(call.callee.as_str(), "clone" | "to_vec" | "to_string") {
        return Some(format!(".{}()", call.callee));
    }
    if let Some(q) = &call.qualifier {
        if matches!(q.as_str(), "Vec" | "String") && matches!(call.callee.as_str(), "new" | "from")
        {
            return Some(format!("{q}::{}", call.callee));
        }
    }
    None
}

fn lint_l10(config: &LintConfig, ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for def in ws.table.fns.iter() {
        if def.item.is_test {
            continue;
        }
        let is_operator_pull =
            def.item.name == "next_batch" && def.item.trait_name.as_deref() == Some("Operator");
        let is_worker_file = config.l10_worker_files.iter().any(|f| f == &def.file);
        if !is_operator_pull && !is_worker_file {
            continue;
        }
        for call in &def.item.calls {
            if call.loop_depth == 0 {
                continue;
            }
            let Some(what) = alloc_site(call) else {
                continue;
            };
            if ws.allowed(&def.file, LintId::L10, call.line) {
                continue;
            }
            diags.push(ws.diag(
                LintId::L10,
                &def.file,
                call.line,
                format!(
                    "`{what}` allocates inside a loop in `{}` — {} runs per tuple on \
                     the hot path",
                    def.item.qual_name(),
                    if is_operator_pull {
                        "the operator pull loop"
                    } else {
                        "the morsel worker loop"
                    },
                ),
                "hoist the allocation out of the loop and reuse the buffer (clear() + \
                 extend), or borrow instead of cloning",
                Vec::new(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// L11: guard live across a transitively-blocking call
// ---------------------------------------------------------------------

/// Does this call site block directly?
fn sink_call(call: &CallSite) -> Option<&'static str> {
    if call.is_macro {
        return None;
    }
    match call.callee.as_str() {
        "transmit" if call.is_method || call.qualifier.as_deref() == Some("Network") => {
            Some("Network::transmit")
        }
        "recv" | "recv_timeout" if call.is_method => Some("channel recv"),
        // The change-feed poll: holding an unrelated guard across it
        // serializes ingest commits against the annotation worker.
        "recv_changes" if call.is_method => Some("change-feed recv"),
        "sleep" if call.is_method || call.qualifier.as_deref() == Some("BackoffClock") => {
            Some("BackoffClock::sleep")
        }
        _ => None,
    }
}

fn lint_l11(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    // fns containing a direct sink, with the sink's description + line
    let mut sink_in: Vec<Option<(&'static str, u32)>> = vec![None; ws.table.fns.len()];
    for (id, def) in ws.table.fns.iter().enumerate() {
        if def.item.is_test {
            continue;
        }
        for call in &def.item.calls {
            if let Some(kind) = sink_call(call) {
                sink_in[id] = Some((kind, call.line));
                break;
            }
        }
    }
    let targets: Vec<bool> = sink_in.iter().map(|s| s.is_some()).collect();
    let hops = ws.graph.next_hop_to(&targets);

    for def in ws.table.fns.iter() {
        if def.item.is_test {
            continue;
        }
        let owner = def.item.owner.as_deref();
        for call in &def.item.calls {
            if call.guards.is_empty() {
                continue;
            }
            if ws.allowed(&def.file, LintId::L11, call.line) {
                continue;
            }
            // direct sink under guard: L4 already covers send/recv in the
            // same body; transmit/sleep are L11's (dedupe drops overlap)
            let (blocking, witness) = if let Some(kind) = sink_call(call) {
                (
                    kind,
                    vec![format!(
                        "{}:{} {} (direct {kind})",
                        def.file,
                        call.line,
                        def.item.qual_name()
                    )],
                )
            } else {
                // does any resolved callee transitively block?
                let candidates = ws.table.resolve(
                    &call.callee,
                    call.qualifier.as_deref(),
                    call.is_method,
                    call.is_macro,
                    owner,
                );
                let Some(&start) = candidates.iter().find(|&&c| hops[c].is_some()) else {
                    continue;
                };
                let mut steps = vec![format!(
                    "{}:{} {}",
                    def.file,
                    call.line,
                    def.item.qual_name()
                )];
                let mut cur = start;
                let kind;
                loop {
                    let cdef = &ws.table.fns[cur];
                    match hops[cur] {
                        Some(Some((next, line))) => {
                            steps.push(format!(
                                "{}:{} {}",
                                cdef.file,
                                cdef.item.line,
                                cdef.item.qual_name()
                            ));
                            let _ = line;
                            cur = next;
                        }
                        _ => {
                            let (k, line) =
                                sink_in[cur].unwrap_or(("blocking call", cdef.item.line));
                            kind = k;
                            steps.push(format!(
                                "{}:{} {} ({k} at line {line})",
                                cdef.file,
                                cdef.item.line,
                                cdef.item.qual_name()
                            ));
                            break;
                        }
                    }
                }
                (kind, steps)
            };
            let held: Vec<String> = call
                .guards
                .iter()
                .map(|g| format!("`{}` (taken line {})", g.name, g.line))
                .collect();
            diags.push(ws.diag(
                LintId::L11,
                &def.file,
                call.line,
                format!(
                    "lock guard{} {} held across `{}` which reaches {blocking} — the lock \
                     blocks for the callee's full latency",
                    if held.len() == 1 { "" } else { "s" },
                    held.join(", "),
                    call.callee,
                ),
                "drop the guard before the blocking call (narrow scope / explicit drop()), \
                 or move the blocking work outside the critical section",
                witness,
            ));
        }
    }
}

// ---------------------------------------------------------------------
// L12: metrics drift between code and DESIGN.md
// ---------------------------------------------------------------------

/// A documented metric-name pattern: `.`-separated segments where a
/// segment is either a literal or a `<wildcard>`.
struct DocPattern {
    segments: Vec<String>,
    line: u32,
    /// Pattern text as written (post brace-expansion).
    text: String,
}

impl DocPattern {
    fn is_concrete(&self) -> bool {
        self.segments.iter().all(|s| !s.starts_with('<'))
    }

    fn matches(&self, name: &str) -> bool {
        let parts: Vec<&str> = name.split('.').collect();
        parts.len() == self.segments.len()
            && parts
                .iter()
                .zip(&self.segments)
                .all(|(p, s)| s.starts_with('<') || p == s)
    }
}

/// Extract documented metric patterns from the Observability section.
fn doc_patterns(design: &str) -> Vec<DocPattern> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in design.lines().enumerate() {
        if line.starts_with("## ") {
            in_section = line.contains("Observability");
            continue;
        }
        if !in_section {
            continue;
        }
        // backtick spans: odd-numbered chunks
        for (k, chunk) in line.split('`').enumerate() {
            if k % 2 == 0 {
                continue;
            }
            for name in expand_braces(chunk) {
                if !is_metric_shaped(&name) {
                    continue;
                }
                out.push(DocPattern {
                    segments: name.split('.').map(|s| s.to_string()).collect(),
                    line: idx as u32 + 1,
                    text: name,
                });
            }
        }
    }
    out
}

/// A candidate backtick span looks like a metric name: lowercase
/// dotted segments (wildcards allowed), no path/file noise.
fn is_metric_shaped(name: &str) -> bool {
    if !name.contains('.') || name.starts_with('.') || name.ends_with('.') {
        return false;
    }
    const FILE_EXTS: &[&str] = &[
        ".rs", ".json", ".sh", ".md", ".toml", ".yml", ".yaml", ".lock", ".txt",
    ];
    if FILE_EXTS.iter().any(|e| name.ends_with(e)) {
        return false;
    }
    name.chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || matches!(c, '.' | '_' | '<' | '>'))
        && name.split('.').all(|seg| !seg.is_empty())
}

/// Expand `a.{b,c}.d` brace sets (cartesian over multiple sets).
fn expand_braces(text: &str) -> Vec<String> {
    match (text.find('{'), text.find('}')) {
        (Some(open), Some(close)) if open < close => {
            let head = &text[..open];
            let tail = &text[close + 1..];
            text[open + 1..close]
                .split(',')
                .flat_map(|alt| expand_braces(&format!("{head}{}{tail}", alt.trim())))
                .collect()
        }
        _ => vec![text.to_string()],
    }
}

/// Run the metrics-drift check. `design_text` is `None` when the
/// workspace has no DESIGN.md (then there is no contract to drift from).
pub fn lint_l12(config: &LintConfig, ws: &Workspace) -> Vec<Diagnostic> {
    let design_path = config.root.join(&config.l12_design_doc);
    let Ok(design) = std::fs::read_to_string(&design_path) else {
        return Vec::new();
    };
    let patterns = doc_patterns(&design);
    if patterns.is_empty() {
        return Vec::new();
    }
    let mut diags = Vec::new();

    // recorded -> documented
    let mut recorded: BTreeMap<&str, (&str, &MetricSite)> = BTreeMap::new();
    for (file, site) in &ws.metric_sites {
        if site.in_test {
            continue;
        }
        recorded.entry(site.name.as_str()).or_insert((file, site));
    }
    for (name, (file, site)) in &recorded {
        if patterns.iter().any(|p| p.matches(name)) {
            continue;
        }
        if ws.allowed(file, LintId::L12, site.line) {
            continue;
        }
        diags.push(Diagnostic {
            id: LintId::L12,
            file: file.to_string(),
            line: site.line,
            signature: site.signature.clone(),
            message: format!(
                "metric `{name}` is recorded here but not documented in {}'s \
                 Observability section",
                config.l12_design_doc
            ),
            suggestion: "add the metric to the Observability table (or rename it to match \
                 a documented pattern) — undocumented metrics are invisible to operators"
                .to_string(),
            witness: Vec::new(),
        });
    }

    // documented -> recorded (concrete patterns only)
    let mut seen_doc: HashSet<&str> = HashSet::new();
    for p in &patterns {
        if !p.is_concrete() || !seen_doc.insert(p.text.as_str()) {
            continue;
        }
        if recorded.contains_key(p.text.as_str()) {
            continue;
        }
        let design_rel = config.l12_design_doc.clone();
        let line_text = design
            .lines()
            .nth(p.line as usize - 1)
            .unwrap_or("")
            .trim()
            .to_string();
        diags.push(Diagnostic {
            id: LintId::L12,
            file: design_rel,
            line: p.line,
            signature: format!("{} :: {}", p.text, normalize_ws(&line_text)),
            message: format!(
                "metric `{}` is documented in the Observability section but never \
                 recorded by any non-test code",
                p.text
            ),
            suggestion: "remove the dead entry, or wire the metric up in impliance-obs — \
                 documented-but-dead metrics break dashboards built on the contract"
                .to_string(),
            witness: Vec::new(),
        });
    }
    diags
}

fn normalize_ws(text: &str) -> String {
    let mut sig = String::with_capacity(text.len());
    let mut last_space = true;
    for c in text.chars() {
        if c.is_whitespace() {
            if !last_space {
                sig.push(' ');
            }
            last_space = true;
        } else {
            sig.push(c);
            last_space = false;
        }
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        )
    }

    fn config() -> LintConfig {
        LintConfig::impliance("/nonexistent")
    }

    #[test]
    fn l9_flags_reachable_panic_with_witness() {
        let w = ws(&[
            (
                "crates/core/src/appliance.rs",
                "impl Impliance { pub fn query(&self) -> u32 { shred(1) } }",
            ),
            (
                "crates/docmodel/src/shred.rs",
                r#"
                pub fn shred(x: u32) -> u32 { decode(x) }
                fn decode(x: u32) -> u32 { checked(x).unwrap() }
                pub fn orphan(x: Option<u32>) -> u32 { x.unwrap() }
                fn checked(x: u32) -> Option<u32> { Some(x) }
                "#,
            ),
        ]);
        let diags = lint_graph(&config(), &w);
        let l9: Vec<&Diagnostic> = diags.iter().filter(|d| d.id == LintId::L9).collect();
        assert_eq!(l9.len(), 1, "{l9:?}");
        assert_eq!(l9[0].file, "crates/docmodel/src/shred.rs");
        assert!(l9[0].message.contains("Impliance::query"));
        assert!(l9[0].witness.len() >= 3, "witness: {:?}", l9[0].witness);
        assert!(l9[0].witness[0].contains("Impliance::query"));
    }

    #[test]
    fn l9_respects_allow_and_test_code() {
        let w = ws(&[
            (
                "crates/core/src/appliance.rs",
                "impl Impliance { pub fn query(&self) -> u32 { shred(1) } }",
            ),
            (
                "crates/docmodel/src/shred.rs",
                r#"
                pub fn shred(x: u32) -> u32 {
                    // impliance-lint: allow(L9) checked above
                    checked(x).unwrap()
                }
                fn checked(x: u32) -> Option<u32> { Some(x) }
                #[cfg(test)]
                mod tests {
                    #[test]
                    fn t() { shred_helper().unwrap(); }
                }
                "#,
            ),
        ]);
        let diags = lint_graph(&config(), &w);
        assert!(diags.iter().all(|d| d.id != LintId::L9), "{diags:?}");
    }

    #[test]
    fn l10_flags_loop_allocations_in_operator_pull() {
        let w = ws(&[(
            "crates/query/src/myop.rs",
            r#"
            impl Operator for FilterOp {
                fn next_batch(&mut self) -> Option<Batch> {
                    let mut out = Vec::new();
                    for t in self.buf.iter() {
                        out.push(t.clone());
                        let s = format!("{t:?}");
                        keep(s);
                    }
                    Some(out)
                }
            }
            impl FilterOp {
                fn helper(&self) { for x in self.buf.iter() { x.clone(); } }
            }
            "#,
        )]);
        let diags = lint_graph(&config(), &w);
        let l10: Vec<&Diagnostic> = diags.iter().filter(|d| d.id == LintId::L10).collect();
        // clone + format! in next_batch loop; Vec::new outside the loop and
        // the non-next_batch helper stay silent
        assert_eq!(l10.len(), 2, "{l10:?}");
    }

    #[test]
    fn l10_applies_to_worker_files() {
        let w = ws(&[(
            "crates/query/src/parallel.rs",
            r#"
            pub fn worker_loop(pages: &[Page]) {
                while claim() {
                    let copy = pages.to_vec();
                    process(copy);
                }
            }
            "#,
        )]);
        let diags = lint_graph(&config(), &w);
        assert_eq!(
            diags.iter().filter(|d| d.id == LintId::L10).count(),
            1,
            "{diags:?}"
        );
    }

    #[test]
    fn l11_flags_guard_across_transitively_blocking_call() {
        let w = ws(&[(
            "crates/cluster/src/relay.rs",
            r#"
            impl Relay {
                pub fn push(&self) {
                    let g = self.state.lock();
                    self.flush_all();
                    drop(g);
                }
                fn flush_all(&self) { self.net.transmit(1, 2, 3); }
                pub fn safe(&self) {
                    let g = self.state.lock();
                    drop(g);
                    self.flush_all();
                }
            }
            "#,
        )]);
        let diags = lint_graph(&config(), &w);
        let l11: Vec<&Diagnostic> = diags.iter().filter(|d| d.id == LintId::L11).collect();
        assert_eq!(l11.len(), 1, "{l11:?}");
        assert!(l11[0].message.contains("`g`"));
        assert!(l11[0].message.contains("Network::transmit"));
        assert!(
            l11[0].witness.iter().any(|s| s.contains("flush_all")),
            "witness: {:?}",
            l11[0].witness
        );
    }

    #[test]
    fn l11_flags_direct_transmit_under_guard() {
        let w = ws(&[(
            "crates/cluster/src/relay.rs",
            r#"
            pub fn direct(net: &Network, state: &Mutex<u32>) {
                let g = state.lock();
                net.transmit(1, 2, 3);
                drop(g);
            }
            "#,
        )]);
        let diags = lint_graph(&config(), &w);
        assert_eq!(
            diags.iter().filter(|d| d.id == LintId::L11).count(),
            1,
            "{diags:?}"
        );
    }

    #[test]
    fn brace_expansion_and_matching() {
        let names = expand_braces("storage.{put,get}.{count,us}");
        assert_eq!(names.len(), 4);
        assert!(names.contains(&"storage.put.count".to_string()));
        let p = DocPattern {
            segments: vec![
                "query".into(),
                "op".into(),
                "<operator>".into(),
                "rows".into(),
            ],
            line: 1,
            text: "query.op.<operator>.rows".into(),
        };
        assert!(p.matches("query.op.scan.rows"));
        assert!(!p.matches("query.op.scan.us"));
        assert!(!p.is_concrete());
    }

    #[test]
    fn metric_shape_filter() {
        assert!(is_metric_shaped("storage.put.count"));
        assert!(is_metric_shaped("query.op.<operator>.us"));
        assert!(!is_metric_shaped("lint_baseline.json"));
        assert!(!is_metric_shaped("Snapshot::metrics_json()"));
        assert!(!is_metric_shaped("nodots"));
        assert!(!is_metric_shaped("Upper.case"));
    }
}

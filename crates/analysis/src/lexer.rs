//! A small self-contained Rust lexer for the invariant linter.
//!
//! The build environment is offline, so `syn` is unavailable; the lints in
//! this crate (L1-L4, see [`crate::lints`]) only need a token stream with
//! line numbers and comment awareness, which this ~300-line scanner
//! provides. It understands line/block comments (nested), string, raw
//! string, byte string, and char literals, lifetimes, numbers, identifiers
//! and punctuation — enough to never misread `".unwrap()"` inside a string
//! literal as a method call.

/// Kinds of lexical token the linter distinguishes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Any punctuation character (one token per char; `::` arrives as two).
    Punct,
    /// String / raw string / byte string / char literal.
    Literal,
    /// Numeric literal.
    Number,
    /// Lifetime (`'a`) — kept distinct so char literals are not confused.
    Lifetime,
}

/// One lexical token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Source text (single char for punctuation).
    pub text: String,
    /// 1-based line number.
    pub line: u32,
}

/// A comment with its 1-based line span, kept separately from the token
/// stream so lint-exemption markers (`impliance-lint: allow(Lx)`) can be
/// matched to the code lines they cover.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text including delimiters.
    pub text: String,
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line (equal to `line` for `//` comments).
    pub end_line: u32,
}

/// Lexer output: tokens plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize Rust source. Never fails: unterminated constructs consume to
/// end-of-input, which is the forgiving behaviour a linter wants.
pub fn lex(source: &str) -> Lexed {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($ch:expr) => {
            if $ch == '\n' {
                line += 1;
            }
        };
    }

    while i < bytes.len() {
        let c = bytes[i];

        // whitespace
        if c.is_whitespace() {
            bump_lines!(c);
            i += 1;
            continue;
        }

        // line comment
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            let start_line = line;
            let mut text = String::new();
            while i < bytes.len() && bytes[i] != '\n' {
                text.push(bytes[i]);
                i += 1;
            }
            out.comments.push(Comment {
                text,
                line: start_line,
                end_line: start_line,
            });
            continue;
        }

        // block comment (nested)
        if c == '/' && bytes.get(i + 1) == Some(&'*') {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    depth += 1;
                    text.push_str("/*");
                    i += 2;
                } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    text.push_str("*/");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump_lines!(bytes[i]);
                    text.push(bytes[i]);
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text,
                line: start_line,
                end_line: line,
            });
            continue;
        }

        // raw string / raw byte string: r"..", r#".."#, br#".."#
        if c == 'r' || c == 'b' {
            let mut j = i;
            if bytes[j] == 'b' && bytes.get(j + 1) == Some(&'r') {
                j += 1;
            }
            if bytes[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while bytes.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                if bytes.get(k) == Some(&'"') {
                    let start_line = line;
                    k += 1;
                    // scan to closing quote + hashes
                    'raw: while k < bytes.len() {
                        if bytes[k] == '"' {
                            let mut h = 0usize;
                            while bytes.get(k + 1 + h) == Some(&'#') {
                                h += 1;
                            }
                            if h >= hashes {
                                k += 1 + hashes;
                                break 'raw;
                            }
                        }
                        bump_lines!(bytes[k]);
                        k += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: bytes[i..k.min(bytes.len())].iter().collect(),
                        line: start_line,
                    });
                    i = k;
                    continue;
                }
            }
        }

        // byte string b".." handled via the string path below
        if c == 'b' && bytes.get(i + 1) == Some(&'"') {
            i += 1; // fall into string with leading quote; prefix dropped
        }

        // string literal
        if bytes[i] == '"' {
            let start_line = line;
            let mut text = String::from('"');
            i += 1;
            while i < bytes.len() {
                let ch = bytes[i];
                if ch == '\\' && i + 1 < bytes.len() {
                    text.push(ch);
                    text.push(bytes[i + 1]);
                    bump_lines!(bytes[i + 1]);
                    i += 2;
                    continue;
                }
                bump_lines!(ch);
                text.push(ch);
                i += 1;
                if ch == '"' {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text,
                line: start_line,
            });
            continue;
        }

        // lifetime or char literal
        if c == '\'' {
            // lifetime: 'ident not followed by closing quote
            let is_lifetime = match (bytes.get(i + 1), bytes.get(i + 2)) {
                (Some(c1), next) => (c1.is_alphabetic() || *c1 == '_') && next != Some(&'\''),
                _ => false,
            };
            if is_lifetime {
                let mut text = String::from('\'');
                i += 1;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    text.push(bytes[i]);
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line,
                });
                continue;
            }
            // char literal: '\n', 'x', '\u{..}'
            let start_line = line;
            let mut text = String::from('\'');
            i += 1;
            while i < bytes.len() {
                let ch = bytes[i];
                if ch == '\\' && i + 1 < bytes.len() {
                    text.push(ch);
                    text.push(bytes[i + 1]);
                    i += 2;
                    continue;
                }
                text.push(ch);
                i += 1;
                if ch == '\'' {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text,
                line: start_line,
            });
            continue;
        }

        // identifier / keyword
        if c.is_alphabetic() || c == '_' {
            let mut text = String::new();
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                text.push(bytes[i]);
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
            });
            continue;
        }

        // number (digits plus the usual suffix/underscore/dot soup)
        if c.is_ascii_digit() {
            let mut text = String::new();
            while i < bytes.len()
                && (bytes[i].is_alphanumeric()
                    || bytes[i] == '_'
                    || (bytes[i] == '.' && bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit())))
            {
                text.push(bytes[i]);
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text,
                line,
            });
            continue;
        }

        // punctuation: one char per token
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_method_calls() {
        let src = r#"let s = "call .unwrap() here"; s.len();"#;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"len".to_string()));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = r##"let s = r#"raw "quoted" .expect() text"#; x.expect("m");"##;
        let lexed = lex(src);
        let expects: Vec<_> = lexed.tokens.iter().filter(|t| t.text == "expect").collect();
        assert_eq!(expects.len(), 1, "only the real call survives");
    }

    #[test]
    fn comments_are_side_channel() {
        let src = "// impliance-lint: allow(L1)\nx.unwrap();\n/* block\ncomment */\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].end_line, 4);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.text == "unwrap" && t.line == 2));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lexed = lex(src);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            3
        );
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokenKind::Literal));
    }

    #[test]
    fn char_literals_ok() {
        let src = "let c = '\\n'; let q = '\"'; let z = 'z';";
        let lexed = lex(src);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            3
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n\nc";
        let lexed = lex(src);
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let src = "let s = \"line1\nline2\";\nafter";
        let lexed = lex(src);
        let after = lexed.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3);
    }
}

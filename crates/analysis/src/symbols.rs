//! Workspace symbol table: every parsed `fn` item, indexed for call
//! resolution.
//!
//! Resolution is name-based (there is no type checker):
//!
//! * `Qual::name(..)` resolves to fns whose impl owner or implemented
//!   trait is `Qual` (with `Self::name(..)` resolved against the calling
//!   fn's owner);
//! * `recv.name(..)` method calls resolve to **every** workspace method
//!   of that name — over-approximate, since the receiver type is unknown
//!   — except the [`AMBIENT_METHODS`] below;
//! * bare `name(..)` calls resolve to free fns of that name.
//!
//! `AMBIENT_METHODS` is the documented under-approximation: method names
//! that collide with ubiquitous std-container/Option/Result/iterator
//! methods. Resolving `map.get(..)` to every workspace `get` would wire
//! the call graph into a near-clique of false edges, so these names are
//! never resolved; a workspace method that shares one of these names is
//! invisible to the interprocedural lints (rename it or review manually).

use std::collections::HashMap;

use crate::parser::{FnItem, ParsedFile};

/// Method names never resolved because std defines them on types used
/// everywhere (see module docs). Includes the atomic/`Ordering` method
/// family (`load`, `store`, `fetch_add`, ...): counters are read under
/// locks all over the workspace, and resolving `x.load(..)` to a
/// workspace fn named `load` wires false blocking edges into L11.
pub const AMBIENT_METHODS: &[&str] = &[
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_str",
    "bytes",
    "chars",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "compare_exchange",
    "contains",
    "contains_key",
    "count",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "err",
    "extend",
    "fetch_add",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_or",
    "fetch_sub",
    "fetch_xor",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_init",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "load",
    "lock",
    "map",
    "map_err",
    "max",
    "min",
    "ne",
    "next",
    "ok",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "push",
    "push_str",
    "read",
    "recv",
    "recv_timeout",
    "remove",
    "replace",
    "retain",
    "rev",
    "send",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "splice",
    "split",
    "split_off",
    "starts_with",
    "ends_with",
    "store",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_recv",
    "try_send",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "windows",
    "with_capacity",
    "write",
    "zip",
];

/// A function's identity inside the table.
#[derive(Debug)]
pub struct FnDef {
    /// Workspace-relative file.
    pub file: String,
    /// The parsed item (name, owner, calls, ...).
    pub item: FnItem,
}

/// The whole-workspace function index.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All fns, in (sorted-file, source) order — indexes are stable and
    /// used as call-graph node ids.
    pub fns: Vec<FnDef>,
    /// bare name -> fn ids.
    by_name: HashMap<String, Vec<usize>>,
    /// `Owner::name` and `Trait::name` -> fn ids.
    by_qual: HashMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Build from parsed files (consumed; file order is preserved, so
    /// pass them sorted for deterministic node ids).
    pub fn build(files: Vec<ParsedFile>) -> SymbolTable {
        let mut table = SymbolTable::default();
        for file in files {
            for item in file.fns {
                let id = table.fns.len();
                table.by_name.entry(item.name.clone()).or_default().push(id);
                if let Some(owner) = &item.owner {
                    table
                        .by_qual
                        .entry(format!("{owner}::{}", item.name))
                        .or_default()
                        .push(id);
                }
                if let Some(trait_name) = &item.trait_name {
                    table
                        .by_qual
                        .entry(format!("{trait_name}::{}", item.name))
                        .or_default()
                        .push(id);
                }
                table.fns.push(FnDef {
                    file: file.path.clone(),
                    item,
                });
            }
        }
        table
    }

    /// Resolve a call to candidate fn ids. `caller_owner` resolves
    /// `Self::..` qualifiers.
    pub fn resolve(
        &self,
        callee: &str,
        qualifier: Option<&str>,
        is_method: bool,
        is_macro: bool,
        caller_owner: Option<&str>,
    ) -> &[usize] {
        if is_macro {
            return &[];
        }
        if let Some(q) = qualifier {
            let owner = if q == "Self" {
                match caller_owner {
                    Some(o) => o,
                    None => return &[],
                }
            } else {
                q
            };
            return self
                .by_qual
                .get(&format!("{owner}::{callee}"))
                .map(|v| v.as_slice())
                .unwrap_or(&[]);
        }
        if is_method {
            if AMBIENT_METHODS.contains(&callee) {
                return &[];
            }
            return self
                .by_name
                .get(callee)
                .map(|v| v.as_slice())
                .unwrap_or(&[]);
        }
        // bare call: free fns only
        match self.by_name.get(callee) {
            Some(ids) => {
                // filter to free fns lazily is awkward with slices; free
                // fns dominate bare-name hits in practice, so return all
                // and let callers tolerate the extra method candidates.
                ids.as_slice()
            }
            None => &[],
        }
    }

    /// Fn ids matching an entry-point spec.
    pub fn matching(
        &self,
        name: &str,
        owner: Option<&str>,
        trait_name: Option<&str>,
    ) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.item.name == name
                    && owner.is_none_or(|o| f.item.owner.as_deref() == Some(o))
                    && trait_name.is_none_or(|t| f.item.trait_name.as_deref() == Some(t))
            })
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn table(files: &[(&str, &str)]) -> SymbolTable {
        SymbolTable::build(
            files
                .iter()
                .map(|(path, src)| parse_file(path, src))
                .collect(),
        )
    }

    #[test]
    fn qualified_and_method_resolution() {
        let t = table(&[
            (
                "a.rs",
                r#"
                impl Network { pub fn transmit(&self) {} }
                impl Engine { pub fn scan_page(&self) {} }
                pub fn helper() {}
                "#,
            ),
            ("b.rs", "pub fn helper() {}"),
        ]);
        // Qual::name
        let ids = t.resolve("transmit", Some("Network"), false, false, None);
        assert_eq!(ids.len(), 1);
        assert_eq!(t.fns[ids[0]].item.qual_name(), "Network::transmit");
        // method call resolves by bare name
        let ids = t.resolve("scan_page", None, true, false, None);
        assert_eq!(ids.len(), 1);
        // ambient method names never resolve
        assert!(t.resolve("get", None, true, false, None).is_empty());
        // bare call: both helpers
        assert_eq!(t.resolve("helper", None, false, false, None).len(), 2);
    }

    #[test]
    fn self_qualifier_uses_caller_owner() {
        let t = table(&[(
            "a.rs",
            r#"
            impl Pool { fn make() {} fn run(&self) { Self::make(); } }
            impl Other { fn make() {} }
            "#,
        )]);
        let ids = t.resolve("make", Some("Self"), false, false, Some("Pool"));
        assert_eq!(ids.len(), 1);
        assert_eq!(t.fns[ids[0]].item.qual_name(), "Pool::make");
        assert!(t
            .resolve("make", Some("Self"), false, false, None)
            .is_empty());
    }

    #[test]
    fn entry_matching_by_trait() {
        let t = table(&[(
            "a.rs",
            r#"
            impl Operator for ScanOp { fn next_batch(&mut self) { pull(); } }
            impl ScanOp { fn next_batch_helper(&self) {} }
            impl Cursor { fn next_batch(&mut self) {} }
            "#,
        )]);
        let entries = t.matching("next_batch", None, Some("Operator"));
        assert_eq!(entries.len(), 1);
        assert_eq!(t.fns[entries[0]].item.owner.as_deref(), Some("ScanOp"));
    }
}

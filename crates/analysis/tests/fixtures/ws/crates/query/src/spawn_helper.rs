//! Fixture: exactly one L8 violation — a raw `std::thread::spawn` in
//! query execution code outside the morsel worker pool. The scoped
//! `s.spawn` below is the pool mechanism and must stay silent.

pub fn prefetch(pages: Vec<u64>) -> std::thread::JoinHandle<usize> {
    std::thread::spawn(move || pages.len())
}

pub fn pooled(workers: usize) {
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {});
        }
    });
}

//! Fixture: one deliberate L7 violation — an `.unwrap()` on a cluster
//! `submit_to` chain inside TEST code (L7 applies to tests too: chaos
//! schedules make these calls fail on purpose), plus the handled form
//! that must NOT be flagged. (Fixture sources are scanned, never
//! compiled.)

pub fn dispatch(rt: &Runtime, node: u32) -> Result<u64, ClusterError> {
    // handled chain: `?` propagates, nothing to flag
    let handle = rt.submit_to(node, 8, |_| 1u64)?;
    handle.join()
}

#[cfg(test)]
mod tests {
    #[test]
    fn scan_reaches_the_node() {
        let rt = Runtime::single();
        // L7: an injected fault turns this into a test panic
        let n = rt.submit_to(0, 8, |_| 1u64).unwrap();
        let _ = n;
    }
}

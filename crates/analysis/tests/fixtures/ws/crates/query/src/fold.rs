//! Fixture: a hot-loop allocation inside an `Operator::next_batch`
//! impl (L10). The identical clone in the non-operator helper and the
//! allocation outside the loop must stay silent.

pub struct FoldOp {
    buffered: Vec<String>,
}

impl Operator for FoldOp {
    fn next_batch(&mut self) -> Option<Vec<String>> {
        let mut out = Vec::new();
        for row in self.buffered.iter() {
            out.push(row.clone());
        }
        Some(out)
    }
}

impl FoldOp {
    pub fn snapshot(&self) -> Vec<String> {
        let mut out = Vec::new();
        for row in self.buffered.iter() {
            out.push(row.clone());
        }
        out
    }
}

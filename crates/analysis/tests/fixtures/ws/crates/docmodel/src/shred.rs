//! Fixture: a panic site reachable from `Impliance::query` (L9). The
//! docmodel crate is not in the L1 prefixes, so the intra-file lint
//! never sees this unwrap — only the call-graph walk does. The orphan
//! fn and the test module must stay silent.

pub fn decode_header(raw: &str) -> u32 {
    parse_magic(raw).unwrap()
}

fn parse_magic(raw: &str) -> Option<u32> {
    raw.bytes().next().map(u32::from)
}

pub fn orphan_helper(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(parse_magic("a").unwrap(), 97);
    }
}

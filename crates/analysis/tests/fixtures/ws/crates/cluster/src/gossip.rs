//! Fixture: a lock guard live across a call whose callee transitively
//! reaches `Network::transmit` (L11). The guard-free sibling and the
//! drop-before-call path must stay silent.

pub struct Gossiper {
    state: Mutex<u64>,
    net: Network,
}

impl Gossiper {
    pub fn broadcast(&self) {
        let guard = self.state.lock();
        self.flush_round(*guard);
        drop(guard);
    }

    pub fn broadcast_safely(&self) {
        let round = {
            let guard = self.state.lock();
            *guard
        };
        self.flush_round(round);
    }

    fn flush_round(&self, round: u64) {
        self.net.transmit(0, 1, round);
    }
}

//! Fixture: one deliberate violation each of L2, L3 and L4 in
//! simulation-deterministic cluster code. (Fixture sources are scanned,
//! never compiled; the lock API mimics parking_lot.)

use parking_lot::Mutex;
use std::sync::mpsc::Sender;
use std::time::Instant;

pub struct Relay {
    pub outbox: Sender<Vec<u8>>,
    pub log: Mutex<Vec<u64>>,
}

impl Relay {
    pub fn forward(&self, payload: Vec<u8>) {
        // L2: raw channel send with no Network::transmit charge in this fn
        let _ = self.outbox.send(payload);
    }

    pub fn stamp(&self) -> u64 {
        // L3: wall-clock read in deterministic cluster code
        let t = Instant::now();
        t.elapsed().as_nanos() as u64
    }

    pub fn log_and_forward(&self, payload: Vec<u8>, network: &Network) {
        network.transmit(0, 1, payload.len() as u64);
        let log = self.log.lock();
        let n = log.len() as u64;
        // L4: channel send while the `log` guard is still held
        let _ = self.outbox.send(payload);
        drop(log);
        let _ = n;
    }
}

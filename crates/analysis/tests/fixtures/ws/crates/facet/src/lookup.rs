//! Fixture: one direct index-search call outside the query pipeline
//! (L13). The test-module oracle call and the local definition stay
//! silent.

pub fn candidates(idx: &InvertedIndex, q: &str) -> Vec<u64> {
    // flagged: bypasses scoring, metering, and the freshness watermark
    let (hits, _stats, _matched) = search::search_topk(idx, q, 10);
    hits
}

/// Defining an entry point locally is not a call.
pub fn search_phrase(_idx: &InvertedIndex, _q: &str) -> Vec<u64> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_is_exempt() {
        let idx = InvertedIndex::default();
        let (_hits, _stats, _matched) = search::search_topk(&idx, "q", 5);
    }
}

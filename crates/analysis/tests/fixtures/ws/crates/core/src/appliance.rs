//! Fixture: the public entry point for the L9 reachability chain. The
//! panic site itself lives two hops away in the docmodel crate (outside
//! the L1 prefixes, so only the interprocedural lint can see it).

pub struct Impliance {
    version: u32,
}

impl Impliance {
    pub fn query(&self, raw: &str) -> u32 {
        shred_document(raw, self.version)
    }
}

pub fn shred_document(raw: &str, version: u32) -> u32 {
    decode_header(raw) + version
}

fn decode_header(raw: &str) -> u32 {
    raw.len() as u32
}

//! Fixture: one deliberate L1 violation in hot-path storage code, plus
//! negative cases (test module, allow comment) that must NOT be flagged.

pub fn lookup(map: &std::collections::HashMap<u32, String>, key: u32) -> String {
    map.get(&key).unwrap().clone() // L1: unwrap in hot-path library code
}

pub fn lookup_allowed(map: &std::collections::HashMap<u32, String>, key: u32) -> String {
    // impliance-lint: allow(L1)
    map.get(&key).unwrap().clone()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}

//! Fixture: metrics drift in both directions (L12). One recorded metric
//! is missing from DESIGN.md's Observability section; one documented
//! metric is never recorded. The documented + recorded pair and the
//! test-only recording must stay silent.

pub fn record_scan(obs: &Obs, docs: u64) {
    obs.counter("fixture.annotate.docs_scanned").add(docs);
    obs.counter("fixture.annotate.phantom_hits").add(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_metrics_are_exempt() {
        let obs = Obs::default();
        obs.counter("fixture.test_only.count").add(1);
    }
}

//! The fixture workspace under `tests/fixtures/ws` carries exactly one
//! deliberate violation per invariant; the scan over it is asserted both
//! structurally and against the golden JSON report.

use std::path::PathBuf;
use std::process::Command;

use impliance_analysis::report::parse_json;
use impliance_analysis::{lint_workspace, LintConfig, LintId};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

#[test]
fn fixture_trips_each_invariant_exactly_once() {
    let config = LintConfig::impliance(fixture_root());
    let diags = lint_workspace(&config).expect("fixture scan");
    let count = |id| diags.iter().filter(|d| d.id == id).count();
    assert_eq!(count(LintId::L1), 1, "diags: {diags:?}");
    assert_eq!(count(LintId::L2), 1, "diags: {diags:?}");
    assert_eq!(count(LintId::L3), 1, "diags: {diags:?}");
    assert_eq!(count(LintId::L4), 1, "diags: {diags:?}");
    assert_eq!(count(LintId::L7), 1, "diags: {diags:?}");
    assert_eq!(count(LintId::L8), 1, "diags: {diags:?}");
    assert_eq!(count(LintId::L9), 1, "diags: {diags:?}");
    assert_eq!(count(LintId::L10), 1, "diags: {diags:?}");
    assert_eq!(count(LintId::L11), 1, "diags: {diags:?}");
    assert_eq!(count(LintId::L12), 2, "diags: {diags:?}");
    assert_eq!(count(LintId::L13), 1, "diags: {diags:?}");

    // deterministic output contract: sorted by (file, line, lint id)
    let keys: Vec<(&str, u32, LintId)> = diags
        .iter()
        .map(|d| (d.file.as_str(), d.line, d.id))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "diagnostics are sorted");

    // negative cases: the allowed unwrap and the test-module unwrap are
    // not reported, so L1 has exactly the one flagged line
    let l1 = diags
        .iter()
        .find(|d| d.id == LintId::L1)
        .expect("an L1 diag");
    assert_eq!(l1.file, "crates/storage/src/hotpath.rs");
    assert_eq!(l1.line, 5);

    let l4 = diags
        .iter()
        .find(|d| d.id == LintId::L4)
        .expect("an L4 diag");
    assert!(
        l4.message.contains("`log`"),
        "L4 names the held guard: {}",
        l4.message
    );

    // L7 fires inside the #[cfg(test)] module — test code is NOT exempt —
    // while the handled `?` chain in the same file stays silent
    let l7 = diags
        .iter()
        .find(|d| d.id == LintId::L7)
        .expect("an L7 diag");
    assert_eq!(l7.file, "crates/query/src/dist.rs");
    assert!(
        l7.message.contains("`submit_to`"),
        "L7 names the chain root: {}",
        l7.message
    );

    // L8 fires on the raw spawn only; the scoped `s.spawn` in the same
    // file (the pool mechanism) stays silent
    let l8 = diags
        .iter()
        .find(|d| d.id == LintId::L8)
        .expect("an L8 diag");
    assert_eq!(l8.file, "crates/query/src/spawn_helper.rs");
    assert!(
        l8.signature.contains("thread::spawn"),
        "L8 anchors on the raw spawn: {}",
        l8.signature
    );

    // L9: the unwrap in the docmodel crate (outside the L1 prefixes) is
    // flagged at the panic site, with a witness path from the entry point
    let l9 = diags
        .iter()
        .find(|d| d.id == LintId::L9)
        .expect("an L9 diag");
    assert_eq!(l9.file, "crates/docmodel/src/shred.rs");
    assert!(
        l9.message.contains("Impliance::query"),
        "L9 names the entry point: {}",
        l9.message
    );
    assert!(
        l9.witness
            .first()
            .is_some_and(|s| s.contains("Impliance::query")),
        "witness starts at the entry: {:?}",
        l9.witness
    );
    assert!(
        l9.witness.last().is_some_and(|s| s.contains("unwrap")),
        "witness ends at the panic site: {:?}",
        l9.witness
    );

    // L10: the clone inside the operator pull loop only — the identical
    // clone in the non-operator helper stays silent
    let l10 = diags
        .iter()
        .find(|d| d.id == LintId::L10)
        .expect("an L10 diag");
    assert_eq!(l10.file, "crates/query/src/fold.rs");
    assert!(
        l10.message.contains("FoldOp::next_batch"),
        "L10 names the operator impl: {}",
        l10.message
    );

    // L11: the guard held across the transitively-blocking call, with a
    // witness walking down to the transmit sink
    let l11 = diags
        .iter()
        .find(|d| d.id == LintId::L11)
        .expect("an L11 diag");
    assert_eq!(l11.file, "crates/cluster/src/gossip.rs");
    assert!(
        l11.message.contains("`guard`") && l11.message.contains("Network::transmit"),
        "L11 names the guard and the sink: {}",
        l11.message
    );
    assert!(
        l11.witness.iter().any(|s| s.contains("flush_round")),
        "witness includes the intermediate callee: {:?}",
        l11.witness
    );

    // L12 fires in both directions: the undocumented recorded metric at
    // its call site, the dead documented metric at its DESIGN.md line
    let l12: Vec<_> = diags.iter().filter(|d| d.id == LintId::L12).collect();
    assert!(
        l12.iter()
            .any(|d| d.file == "crates/annotate/src/obs_hooks.rs"
                && d.message.contains("fixture.annotate.phantom_hits")),
        "undocumented recorded metric: {l12:?}"
    );
    assert!(
        l12.iter()
            .any(|d| d.file == "DESIGN.md" && d.message.contains("fixture.dead.gauge")),
        "documented-but-dead metric: {l12:?}"
    );

    // L13: the direct search_topk call only — the local definition and
    // the test-module oracle call in the same file stay silent
    let l13 = diags
        .iter()
        .find(|d| d.id == LintId::L13)
        .expect("an L13 diag");
    assert_eq!(l13.file, "crates/facet/src/lookup.rs");
    assert!(
        l13.message.contains("search_topk"),
        "L13 names the entry point: {}",
        l13.message
    );
}

#[test]
fn checker_binary_fails_on_fixture_with_golden_report() {
    let out_path = std::env::temp_dir().join(format!(
        "impliance-fixture-report-{}.json",
        std::process::id()
    ));
    let output = Command::new(env!("CARGO_BIN_EXE_impliance-analysis"))
        .args(["check", "--root"])
        .arg(fixture_root())
        .arg("--json-out")
        .arg(&out_path)
        .output()
        .expect("run checker binary");

    // non-zero exit: the fixture has no baseline, so all 12 findings are new
    assert_eq!(
        output.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    for id in [
        "[L1]", "[L2]", "[L3]", "[L4]", "[L7]", "[L8]", "[L9]", "[L10]", "[L11]", "[L12]", "[L13]",
    ] {
        assert!(stderr.contains(id), "stderr names {id}: {stderr}");
    }
    assert!(
        stderr.contains("witness:"),
        "interprocedural findings render their witness path: {stderr}"
    );

    // the JSON report matches the committed golden byte-for-byte (both are
    // produced by the same deterministic pretty-printer)
    let got = std::fs::read_to_string(&out_path).expect("report written");
    let golden = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden_report.json"),
    )
    .expect("golden present");
    assert_eq!(got, golden, "report drifted from tests/golden_report.json");
    let _ = std::fs::remove_file(&out_path);

    // and it parses back, with the serialized call graph and the witness
    // arrays for the interprocedural findings
    let doc = parse_json(&got).expect("valid json");
    let new = doc
        .get("totals")
        .and_then(|t| t.get("new"))
        .and_then(|n| n.as_f64());
    assert_eq!(new, Some(12.0));
    let nodes = doc
        .get("callgraph")
        .and_then(|g| g.get("nodes"))
        .and_then(|n| n.as_arr())
        .expect("callgraph.nodes");
    assert!(!nodes.is_empty(), "call graph has nodes");
    let edges = doc
        .get("callgraph")
        .and_then(|g| g.get("edges"))
        .and_then(|n| n.as_arr())
        .expect("callgraph.edges");
    assert!(!edges.is_empty(), "call graph has edges");
    let diags = doc
        .get("diagnostics")
        .and_then(|d| d.as_arr())
        .expect("diagnostics array");
    for want in ["L9", "L11"] {
        let with_witness = diags.iter().any(|d| {
            d.get("id").and_then(|i| i.as_str()) == Some(want)
                && d.get("witness")
                    .and_then(|w| w.as_arr())
                    .is_some_and(|w| !w.is_empty())
        });
        assert!(with_witness, "{want} finding carries a witness path");
    }
}

#[test]
fn update_baseline_then_check_is_clean() {
    // copy the fixture tree to a temp root so --update-baseline does not
    // touch the committed fixture
    let tmp = std::env::temp_dir().join(format!("impliance-fixture-ws-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    copy_tree(&fixture_root(), &tmp);

    let run = |extra: &[&str]| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_impliance-analysis"));
        cmd.args(["check", "--root"]).arg(&tmp).args(extra);
        cmd.output().expect("run checker binary")
    };

    assert_eq!(run(&[]).status.code(), Some(1), "dirty tree fails");
    assert_eq!(run(&["--update-baseline"]).status.code(), Some(0));
    let clean = run(&[]);
    assert_eq!(
        clean.status.code(),
        Some(0),
        "ratcheted tree passes; stderr: {}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let _ = std::fs::remove_dir_all(&tmp);
}

fn copy_tree(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).expect("mkdir");
    for entry in std::fs::read_dir(from).expect("readdir") {
        let entry = entry.expect("entry");
        let target = to.join(entry.file_name());
        if entry.file_type().expect("ftype").is_dir() {
            copy_tree(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).expect("copy");
        }
    }
}

//! Runtime lock-order detector tests. Debug builds only: release builds
//! compile the tracking away, so there is nothing to assert there.
#![cfg(debug_assertions)]

use impliance_analysis::{TrackedMutex, TrackedRwLock};

/// A->B in one place and B->A in another must panic, naming the cycle.
#[test]
fn ab_then_ba_inversion_panics_with_cycle() {
    static A: TrackedMutex<u32> = TrackedMutex::new("inv.a", 0);
    static B: TrackedMutex<u32> = TrackedMutex::new("inv.b", 0);

    {
        let _a = A.lock();
        let _b = B.lock(); // commits the order inv.a -> inv.b
    }

    let err = std::panic::catch_unwind(|| {
        let _b = B.lock();
        let _a = A.lock(); // inversion
    })
    .expect_err("B-then-A after A-then-B must panic");

    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".to_string());
    assert!(msg.contains("lock-order inversion"), "panic message: {msg}");
    assert!(
        msg.contains("inv.a") && msg.contains("inv.b"),
        "cycle named: {msg}"
    );
    assert!(
        msg.contains("inv.a -> inv.b -> inv.a"),
        "full cycle path: {msg}"
    );
}

/// Consistent nesting, repeated many times, never panics.
#[test]
fn consistent_order_is_accepted() {
    static OUTER: TrackedMutex<u32> = TrackedMutex::new("ok.outer", 0);
    static INNER: TrackedMutex<u32> = TrackedMutex::new("ok.inner", 0);

    for _ in 0..100 {
        let mut o = OUTER.lock();
        let mut i = INNER.lock();
        *o += 1;
        *i += 1;
    }
    assert_eq!(*OUTER.lock(), 100);
}

/// Read and write acquisitions of a TrackedRwLock share one graph node,
/// so a read/write inversion is caught like a write/write one.
#[test]
fn rwlock_read_write_inversion_panics() {
    static MAP: TrackedRwLock<u32> = TrackedRwLock::new("inv.map", 0);
    static LOG: TrackedMutex<u32> = TrackedMutex::new("inv.log", 0);

    {
        let _m = MAP.read();
        let _l = LOG.lock(); // commits inv.map -> inv.log
    }

    let err = std::panic::catch_unwind(|| {
        let _l = LOG.lock();
        let _m = MAP.write(); // inversion via the write side
    })
    .expect_err("write-after-log inversion must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".to_string());
    assert!(
        msg.contains("inv.map") && msg.contains("inv.log"),
        "cycle named: {msg}"
    );
}

/// Transitive inversion: A->B, B->C, then C->A closes a 3-cycle.
#[test]
fn transitive_cycle_is_detected() {
    static A: TrackedMutex<u32> = TrackedMutex::new("tri.a", 0);
    static B: TrackedMutex<u32> = TrackedMutex::new("tri.b", 0);
    static C: TrackedMutex<u32> = TrackedMutex::new("tri.c", 0);

    {
        let _a = A.lock();
        let _b = B.lock();
    }
    {
        let _b = B.lock();
        let _c = C.lock();
    }
    let err = std::panic::catch_unwind(|| {
        let _c = C.lock();
        let _a = A.lock();
    })
    .expect_err("closing the 3-cycle must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic".to_string());
    assert!(
        msg.contains("tri.a") && msg.contains("tri.b") && msg.contains("tri.c"),
        "3-cycle named: {msg}"
    );
}

/// After a guard is dropped, later acquisitions record no edge from it.
#[test]
fn sequential_acquisitions_record_no_order() {
    static X: TrackedMutex<u32> = TrackedMutex::new("seq.x", 0);
    static Y: TrackedMutex<u32> = TrackedMutex::new("seq.y", 0);

    {
        let _x = X.lock();
    } // dropped before Y
    {
        let _y = Y.lock();
    }
    // sequential use committed no order, so this nesting is legal...
    {
        let _y = Y.lock();
        let _x = X.lock();
    }
    // ...and only now is the opposite nesting an inversion
    let err = std::panic::catch_unwind(|| {
        let _x = X.lock();
        let _y = Y.lock();
    });
    assert!(err.is_err(), "y->x then x->y nesting is an inversion");
}

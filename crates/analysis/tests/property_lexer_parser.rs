//! Property battery for the lexer and the item parser: the analysis
//! front end must never panic on malformed input (it runs over whatever
//! is on disk, mid-edit), and every span it reports must be usable as a
//! diagnostic anchor (1-based, in-bounds, monotonically ordered).

use proptest::prelude::*;

use impliance_analysis::lexer::lex;
use impliance_analysis::parser::parse_file;

/// Upper bound on a 1-based line number in `source`.
fn max_line(source: &str) -> u32 {
    source.split('\n').count() as u32
}

/// Rust-ish fragment soup: tokens, openers without closers, unterminated
/// strings and comments, raw strings, lifetimes — glued in random order
/// so the lexer sees every unbalanced shape an editor buffer can hold.
fn rustish_soup() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("fn ".to_string()),
        Just("impl ".to_string()),
        Just("trait ".to_string()),
        Just("for ".to_string()),
        Just("let ".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just("\"unterminated".to_string()),
        Just("\"closed\"".to_string()),
        Just("r#\"raw".to_string()),
        Just("\"#".to_string()),
        Just("r##\"nested\"#\"##".to_string()),
        Just("// line comment\n".to_string()),
        Just("/* block".to_string()),
        Just("/* nested /* deeper */".to_string()),
        Just("*/".to_string()),
        Just("'a".to_string()),
        Just("'x'".to_string()),
        Just("'\\n'".to_string()),
        Just("::".to_string()),
        Just(".".to_string()),
        Just("!".to_string()),
        Just("#[cfg(test)]".to_string()),
        Just("=>".to_string()),
        Just("\n".to_string()),
        Just(" ".to_string()),
        Just("\t".to_string()),
        "[a-zA-Z_][a-zA-Z0-9_]{0,8}",
        "[0-9]{1,6}",
    ];
    proptest::collection::vec(fragment, 0..80).prop_map(|v| v.concat())
}

/// Arbitrary bytes forced into a string: exercises lossy-UTF-8
/// replacement chars and multi-byte boundaries.
fn byte_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..256)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

fn assert_lex_invariants(source: &str) {
    let lexed = lex(source);
    let bound = max_line(source);
    let mut prev = 1u32;
    for tok in &lexed.tokens {
        prop_assert!(
            !tok.text.is_empty(),
            "empty token text at line {}",
            tok.line
        );
        prop_assert!(
            tok.line >= 1 && tok.line <= bound,
            "token line {} out of 1..={bound} for {:?}",
            tok.line,
            tok.text
        );
        prop_assert!(
            tok.line >= prev,
            "token lines went backwards: {} after {prev}",
            tok.line
        );
        prev = tok.line;
    }
    let mut prev = 1u32;
    for c in &lexed.comments {
        prop_assert!(
            c.line >= 1 && c.end_line <= bound && c.line <= c.end_line,
            "comment span {}..{} out of 1..={bound}",
            c.line,
            c.end_line
        );
        prop_assert!(c.line >= prev, "comment lines went backwards");
        prev = c.line;
    }
}

fn assert_parse_invariants(source: &str) {
    let parsed = parse_file("soup.rs", source);
    let bound = max_line(source);
    for f in &parsed.fns {
        prop_assert!(!f.name.is_empty(), "fn with empty name");
        prop_assert!(
            f.line >= 1 && f.line <= bound,
            "fn {} line {} out of 1..={bound}",
            f.name,
            f.line
        );
        for call in &f.calls {
            prop_assert!(
                call.line >= 1 && call.line <= bound,
                "call {} line {} out of 1..={bound}",
                call.callee,
                call.line
            );
            prop_assert!(call.loop_depth < 64, "absurd loop depth");
            for g in &call.guards {
                prop_assert!(
                    g.line >= 1 && g.line <= bound && g.line <= call.line,
                    "guard {} span {} vs call at {}",
                    g.name,
                    g.line,
                    call.line
                );
            }
        }
    }
    for site in &parsed.metric_sites {
        prop_assert!(site.line >= 1 && site.line <= bound);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics_on_rustish_soup(src in rustish_soup()) {
        assert_lex_invariants(&src);
    }

    #[test]
    fn lexer_never_panics_on_byte_soup(src in byte_soup()) {
        assert_lex_invariants(&src);
    }

    #[test]
    fn parser_never_panics_on_rustish_soup(src in rustish_soup()) {
        assert_parse_invariants(&src);
    }

    #[test]
    fn parser_never_panics_on_byte_soup(src in byte_soup()) {
        assert_parse_invariants(&src);
    }

    #[test]
    fn generated_free_fns_roundtrip(names in proptest::collection::vec("[a-z][a-z0-9_]{0,8}", 1..12)) {
        // distinct, keyword-proof names
        let names: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(i, n)| format!("f_{i}_{n}"))
            .collect();
        let source: String = names
            .iter()
            .map(|n| format!("pub fn {n}(x: u32) -> u32 {{ helper_{n}(x) }}\n"))
            .collect();
        let parsed = parse_file("gen.rs", &source);
        prop_assert_eq!(parsed.fns.len(), names.len());
        for (f, want) in parsed.fns.iter().zip(&names) {
            prop_assert_eq!(&f.name, want);
            prop_assert!(f.owner.is_none());
            prop_assert_eq!(f.calls.len(), 1);
            prop_assert_eq!(&f.calls[0].callee, &format!("helper_{want}"));
        }
    }
}

// ---------------------------------------------------------------------
// parser fixtures: the shapes the heuristics must not trip over
// ---------------------------------------------------------------------

#[test]
fn fixture_nested_impls_inside_modules() {
    let src = r#"
        mod outer {
            pub struct A;
            impl A {
                pub fn top(&self) { helper(); }
            }
            mod inner {
                pub struct B<T>(T);
                impl<T: Clone> B<T> {
                    pub fn bottom(&self) -> T { self.0.clone() }
                }
            }
        }
    "#;
    let parsed = parse_file("nested.rs", src);
    let quals: Vec<String> = parsed.fns.iter().map(|f| f.qual_name()).collect();
    assert!(quals.contains(&"A::top".to_string()), "{quals:?}");
    assert!(quals.contains(&"B::bottom".to_string()), "{quals:?}");
}

#[test]
fn fixture_generic_impls_with_where_clauses() {
    let src = r#"
        impl<K: Ord, V> Store<K, V>
        where
            K: Clone + Send,
            V: Default,
        {
            pub fn fetch(&self, k: &K) -> Option<&V> { self.slots.get(k) }
        }
        impl<T> Operator for Wrap<T> where T: Iterator<Item = Vec<u8>> {
            fn next_batch(&mut self) -> Option<T::Item> { self.pull_inner() }
        }
    "#;
    let parsed = parse_file("generic.rs", src);
    let fetch = parsed
        .fns
        .iter()
        .find(|f| f.name == "fetch")
        .expect("fetch");
    assert_eq!(fetch.owner.as_deref(), Some("Store"));
    let nb = parsed
        .fns
        .iter()
        .find(|f| f.name == "next_batch")
        .expect("next_batch");
    assert_eq!(nb.owner.as_deref(), Some("Wrap"));
    assert_eq!(nb.trait_name.as_deref(), Some("Operator"));
}

#[test]
fn fixture_raw_string_bodies_do_not_derail_spans() {
    let src = "pub fn emit() -> String {\n    let tpl = r#\"fn fake() { bogus!(); }\"#;\n    render(tpl)\n}\npub fn after() { real(); }\n";
    let parsed = parse_file("raw.rs", src);
    assert_eq!(parsed.fns.len(), 2, "{:?}", parsed.fns);
    let emit = &parsed.fns[0];
    // the fn-shaped text inside the raw string is data, not code
    assert!(emit.calls.iter().all(|c| c.callee != "bogus"));
    assert!(emit.calls.iter().any(|c| c.callee == "render"));
    let after = &parsed.fns[1];
    assert_eq!(after.name, "after");
    assert_eq!(after.line, 5);
}

//! Multi-tenant workload management: admission control, quotas, bounded
//! queues, and graceful degradation under overload.
//!
//! §3.4 promises an appliance that schedules "prioritized tasks" and §4
//! promises a box that survives whatever traffic arrives — not just one
//! that parallelizes when idle. The [`WorkloadManager`] is the front
//! door that makes overload a *policy decision* instead of an accident:
//!
//! * **Per-tenant token buckets** — every tenant refills at its quota's
//!   rate up to a burst cap; a query costs one token. A tenant that
//!   exhausts its quota is shed with a precise retry-after hint, and
//!   cannot starve anyone else regardless of how hard it hammers.
//! * **Bounded per-tenant queues** — backlog per tenant is capped;
//!   arrivals beyond the cap are shed immediately (fast-fail) instead of
//!   queueing unboundedly and blowing every deadline at once.
//! * **Priority dispatch** — ready work drains `High` before `Normal`
//!   before `Low`, FIFO within a class, so overload degrades a
//!   predictable subset (the low classes) while response-time-sensitive
//!   tenants keep their latency.
//! * **Deadline-aware shedding** — when the expected wait already
//!   exceeds a query's deadline, the query is rejected *now* with
//!   [`ShedReason::DeadlineUnmeetable`] instead of timing out later;
//!   under concurrency pressure `Normal` work is admitted with a
//!   tightened budget (honest degraded answers via the engine's
//!   deadline/`Degraded` path) rather than rejected outright.
//!
//! All time is read through the injectable
//! [`impliance_query::clock::TimeSource`], so the workload simulator and
//! the proptest batteries drive hours of virtual traffic without burning
//! wall-clock.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use impliance_analysis::TrackedMutex;
use impliance_obs::{Counter, Gauge, Histogram, LATENCY_BUCKETS_US};
use impliance_query::clock::{default_time_source, TimeSource};
use impliance_query::Priority;

/// Identifier of a tenant (a customer, application, or workload class
/// sharing the appliance). Tenant `0` is the default tenant for requests
/// that never declared one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TenantId(pub u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Rate/backlog contract for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Sustained admission rate in queries per second (`0` = unlimited;
    /// the token bucket is skipped entirely).
    pub tokens_per_sec: u64,
    /// Burst capacity in queries: how far above the sustained rate a
    /// quiet tenant may spike.
    pub burst: u64,
    /// Bounded backlog: queued queries beyond this are shed immediately.
    pub queue_capacity: usize,
}

impl TenantQuota {
    /// A quota that never sheds on rate (the default-tenant contract for
    /// a box booted with no workload policy).
    pub fn unlimited() -> TenantQuota {
        TenantQuota {
            tokens_per_sec: 0,
            burst: 0,
            queue_capacity: usize::MAX,
        }
    }

    /// A rate-limited quota with a burst equal to one second of rate and
    /// a backlog bound of two seconds of rate.
    pub fn per_sec(rate: u64) -> TenantQuota {
        TenantQuota {
            tokens_per_sec: rate,
            burst: rate.max(1),
            queue_capacity: (rate as usize).saturating_mul(2).max(8),
        }
    }
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota::unlimited()
    }
}

/// Appliance-level workload policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Quota applied to tenants without an explicit [`TenantQuota`].
    pub default_quota: TenantQuota,
    /// Queries allowed to execute concurrently before overload handling
    /// starts (`0` = unlimited). `High` work is admitted past this limit
    /// and preempts at morsel granularity instead of waiting.
    pub max_concurrent: usize,
    /// Initial estimate of one query's service time, microseconds; the
    /// manager replaces it with a running average as permits retire.
    pub expected_service_us: u64,
    /// Budget floor for degraded admissions, microseconds: a `Normal`
    /// query admitted under pressure always gets at least this much.
    pub min_degraded_budget_us: u64,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            default_quota: TenantQuota::unlimited(),
            max_concurrent: 0,
            expected_service_us: 5_000,
            min_degraded_budget_us: 1_000,
        }
    }
}

/// Why a query was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's token bucket is empty (quota exhausted).
    TokensExhausted,
    /// The tenant's bounded queue is full.
    QueueFull,
    /// The expected wait already exceeds the query's deadline.
    DeadlineUnmeetable,
    /// The appliance is over its concurrency limit and this class is
    /// shed first.
    Overloaded,
}

impl ShedReason {
    /// Stable lower-snake name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            ShedReason::TokensExhausted => "tokens_exhausted",
            ShedReason::QueueFull => "queue_full",
            ShedReason::DeadlineUnmeetable => "deadline_unmeetable",
            ShedReason::Overloaded => "overloaded",
        }
    }
}

/// A rejected query: why, and when retrying is worthwhile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// The shed class.
    pub reason: ShedReason,
    /// Microseconds after which a retry has a realistic chance.
    pub retry_after_us: u64,
}

/// The outcome of a synchronous admission attempt.
#[derive(Debug)]
pub enum Admission {
    /// Run at full fidelity.
    Admitted(Permit),
    /// Run, but with a tightened budget (`Permit::budget_us`): the
    /// engine's deadline path turns it into an honest partial answer.
    Degraded(Permit),
    /// Rejected before any work was done.
    Shed(Shed),
}

/// Running-query registration. Dropping the permit releases the
/// concurrency slot and feeds the observed service time back into the
/// manager's wait estimator.
#[derive(Debug)]
pub struct Permit {
    shared: Arc<Shared>,
    tenant: TenantId,
    priority: Priority,
    started_us: u64,
    queue_wait_us: u64,
    budget_us: Option<u64>,
}

impl Permit {
    /// The tenant this permit was issued to.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The priority class it was admitted at.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Microseconds spent queued/waiting before execution could start.
    pub fn queue_wait_us(&self) -> u64 {
        self.queue_wait_us
    }

    /// Tightened execution budget for degraded admissions (`None` for
    /// full-fidelity admissions).
    pub fn budget_us(&self) -> Option<u64> {
        self.budget_us
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.shared.release(self.started_us);
    }
}

/// One queued query awaiting dispatch.
#[derive(Debug, Clone, Copy)]
struct QueuedTicket {
    tenant: TenantId,
    priority: Priority,
    enqueued_us: u64,
    deadline_us: Option<u64>,
}

#[derive(Debug, Default)]
struct Bucket {
    /// Micro-tokens (1 query = 1_000_000).
    micro: u64,
    last_refill_us: u64,
    initialized: bool,
}

const MICRO_PER_TOKEN: u64 = 1_000_000;

impl Bucket {
    /// Refill at `rate` tokens/sec up to `burst`, then try to take one
    /// token. On failure returns the microseconds until one token
    /// accumulates.
    fn take(&mut self, now_us: u64, rate: u64, burst: u64) -> Result<(), u64> {
        let cap = burst.max(1).saturating_mul(MICRO_PER_TOKEN);
        if !self.initialized {
            self.initialized = true;
            self.micro = cap;
            self.last_refill_us = now_us;
        }
        let dt = now_us.saturating_sub(self.last_refill_us);
        self.last_refill_us = now_us;
        self.micro = self.micro.saturating_add(rate.saturating_mul(dt)).min(cap);
        if self.micro >= MICRO_PER_TOKEN {
            self.micro -= MICRO_PER_TOKEN;
            Ok(())
        } else {
            let deficit = MICRO_PER_TOKEN - self.micro;
            Err(deficit.div_ceil(rate.max(1)))
        }
    }
}

/// Cumulative admission/shed/degrade accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Queries admitted at full fidelity.
    pub admitted: u64,
    /// Queries admitted with a tightened (degraded) budget.
    pub degraded: u64,
    /// Queries shed for quota exhaustion.
    pub shed_tokens: u64,
    /// Queries shed because the tenant's queue was full.
    pub shed_queue_full: u64,
    /// Queries shed because their deadline was already unmeetable.
    pub shed_deadline: u64,
    /// Queries shed by the concurrency overload policy.
    pub shed_overload: u64,
    /// Currently executing (outstanding permits).
    pub active: u64,
    /// Currently queued awaiting dispatch.
    pub queued: u64,
    /// Running mean service time, microseconds.
    pub mean_service_us: u64,
}

impl WorkloadStats {
    /// Total shed count across every reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_tokens + self.shed_queue_full + self.shed_deadline + self.shed_overload
    }
}

struct WorkloadObs {
    admitted: Arc<Counter>,
    degraded: Arc<Counter>,
    shed: Arc<Counter>,
    active: Arc<Gauge>,
    queued: Arc<Gauge>,
    queue_wait_us: Arc<Histogram>,
    tokens_denied: Arc<Counter>,
    queue_full: Arc<Counter>,
    deadline_shed: Arc<Counter>,
    overload_shed: Arc<Counter>,
}

fn workload_obs() -> &'static WorkloadObs {
    static OBS: OnceLock<WorkloadObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let m = impliance_obs::global().metrics();
        WorkloadObs {
            admitted: m.counter("workload.admitted"),
            degraded: m.counter("workload.degraded"),
            shed: m.counter("workload.shed"),
            active: m.gauge("workload.active"),
            queued: m.gauge("workload.queued"),
            queue_wait_us: m.histogram("workload.queue_wait_us", &LATENCY_BUCKETS_US),
            tokens_denied: m.counter("admission.tokens_denied"),
            queue_full: m.counter("admission.queue_full"),
            deadline_shed: m.counter("admission.deadline_shed"),
            overload_shed: m.counter("admission.overload_shed"),
        }
    })
}

#[derive(Debug, Default)]
struct State {
    buckets: BTreeMap<u64, Bucket>,
    quotas: BTreeMap<u64, TenantQuota>,
    queues: [VecDeque<QueuedTicket>; 3],
    queued_per_tenant: BTreeMap<u64, usize>,
    active: u64,
    stats: WorkloadStats,
}

struct Shared {
    state: TrackedMutex<State>,
    config: WorkloadConfig,
    time: Arc<dyn TimeSource>,
    /// EWMA of observed service times, microseconds (atomic so permit
    /// drops never contend with admission).
    mean_service_us: AtomicU64,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("config", &self.config)
            .finish()
    }
}

impl Shared {
    fn release(&self, started_us: u64) {
        let service = self.time.now_us().saturating_sub(started_us);
        // mean := (7*mean + sample) / 8 — cheap, monotone-stable EWMA.
        let prev = self.mean_service_us.load(Ordering::Relaxed);
        let next = (prev.saturating_mul(7).saturating_add(service)) / 8;
        self.mean_service_us.store(next.max(1), Ordering::Relaxed);
        let mut s = self.state.lock();
        s.active = s.active.saturating_sub(1);
        s.stats.active = s.active;
        s.stats.mean_service_us = next.max(1);
        workload_obs().active.set(s.active as i64);
    }
}

/// The per-appliance workload manager. See the module docs for the
/// policy; all entry points are non-blocking and panic-free.
#[derive(Debug)]
pub struct WorkloadManager {
    shared: Arc<Shared>,
}

impl WorkloadManager {
    /// A manager on the process-default time source.
    pub fn new(config: WorkloadConfig) -> WorkloadManager {
        WorkloadManager::with_time_source(config, default_time_source())
    }

    /// A manager reading time from an explicit source (tests and the
    /// workload simulator pass a `ManualTime`).
    pub fn with_time_source(config: WorkloadConfig, time: Arc<dyn TimeSource>) -> WorkloadManager {
        WorkloadManager {
            shared: Arc::new(Shared {
                state: TrackedMutex::new("virt.workload", State::default()),
                config,
                time,
                mean_service_us: AtomicU64::new(config.expected_service_us.max(1)),
            }),
        }
    }

    /// Override one tenant's quota (the default applies otherwise).
    pub fn set_quota(&self, tenant: TenantId, quota: TenantQuota) {
        self.shared.state.lock().quotas.insert(tenant.0, quota);
    }

    /// The effective quota for a tenant.
    pub fn quota_of(&self, tenant: TenantId) -> TenantQuota {
        self.shared
            .state
            .lock()
            .quotas
            .get(&tenant.0)
            .copied()
            .unwrap_or(self.shared.config.default_quota)
    }

    /// Cumulative accounting.
    pub fn stats(&self) -> WorkloadStats {
        self.shared.state.lock().stats
    }

    /// The manager's current estimate of one query's service time.
    pub fn mean_service_us(&self) -> u64 {
        self.shared.mean_service_us.load(Ordering::Relaxed)
    }

    fn permit(&self, t: QueuedTicket, queue_wait_us: u64, budget_us: Option<u64>) -> Permit {
        Permit {
            shared: Arc::clone(&self.shared),
            tenant: t.tenant,
            priority: t.priority,
            started_us: self.shared.time.now_us(),
            queue_wait_us,
            budget_us,
        }
    }

    /// Synchronous admission for a caller about to execute on its own
    /// thread (the appliance's `query()` path): token bucket, then the
    /// concurrency/overload policy. Never blocks; a `Shed` outcome comes
    /// back in microseconds with a retry-after hint.
    pub fn admit(
        &self,
        tenant: TenantId,
        priority: Priority,
        deadline_us: Option<u64>,
    ) -> Admission {
        let now = self.shared.time.now_us();
        let obs = workload_obs();
        let mean = self.mean_service_us();
        let cfg = self.shared.config;
        let mut s = self.shared.state.lock();
        let quota = s
            .quotas
            .get(&tenant.0)
            .copied()
            .unwrap_or(cfg.default_quota);
        if quota.tokens_per_sec > 0 {
            let bucket = s.buckets.entry(tenant.0).or_default();
            if let Err(wait_us) = bucket.take(now, quota.tokens_per_sec, quota.burst) {
                s.stats.shed_tokens += 1;
                obs.shed.inc();
                obs.tokens_denied.inc();
                return Admission::Shed(Shed {
                    reason: ShedReason::TokensExhausted,
                    retry_after_us: wait_us,
                });
            }
        }
        let over_by = if cfg.max_concurrent > 0 {
            (s.active + 1).saturating_sub(cfg.max_concurrent as u64)
        } else {
            0
        };
        let ticket = QueuedTicket {
            tenant,
            priority,
            enqueued_us: now,
            deadline_us,
        };
        if over_by == 0 || priority == Priority::High {
            s.active += 1;
            s.stats.active = s.active;
            s.stats.admitted += 1;
            obs.admitted.inc();
            obs.active.set(s.active as i64);
            obs.queue_wait_us.observe(0);
            drop(s);
            return Admission::Admitted(self.permit(ticket, 0, None));
        }
        // Over the concurrency limit: estimate the wait the backlog
        // implies and shed or degrade instead of queueing blindly.
        let expected_wait_us = over_by.saturating_mul(mean);
        if let Some(d) = deadline_us {
            if expected_wait_us >= d {
                s.stats.shed_deadline += 1;
                obs.shed.inc();
                obs.deadline_shed.inc();
                return Admission::Shed(Shed {
                    reason: ShedReason::DeadlineUnmeetable,
                    retry_after_us: expected_wait_us,
                });
            }
        }
        match priority {
            Priority::Low => {
                s.stats.shed_overload += 1;
                obs.shed.inc();
                obs.overload_shed.inc();
                Admission::Shed(Shed {
                    reason: ShedReason::Overloaded,
                    retry_after_us: expected_wait_us.max(mean),
                })
            }
            _ => {
                // Normal under pressure: admit with a tightened budget so
                // the engine returns an honest partial answer quickly.
                let budget = deadline_us
                    .unwrap_or(mean.saturating_mul(2))
                    .saturating_sub(expected_wait_us)
                    .max(cfg.min_degraded_budget_us);
                s.active += 1;
                s.stats.active = s.active;
                s.stats.degraded += 1;
                obs.degraded.inc();
                obs.active.set(s.active as i64);
                obs.queue_wait_us.observe(0);
                drop(s);
                Admission::Degraded(self.permit(ticket, 0, Some(budget)))
            }
        }
    }

    /// Queued admission for dispatch-style callers (the workload
    /// simulator and batch drivers): the token bucket and the bounded
    /// per-tenant queue apply; dispatch order is decided by
    /// [`WorkloadManager::next_ready`].
    pub fn submit(
        &self,
        tenant: TenantId,
        priority: Priority,
        deadline_us: Option<u64>,
    ) -> Result<(), Shed> {
        let now = self.shared.time.now_us();
        let obs = workload_obs();
        let mut s = self.shared.state.lock();
        let quota = s
            .quotas
            .get(&tenant.0)
            .copied()
            .unwrap_or(self.shared.config.default_quota);
        if quota.tokens_per_sec > 0 {
            let bucket = s.buckets.entry(tenant.0).or_default();
            if let Err(wait_us) = bucket.take(now, quota.tokens_per_sec, quota.burst) {
                s.stats.shed_tokens += 1;
                obs.shed.inc();
                obs.tokens_denied.inc();
                return Err(Shed {
                    reason: ShedReason::TokensExhausted,
                    retry_after_us: wait_us,
                });
            }
        }
        let queued = s.queued_per_tenant.get(&tenant.0).copied().unwrap_or(0);
        if queued >= quota.queue_capacity {
            let mean = self.mean_service_us();
            s.stats.shed_queue_full += 1;
            obs.shed.inc();
            obs.queue_full.inc();
            return Err(Shed {
                reason: ShedReason::QueueFull,
                retry_after_us: (queued as u64).saturating_mul(mean),
            });
        }
        let ticket = QueuedTicket {
            tenant,
            priority,
            enqueued_us: now,
            deadline_us,
        };
        s.queues[queue_index(priority)].push_back(ticket);
        *s.queued_per_tenant.entry(tenant.0).or_insert(0) += 1;
        s.stats.queued += 1;
        obs.queued.set(s.stats.queued as i64);
        Ok(())
    }

    /// Dispatch the next queued query: `High` before `Normal` before
    /// `Low`, FIFO within a class. Tickets whose deadline can no longer
    /// be met are shed here (counted, with the deadline reason) instead
    /// of being dispatched to fail — that is the "degrade a predictable
    /// subset" behavior under sustained overload. Returns `None` when
    /// nothing dispatchable is queued.
    pub fn next_ready(&self) -> Option<Permit> {
        let now = self.shared.time.now_us();
        let obs = workload_obs();
        let mut s = self.shared.state.lock();
        for qi in 0..3 {
            while let Some(t) = s.queues[qi].pop_front() {
                if let Some(n) = s.queued_per_tenant.get_mut(&t.tenant.0) {
                    *n = n.saturating_sub(1);
                }
                s.stats.queued = s.stats.queued.saturating_sub(1);
                obs.queued.set(s.stats.queued as i64);
                let wait = now.saturating_sub(t.enqueued_us);
                if let Some(d) = t.deadline_us {
                    if wait >= d {
                        s.stats.shed_deadline += 1;
                        obs.shed.inc();
                        obs.deadline_shed.inc();
                        continue;
                    }
                }
                s.active += 1;
                s.stats.active = s.active;
                s.stats.admitted += 1;
                obs.admitted.inc();
                obs.active.set(s.active as i64);
                obs.queue_wait_us.observe(wait);
                let budget = t.deadline_us.map(|d| d.saturating_sub(wait));
                drop(s);
                return Some(self.permit(t, wait, budget));
            }
        }
        None
    }
}

fn queue_index(priority: Priority) -> usize {
    match priority {
        Priority::High => 0,
        Priority::Normal => 1,
        Priority::Low => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impliance_query::clock::ManualTime;

    fn manager(config: WorkloadConfig) -> (WorkloadManager, Arc<ManualTime>) {
        let time = Arc::new(ManualTime::new());
        (
            WorkloadManager::with_time_source(config, time.clone()),
            time,
        )
    }

    #[test]
    fn default_policy_admits_everything() {
        let (wm, _) = manager(WorkloadConfig::default());
        for _ in 0..1000 {
            match wm.admit(TenantId(1), Priority::Normal, None) {
                Admission::Admitted(_) => {}
                other => panic!("unlimited policy must admit: {other:?}"),
            }
        }
        // permits dropped immediately, so nothing stays active
        assert_eq!(wm.stats().active, 0);
        assert_eq!(wm.stats().admitted, 1000);
    }

    #[test]
    fn token_bucket_sheds_and_refills() {
        let (wm, time) = manager(WorkloadConfig {
            default_quota: TenantQuota {
                tokens_per_sec: 10,
                burst: 2,
                queue_capacity: 8,
            },
            ..WorkloadConfig::default()
        });
        // burst of 2 admits, third sheds with a retry hint
        assert!(matches!(
            wm.admit(TenantId(7), Priority::Normal, None),
            Admission::Admitted(_)
        ));
        assert!(matches!(
            wm.admit(TenantId(7), Priority::Normal, None),
            Admission::Admitted(_)
        ));
        let Admission::Shed(shed) = wm.admit(TenantId(7), Priority::Normal, None) else {
            panic!("bucket must be empty");
        };
        assert_eq!(shed.reason, ShedReason::TokensExhausted);
        // 10 tokens/sec → one token accumulates in 100ms
        assert_eq!(shed.retry_after_us, 100_000);
        time.advance_us(shed.retry_after_us);
        assert!(matches!(
            wm.admit(TenantId(7), Priority::Normal, None),
            Admission::Admitted(_)
        ));
        // a different tenant has its own bucket
        assert!(matches!(
            wm.admit(TenantId(8), Priority::Normal, None),
            Admission::Admitted(_)
        ));
        assert_eq!(wm.stats().shed_tokens, 1);
    }

    #[test]
    fn concurrency_pressure_degrades_normal_sheds_low_admits_high() {
        let (wm, _) = manager(WorkloadConfig {
            max_concurrent: 2,
            ..WorkloadConfig::default()
        });
        let p1 = match wm.admit(TenantId(1), Priority::Normal, None) {
            Admission::Admitted(p) => p,
            other => panic!("{other:?}"),
        };
        let p2 = match wm.admit(TenantId(2), Priority::Normal, None) {
            Admission::Admitted(p) => p,
            other => panic!("{other:?}"),
        };
        // third Normal: degraded with a budget
        let p3 = match wm.admit(TenantId(3), Priority::Normal, None) {
            Admission::Degraded(p) => p,
            other => panic!("expected degraded: {other:?}"),
        };
        assert!(p3.budget_us().is_some());
        // Low: shed with a retry hint
        let Admission::Shed(shed) = wm.admit(TenantId(4), Priority::Low, None) else {
            panic!("low must shed under overload");
        };
        assert_eq!(shed.reason, ShedReason::Overloaded);
        assert!(shed.retry_after_us > 0);
        // High: admitted past the limit (morsel preemption handles it)
        let p4 = match wm.admit(TenantId(5), Priority::High, None) {
            Admission::Admitted(p) => p,
            other => panic!("high must be admitted: {other:?}"),
        };
        assert_eq!(wm.stats().active, 4);
        drop((p1, p2, p3, p4));
        assert_eq!(wm.stats().active, 0);
    }

    #[test]
    fn deadline_unmeetable_sheds_before_queueing() {
        let (wm, _) = manager(WorkloadConfig {
            max_concurrent: 1,
            expected_service_us: 50_000,
            ..WorkloadConfig::default()
        });
        let _p = match wm.admit(TenantId(1), Priority::Normal, None) {
            Admission::Admitted(p) => p,
            other => panic!("{other:?}"),
        };
        // expected wait = 1 * 50ms >= 10ms deadline → fast-fail
        let Admission::Shed(shed) = wm.admit(TenantId(2), Priority::Normal, Some(10_000)) else {
            panic!("unmeetable deadline must shed");
        };
        assert_eq!(shed.reason, ShedReason::DeadlineUnmeetable);
        assert!(shed.retry_after_us >= 50_000);
        assert_eq!(wm.stats().shed_deadline, 1);
    }

    #[test]
    fn bounded_queue_sheds_when_full() {
        let (wm, _) = manager(WorkloadConfig {
            default_quota: TenantQuota {
                tokens_per_sec: 0,
                burst: 0,
                queue_capacity: 2,
            },
            ..WorkloadConfig::default()
        });
        assert!(wm.submit(TenantId(1), Priority::Normal, None).is_ok());
        assert!(wm.submit(TenantId(1), Priority::Normal, None).is_ok());
        let shed = wm
            .submit(TenantId(1), Priority::Normal, None)
            .expect_err("queue bound must shed");
        assert_eq!(shed.reason, ShedReason::QueueFull);
        // other tenants queue independently
        assert!(wm.submit(TenantId(2), Priority::Normal, None).is_ok());
        assert_eq!(wm.stats().queued, 3);
    }

    #[test]
    fn dispatch_order_is_high_normal_low_fifo_within_class() {
        let (wm, _) = manager(WorkloadConfig::default());
        wm.submit(TenantId(1), Priority::Low, None).unwrap();
        wm.submit(TenantId(2), Priority::Normal, None).unwrap();
        wm.submit(TenantId(3), Priority::High, None).unwrap();
        wm.submit(TenantId(4), Priority::High, None).unwrap();
        wm.submit(TenantId(5), Priority::Normal, None).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| wm.next_ready())
            .map(|p| p.tenant().0)
            .collect();
        assert_eq!(order, vec![3, 4, 2, 5, 1]);
    }

    #[test]
    fn stale_tickets_are_shed_at_dispatch() {
        let (wm, time) = manager(WorkloadConfig::default());
        wm.submit(TenantId(1), Priority::Normal, Some(1_000))
            .unwrap();
        wm.submit(TenantId(2), Priority::Normal, Some(500_000))
            .unwrap();
        time.advance_us(10_000); // first ticket's 1ms deadline passed
        let p = wm.next_ready().expect("second ticket dispatches");
        assert_eq!(p.tenant(), TenantId(2));
        assert_eq!(p.queue_wait_us(), 10_000);
        assert_eq!(p.budget_us(), Some(490_000));
        assert_eq!(wm.stats().shed_deadline, 1);
        assert!(wm.next_ready().is_none());
    }

    #[test]
    fn service_time_feedback_updates_the_estimator() {
        let (wm, time) = manager(WorkloadConfig {
            expected_service_us: 8_000,
            ..WorkloadConfig::default()
        });
        for _ in 0..64 {
            let p = match wm.admit(TenantId(1), Priority::Normal, None) {
                Admission::Admitted(p) => p,
                other => panic!("{other:?}"),
            };
            time.advance_us(1_000); // every query "runs" 1ms
            drop(p);
        }
        let mean = wm.mean_service_us();
        assert!(
            (500..=2_000).contains(&mean),
            "EWMA should converge toward 1ms, got {mean}"
        );
    }
}

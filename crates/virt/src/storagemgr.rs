//! Storage management: replication policy, placement, and autonomous
//! repair.
//!
//! §3.4: "Storage management is the task of determining how and where to
//! store the system's data, including how much to replicate the data for
//! reliability. Some data, especially data users have added, will require
//! high reliability, and some will require the kind of regulatory
//! protection mandated by Sarbanes-Oxley. Other data can be re-created
//! with varying amounts of effort, such as data derived by analytics."
//!
//! The manager assigns a replication factor per data class, places
//! replicas on the consistent-hash ring, and when a node dies produces
//! (and accounts for) the re-replication plan that restores every
//! document's factor — with **no administrator involvement**, the paper's
//! zero-knobs goal.

use std::collections::{BTreeMap, HashMap};

use impliance_cluster::NodeId;
use impliance_docmodel::DocId;

use crate::ring::HashRing;

/// Reliability classes of stored data (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataClass {
    /// Data users added: high reliability.
    UserBase,
    /// Derived by analytics; can be re-created: cheap.
    Derived,
    /// Under regulatory retention: high reliability + write-once flag.
    Regulatory,
}

/// Replication policy per class.
#[derive(Debug, Clone)]
pub struct StoragePolicy {
    /// Replicas for user base data.
    pub user_base: usize,
    /// Replicas for derived data.
    pub derived: usize,
    /// Replicas for regulatory data.
    pub regulatory: usize,
}

impl Default for StoragePolicy {
    fn default() -> Self {
        StoragePolicy {
            user_base: 3,
            derived: 1,
            regulatory: 3,
        }
    }
}

impl StoragePolicy {
    /// Replication factor for a class.
    pub fn factor(&self, class: DataClass) -> usize {
        match class {
            DataClass::UserBase => self.user_base,
            DataClass::Derived => self.derived,
            DataClass::Regulatory => self.regulatory,
        }
    }
}

/// One re-replication action: copy `doc` from a surviving holder to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairAction {
    /// The under-replicated document.
    pub doc: DocId,
    /// A surviving replica to copy from.
    pub from: NodeId,
    /// The node that should receive a new replica.
    pub to: NodeId,
    /// Bytes to copy.
    pub bytes: u64,
}

/// Summary of a repair round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicationReport {
    /// Documents that were under-replicated.
    pub under_replicated: usize,
    /// Actions produced.
    pub actions: Vec<RepairAction>,
    /// Total bytes scheduled for copying.
    pub bytes_to_move: u64,
}

#[derive(Debug, Clone)]
struct DocMeta {
    class: DataClass,
    bytes: u64,
    replicas: Vec<NodeId>,
    /// Regulatory data is write-once (WORM); tracked for auditing.
    worm: bool,
}

/// The storage manager.
#[derive(Debug)]
pub struct StorageManager {
    policy: StoragePolicy,
    ring: HashRing,
    docs: HashMap<DocId, DocMeta>,
}

impl StorageManager {
    /// Create a manager over the given data nodes.
    pub fn new(policy: StoragePolicy, nodes: &[NodeId]) -> StorageManager {
        let mut ring = HashRing::new();
        for &n in nodes {
            ring.add_node(n);
        }
        StorageManager {
            policy,
            ring,
            docs: HashMap::new(),
        }
    }

    /// Current data nodes.
    pub fn nodes(&self) -> &[NodeId] {
        self.ring.nodes()
    }

    /// Place a new document: returns the replica set (primary first).
    pub fn place(&mut self, doc: DocId, class: DataClass, bytes: u64) -> Vec<NodeId> {
        let replicas = self.ring.placement(doc, self.policy.factor(class));
        self.docs.insert(
            doc,
            DocMeta {
                class,
                bytes,
                replicas: replicas.clone(),
                worm: class == DataClass::Regulatory,
            },
        );
        replicas
    }

    /// The replica set currently recorded for a document.
    pub fn replicas(&self, doc: DocId) -> Vec<NodeId> {
        self.docs
            .get(&doc)
            .map(|m| m.replicas.clone())
            .unwrap_or_default()
    }

    /// Whether the document is write-once (regulatory).
    pub fn is_worm(&self, doc: DocId) -> bool {
        self.docs.get(&doc).map(|m| m.worm).unwrap_or(false)
    }

    /// Per-node stored byte load (for balance diagnostics).
    pub fn node_load(&self) -> BTreeMap<NodeId, u64> {
        let mut out = BTreeMap::new();
        for m in self.docs.values() {
            for &n in &m.replicas {
                *out.entry(n).or_insert(0) += m.bytes;
            }
        }
        out
    }

    /// Handle a node failure: remove it from the ring and every replica
    /// set, then compute the repair plan restoring every affected
    /// document's factor. The plan is applied to the metadata immediately
    /// (the actual byte copies are the caller's job — experiment C5 times
    /// them through the simulated network).
    pub fn node_failed(&mut self, node: NodeId) -> ReplicationReport {
        self.ring.remove_node(node);
        let mut report = ReplicationReport::default();
        let doc_ids: Vec<DocId> = self.docs.keys().copied().collect();
        for id in doc_ids {
            let meta = self.docs.get_mut(&id).expect("doc exists");
            if !meta.replicas.contains(&node) {
                continue;
            }
            meta.replicas.retain(|n| *n != node);
            let want = self.policy.factor(meta.class);
            if meta.replicas.len() >= want {
                continue;
            }
            report.under_replicated += 1;
            // survivors to copy from; if none, data is lost (derived data
            // with factor 1) — recorded as an action-less entry
            let Some(&from) = meta.replicas.first() else {
                continue;
            };
            // candidate targets: ring placement minus current holders
            let candidates = self.ring.placement(id, want + meta.replicas.len());
            for cand in candidates {
                if meta.replicas.len() >= want {
                    break;
                }
                if !meta.replicas.contains(&cand) {
                    meta.replicas.push(cand);
                    report.actions.push(RepairAction {
                        doc: id,
                        from,
                        to: cand,
                        bytes: meta.bytes,
                    });
                    report.bytes_to_move += meta.bytes;
                }
            }
        }
        report
    }

    /// Add a new node to the ring (future placements use it; existing
    /// replicas stay put — rebalancing is lazy, like real systems).
    pub fn node_added(&mut self, node: NodeId) {
        self.ring.add_node(node);
    }

    /// Count of documents whose replica sets currently satisfy policy.
    pub fn fully_replicated(&self) -> usize {
        self.docs
            .values()
            .filter(|m| m.replicas.len() >= self.policy.factor(m.class))
            .count()
    }

    /// Total tracked documents.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn placement_respects_class_factors() {
        let mut m = StorageManager::new(StoragePolicy::default(), &nodes(5));
        let user = m.place(DocId(1), DataClass::UserBase, 100);
        let derived = m.place(DocId(2), DataClass::Derived, 100);
        let reg = m.place(DocId(3), DataClass::Regulatory, 100);
        assert_eq!(user.len(), 3);
        assert_eq!(derived.len(), 1);
        assert_eq!(reg.len(), 3);
        assert!(m.is_worm(DocId(3)));
        assert!(!m.is_worm(DocId(1)));
    }

    #[test]
    fn failure_triggers_repair_restoring_factor() {
        let mut m = StorageManager::new(StoragePolicy::default(), &nodes(6));
        for i in 0..200u64 {
            m.place(DocId(i), DataClass::UserBase, 50);
        }
        assert_eq!(m.fully_replicated(), 200);
        let victim = NodeId(2);
        let report = m.node_failed(victim);
        assert!(
            report.under_replicated > 0,
            "some docs must have lived on node 2"
        );
        assert_eq!(report.actions.len(), report.under_replicated);
        assert_eq!(report.bytes_to_move, report.actions.len() as u64 * 50);
        // after repair, everything is back to factor 3 and nothing
        // references the dead node
        assert_eq!(m.fully_replicated(), 200);
        for i in 0..200u64 {
            assert!(!m.replicas(DocId(i)).contains(&victim));
        }
    }

    #[test]
    fn derived_data_with_single_replica_can_be_lost() {
        let mut m = StorageManager::new(StoragePolicy::default(), &nodes(3));
        for i in 0..50u64 {
            m.place(DocId(i), DataClass::Derived, 10);
        }
        let victim = m.replicas(DocId(0))[0];
        let report = m.node_failed(victim);
        // docs whose only replica was the victim get no repair actions
        let lost = 50 - m.fully_replicated();
        assert!(lost > 0, "some derived docs should be lost");
        assert!(report.actions.len() < report.under_replicated + lost);
    }

    #[test]
    fn repair_targets_are_alive_and_distinct() {
        let mut m = StorageManager::new(StoragePolicy::default(), &nodes(5));
        for i in 0..100u64 {
            m.place(DocId(i), DataClass::UserBase, 10);
        }
        let report = m.node_failed(NodeId(0));
        for a in &report.actions {
            assert_ne!(a.to, NodeId(0));
            assert_ne!(a.from, NodeId(0));
            assert_ne!(a.from, a.to);
        }
    }

    #[test]
    fn node_load_tracks_bytes() {
        let mut m = StorageManager::new(StoragePolicy::default(), &nodes(4));
        for i in 0..100u64 {
            m.place(DocId(i), DataClass::UserBase, 10);
        }
        let load = m.node_load();
        let total: u64 = load.values().sum();
        assert_eq!(total, 100 * 10 * 3, "3 replicas of 10 bytes each");
        // reasonably balanced across 4 nodes
        for (_, l) in load {
            assert!(l > 300, "load {l}");
        }
    }

    #[test]
    fn added_node_used_for_future_placements() {
        let mut m = StorageManager::new(StoragePolicy::default(), &nodes(3));
        m.node_added(NodeId(9));
        let mut seen = false;
        for i in 0..200u64 {
            if m.place(DocId(i), DataClass::UserBase, 1)
                .contains(&NodeId(9))
            {
                seen = true;
                break;
            }
        }
        assert!(seen, "new node should receive some placements");
    }

    #[test]
    fn cascading_failures_still_converge() {
        let mut m = StorageManager::new(StoragePolicy::default(), &nodes(6));
        for i in 0..100u64 {
            m.place(DocId(i), DataClass::UserBase, 10);
        }
        m.node_failed(NodeId(0));
        m.node_failed(NodeId(1));
        m.node_failed(NodeId(2));
        // 3 nodes remain = factor, all docs should be fully replicated
        assert_eq!(m.fully_replicated(), 100);
        assert_eq!(m.nodes().len(), 3);
    }
}

//! Resource groups, the group hierarchy, and the broker.
//!
//! §3.4: "At the bottom of the hierarchy are resource groups that provide
//! a pool of compute and storage resources … Higher in the hierarchy are
//! components that perform macro-level scheduling of jobs to resource
//! groups, as well as components that act as brokers for facilitating the
//! transfer of resources between groups. For example, when a group reports
//! the failure or loss of a resource, it can contact a broker to help it
//! acquire resources from some other group that is willing to relinquish
//! them."

use std::collections::{BTreeMap, BTreeSet};

use impliance_cluster::NodeId;

/// Identifier of a resource group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// The service role a group is assigned (§3.3's three flavors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupRole {
    /// Data storage service.
    DataStorage,
    /// Grid (analytic compute) service.
    Grid,
    /// Cluster (consistency) service.
    Cluster,
}

/// A group of tightly-coupled nodes serving one role.
#[derive(Debug, Clone)]
pub struct ResourceGroup {
    /// Group identity.
    pub id: GroupId,
    /// Assigned role.
    pub role: GroupRole,
    /// Member nodes.
    pub members: BTreeSet<NodeId>,
    /// Minimum members the group's service level requires.
    pub min_members: usize,
    /// Parent group in the hierarchy (`None` for the root region).
    pub parent: Option<GroupId>,
}

impl ResourceGroup {
    /// Spare nodes beyond the service-level minimum.
    pub fn surplus(&self) -> usize {
        self.members.len().saturating_sub(self.min_members)
    }

    /// Shortfall below the service-level minimum.
    pub fn deficit(&self) -> usize {
        self.min_members.saturating_sub(self.members.len())
    }
}

/// The set of all resource groups (the hierarchy) plus the broker state.
#[derive(Debug, Default)]
pub struct ResourcePool {
    groups: BTreeMap<GroupId, ResourceGroup>,
}

/// A transfer the broker decided: move `node` from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Donor group.
    pub from: GroupId,
    /// Receiving group.
    pub to: GroupId,
    /// The node moved.
    pub node: NodeId,
}

impl ResourcePool {
    /// An empty pool.
    pub fn new() -> ResourcePool {
        ResourcePool::default()
    }

    /// Register a group.
    pub fn add_group(&mut self, group: ResourceGroup) {
        self.groups.insert(group.id, group);
    }

    /// Look up a group.
    pub fn group(&self, id: GroupId) -> Option<&ResourceGroup> {
        self.groups.get(&id)
    }

    /// All groups, ascending by id.
    pub fn groups(&self) -> impl Iterator<Item = &ResourceGroup> {
        self.groups.values()
    }

    /// Which group a node currently belongs to.
    pub fn group_of(&self, node: NodeId) -> Option<GroupId> {
        self.groups
            .values()
            .find(|g| g.members.contains(&node))
            .map(|g| g.id)
    }

    /// Remove a failed node wherever it is. Returns its former group.
    pub fn remove_node(&mut self, node: NodeId) -> Option<GroupId> {
        for g in self.groups.values_mut() {
            if g.members.remove(&node) {
                return Some(g.id);
            }
        }
        None
    }

    /// Add a brand-new node to the group that needs it most (largest
    /// deficit; ties to the smallest group). Returns the chosen group.
    /// This is §3.4's "when new compute or storage resources are added,
    /// brokers offer these resources to the groups that will make best use
    /// of them."
    pub fn offer_node(&mut self, node: NodeId) -> Option<GroupId> {
        let target = self
            .groups
            .values()
            .max_by_key(|g| (g.deficit(), std::cmp::Reverse(g.members.len())))
            .map(|g| g.id)?;
        self.groups.get_mut(&target).map(|g| {
            g.members.insert(node);
            g.id
        })
    }

    /// Apply a transfer decided by the broker.
    fn apply(&mut self, t: Transfer) {
        if let Some(from) = self.groups.get_mut(&t.from) {
            from.members.remove(&t.node);
        }
        if let Some(to) = self.groups.get_mut(&t.to) {
            to.members.insert(t.node);
        }
    }
}

/// The broker: balances groups against their service levels.
#[derive(Debug, Default)]
pub struct Broker;

impl Broker {
    /// Create a broker.
    pub fn new() -> Broker {
        Broker
    }

    /// Plan and apply transfers so that no group with a deficit coexists
    /// with a group holding surplus. Donors are chosen by largest surplus.
    /// Returns the transfers performed, in order.
    pub fn rebalance(&self, pool: &mut ResourcePool) -> Vec<Transfer> {
        let mut transfers = Vec::new();
        loop {
            let needy = pool
                .groups()
                .filter(|g| g.deficit() > 0)
                .max_by_key(|g| g.deficit())
                .map(|g| g.id);
            let Some(needy) = needy else { break };
            let donor = pool
                .groups()
                .filter(|g| g.surplus() > 0 && g.id != needy)
                .max_by_key(|g| g.surplus())
                .map(|g| g.id);
            let Some(donor) = donor else { break };
            // take the highest-id node (stable, deterministic choice)
            let node = match pool.group(donor).and_then(|g| g.members.iter().next_back()) {
                Some(n) => *n,
                None => break,
            };
            let t = Transfer {
                from: donor,
                to: needy,
                node,
            };
            pool.apply(t);
            transfers.push(t);
        }
        transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(id: u32, role: GroupRole, members: &[u32], min: usize) -> ResourceGroup {
        ResourceGroup {
            id: GroupId(id),
            role,
            members: members.iter().map(|&i| NodeId(i)).collect(),
            min_members: min,
            parent: None,
        }
    }

    fn pool() -> ResourcePool {
        let mut p = ResourcePool::new();
        p.add_group(group(1, GroupRole::DataStorage, &[1, 2, 3], 3));
        p.add_group(group(2, GroupRole::Grid, &[10, 11, 12, 13], 2));
        p.add_group(group(3, GroupRole::Cluster, &[20], 1));
        p
    }

    #[test]
    fn surplus_and_deficit() {
        let p = pool();
        assert_eq!(p.group(GroupId(1)).unwrap().surplus(), 0);
        assert_eq!(p.group(GroupId(2)).unwrap().surplus(), 2);
        assert_eq!(p.group(GroupId(3)).unwrap().deficit(), 0);
    }

    #[test]
    fn group_of_and_remove() {
        let mut p = pool();
        assert_eq!(p.group_of(NodeId(11)), Some(GroupId(2)));
        assert_eq!(p.remove_node(NodeId(11)), Some(GroupId(2)));
        assert_eq!(p.group_of(NodeId(11)), None);
        assert_eq!(p.remove_node(NodeId(99)), None);
    }

    #[test]
    fn broker_fills_deficit_from_surplus() {
        let mut p = pool();
        // kill two data nodes → deficit 2
        p.remove_node(NodeId(2));
        p.remove_node(NodeId(3));
        let transfers = Broker::new().rebalance(&mut p);
        assert_eq!(transfers.len(), 2);
        assert!(transfers
            .iter()
            .all(|t| t.from == GroupId(2) && t.to == GroupId(1)));
        assert_eq!(p.group(GroupId(1)).unwrap().members.len(), 3);
        assert_eq!(p.group(GroupId(2)).unwrap().members.len(), 2);
        // grid group never dips below its own minimum
        assert_eq!(p.group(GroupId(2)).unwrap().deficit(), 0);
    }

    #[test]
    fn broker_stops_when_no_donor_has_surplus() {
        let mut p = ResourcePool::new();
        p.add_group(group(1, GroupRole::DataStorage, &[1], 3));
        p.add_group(group(2, GroupRole::Grid, &[10, 11], 2));
        let transfers = Broker::new().rebalance(&mut p);
        assert!(transfers.is_empty(), "no group can donate: {transfers:?}");
        assert_eq!(p.group(GroupId(1)).unwrap().deficit(), 2);
    }

    #[test]
    fn offer_node_goes_to_neediest_group() {
        let mut p = pool();
        p.remove_node(NodeId(1));
        p.remove_node(NodeId(2)); // data group deficit 2
        let target = p.offer_node(NodeId(50)).unwrap();
        assert_eq!(target, GroupId(1));
        // with no deficit anywhere, smallest group gets the node
        let mut p2 = pool();
        let target2 = p2.offer_node(NodeId(51)).unwrap();
        assert_eq!(target2, GroupId(3), "cluster group is smallest");
    }

    #[test]
    fn rebalance_is_deterministic() {
        let run = || {
            let mut p = pool();
            p.remove_node(NodeId(3));
            Broker::new().rebalance(&mut p)
        };
        assert_eq!(run(), run());
    }
}

//! Consistent-hash ring for replica placement.
//!
//! Documents are placed on data nodes by hashing their id onto a ring of
//! virtual nodes. Adding or removing a physical node relocates only the
//! keys in its arc — the property that lets Impliance "seamlessly and
//! scalably expand" (§1) without mass data reshuffling.

use std::collections::BTreeMap;

use impliance_cluster::NodeId;
use impliance_docmodel::DocId;

/// Virtual nodes per physical node; more vnodes → smoother balance.
const VNODES: u32 = 64;

fn hash64(x: u64) -> u64 {
    // splitmix64 finalizer
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring over data nodes.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    /// ring position → physical node
    ring: BTreeMap<u64, NodeId>,
    nodes: Vec<NodeId>,
}

impl HashRing {
    /// An empty ring.
    pub fn new() -> HashRing {
        HashRing::default()
    }

    /// Add a node (idempotent).
    pub fn add_node(&mut self, node: NodeId) {
        if self.nodes.contains(&node) {
            return;
        }
        self.nodes.push(node);
        self.nodes.sort_unstable();
        for v in 0..VNODES {
            let pos = hash64((u64::from(node.0) << 32) | u64::from(v));
            self.ring.insert(pos, node);
        }
    }

    /// Remove a node and its virtual nodes.
    pub fn remove_node(&mut self, node: NodeId) {
        self.nodes.retain(|n| *n != node);
        self.ring.retain(|_, n| *n != node);
    }

    /// Nodes currently on the ring, ascending.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The `replicas` distinct nodes responsible for a document, primary
    /// first. Returns fewer when the ring has fewer nodes.
    pub fn placement(&self, id: DocId, replicas: usize) -> Vec<NodeId> {
        if self.ring.is_empty() || replicas == 0 {
            return Vec::new();
        }
        let start = hash64(id.0);
        let mut out = Vec::with_capacity(replicas);
        for (_, node) in self.ring.range(start..).chain(self.ring.range(..start)) {
            if !out.contains(node) {
                out.push(*node);
                if out.len() == replicas {
                    break;
                }
            }
        }
        out
    }

    /// Primary owner of a document.
    pub fn primary(&self, id: DocId) -> Option<NodeId> {
        self.placement(id, 1).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(n: u32) -> HashRing {
        let mut r = HashRing::new();
        for i in 0..n {
            r.add_node(NodeId(i));
        }
        r
    }

    #[test]
    fn placement_is_deterministic_and_distinct() {
        let r = ring_of(5);
        for i in 0..100u64 {
            let p1 = r.placement(DocId(i), 3);
            let p2 = r.placement(DocId(i), 3);
            assert_eq!(p1, p2);
            assert_eq!(p1.len(), 3);
            let mut dedup = p1.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replicas must be distinct nodes");
        }
    }

    #[test]
    fn placement_capped_by_ring_size() {
        let r = ring_of(2);
        assert_eq!(r.placement(DocId(1), 3).len(), 2);
        assert!(HashRing::new().placement(DocId(1), 3).is_empty());
    }

    #[test]
    fn balance_is_reasonable() {
        let r = ring_of(4);
        let mut counts = std::collections::HashMap::new();
        for i in 0..4000u64 {
            let p = r.primary(DocId(i)).unwrap();
            *counts.entry(p).or_insert(0u32) += 1;
        }
        for (_, c) in counts {
            assert!(c > 500 && c < 2000, "unbalanced: {c}");
        }
    }

    #[test]
    fn removal_only_moves_owned_keys() {
        let r1 = ring_of(5);
        let mut r2 = ring_of(5);
        r2.remove_node(NodeId(3));
        let mut moved = 0;
        let total = 2000u64;
        for i in 0..total {
            let p1 = r1.primary(DocId(i)).unwrap();
            let p2 = r2.primary(DocId(i)).unwrap();
            if p1 != p2 {
                // only keys previously owned by node 3 may move
                assert_eq!(p1, NodeId(3), "key {i} moved from a surviving node");
                moved += 1;
            }
        }
        // ~1/5 of keys should move
        assert!(
            moved > (total / 10) as i32 && moved < (total / 3) as i32,
            "moved {moved}"
        );
    }

    #[test]
    fn add_node_is_idempotent() {
        let mut r = ring_of(3);
        let before = r.ring.len();
        r.add_node(NodeId(1));
        assert_eq!(r.ring.len(), before);
        assert_eq!(r.nodes().len(), 3);
    }

    #[test]
    fn failover_placement_promotes_next_replica() {
        let mut r = ring_of(5);
        let id = DocId(42);
        let before = r.placement(id, 3);
        r.remove_node(before[0]);
        let after = r.placement(id, 3);
        // old second replica becomes primary
        assert_eq!(after[0], before[1]);
        assert_eq!(after.len(), 3);
    }
}

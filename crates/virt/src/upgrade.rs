//! Rolling software upgrades (§3.1).
//!
//! "Impliance software upgrades are automatically pushed to the nodes and
//! installed automatically according to user-modifiable policies that
//! balance the performance and availability impact of doing the upgrade
//! with the hope for security and reliability gains."
//!
//! The planner turns a node inventory into an ordered sequence of
//! batches. A batch never takes down more nodes of one kind than the
//! policy's availability floor allows, so the appliance keeps answering
//! queries throughout the rollout.

use std::collections::BTreeMap;

use impliance_cluster::{NodeId, NodeKind};

/// The user-modifiable policy balancing speed against availability.
#[derive(Debug, Clone)]
pub struct UpgradePolicy {
    /// Maximum nodes upgraded simultaneously per batch.
    pub batch_size: usize,
    /// Minimum nodes of each kind that must stay up during any batch.
    pub min_available: BTreeMap<&'static str, usize>,
}

impl Default for UpgradePolicy {
    fn default() -> Self {
        UpgradePolicy {
            batch_size: 2,
            min_available: BTreeMap::from([("data", 1), ("grid", 1), ("cluster", 2)]),
        }
    }
}

/// One step of the rollout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpgradeBatch {
    /// Nodes taken down, upgraded, and restarted together.
    pub nodes: Vec<NodeId>,
}

/// A complete rollout plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpgradePlan {
    /// Batches in execution order.
    pub batches: Vec<UpgradeBatch>,
    /// The version being rolled out.
    pub to_version: String,
}

/// Errors from planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpgradeError {
    /// The policy's availability floor cannot be met for a node kind —
    /// e.g. only one data node exists but one must stay up while it
    /// upgrades.
    CannotMaintainAvailability(&'static str),
}

impl std::fmt::Display for UpgradeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpgradeError::CannotMaintainAvailability(kind) => {
                write!(
                    f,
                    "cannot upgrade {kind} nodes while keeping the availability floor"
                )
            }
        }
    }
}

impl std::error::Error for UpgradeError {}

/// Plan a rolling upgrade over the given nodes. Nodes are grouped by
/// kind; each kind is upgraded in batches bounded both by `batch_size`
/// and by its availability floor.
pub fn plan_rolling_upgrade(
    nodes: &[(NodeId, NodeKind)],
    policy: &UpgradePolicy,
    to_version: &str,
) -> Result<UpgradePlan, UpgradeError> {
    let mut by_kind: BTreeMap<&'static str, Vec<NodeId>> = BTreeMap::new();
    for (id, kind) in nodes {
        by_kind.entry(kind.name()).or_default().push(*id);
    }
    let mut batches = Vec::new();
    for (kind, mut ids) in by_kind {
        ids.sort_unstable();
        let floor = policy.min_available.get(kind).copied().unwrap_or(0);
        let total = ids.len();
        if total <= floor && total > 0 {
            return Err(UpgradeError::CannotMaintainAvailability(match kind {
                "data" => "data",
                "grid" => "grid",
                _ => "cluster",
            }));
        }
        // at most (total - floor) nodes of this kind may be down at once
        let max_down = (total - floor).max(1);
        let step = policy.batch_size.min(max_down).max(1);
        for chunk in ids.chunks(step) {
            batches.push(UpgradeBatch {
                nodes: chunk.to_vec(),
            });
        }
    }
    Ok(UpgradePlan {
        batches,
        to_version: to_version.to_string(),
    })
}

/// Verify a plan against its policy (used by tests and by the executor
/// before applying): no batch exceeds the size bound or violates a
/// per-kind availability floor.
pub fn validate_plan(
    plan: &UpgradePlan,
    nodes: &[(NodeId, NodeKind)],
    policy: &UpgradePolicy,
) -> bool {
    let count_of_kind = |kind: &str| nodes.iter().filter(|(_, k)| k.name() == kind).count();
    for batch in &plan.batches {
        if batch.nodes.is_empty() {
            return false;
        }
        // per-kind down-count within the batch
        let mut down: BTreeMap<&'static str, usize> = BTreeMap::new();
        for id in &batch.nodes {
            if let Some((_, kind)) = nodes.iter().find(|(n, _)| n == id) {
                *down.entry(kind.name()).or_default() += 1;
            } else {
                return false; // unknown node
            }
        }
        for (kind, n_down) in down {
            let floor = policy.min_available.get(kind).copied().unwrap_or(0);
            if count_of_kind(kind).saturating_sub(n_down) < floor {
                return false;
            }
        }
    }
    // every node appears exactly once
    let mut seen: Vec<NodeId> = plan.batches.iter().flat_map(|b| b.nodes.clone()).collect();
    seen.sort_unstable();
    let mut all: Vec<NodeId> = nodes.iter().map(|(n, _)| *n).collect();
    all.sort_unstable();
    seen == all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(data: u32, grid: u32, cluster_n: u32) -> Vec<(NodeId, NodeKind)> {
        let mut out = Vec::new();
        for i in 0..data {
            out.push((NodeId(i), NodeKind::Data));
        }
        for i in 0..grid {
            out.push((NodeId(100 + i), NodeKind::Grid));
        }
        for i in 0..cluster_n {
            out.push((NodeId(200 + i), NodeKind::Cluster));
        }
        out
    }

    #[test]
    fn plan_covers_every_node_once_and_validates() {
        let nodes = cluster(4, 3, 3);
        let policy = UpgradePolicy::default();
        let plan = plan_rolling_upgrade(&nodes, &policy, "2.0").unwrap();
        assert!(validate_plan(&plan, &nodes, &policy), "{plan:?}");
        assert_eq!(plan.to_version, "2.0");
    }

    #[test]
    fn availability_floor_limits_batch_width() {
        // 3 cluster nodes with floor 2 → only 1 may be down at a time
        let nodes = cluster(0, 0, 3);
        let policy = UpgradePolicy::default();
        let plan = plan_rolling_upgrade(&nodes, &policy, "2.0").unwrap();
        assert_eq!(
            plan.batches.len(),
            3,
            "one cluster node per batch: {plan:?}"
        );
        assert!(validate_plan(&plan, &nodes, &policy));
    }

    #[test]
    fn single_node_kind_cannot_upgrade_under_floor() {
        let nodes = cluster(1, 0, 0);
        let policy = UpgradePolicy::default(); // data floor 1
        assert_eq!(
            plan_rolling_upgrade(&nodes, &policy, "2.0"),
            Err(UpgradeError::CannotMaintainAvailability("data"))
        );
    }

    #[test]
    fn batch_size_respected_when_floor_allows() {
        let nodes = cluster(8, 0, 0);
        let policy = UpgradePolicy {
            batch_size: 3,
            min_available: BTreeMap::from([("data", 2)]),
        };
        let plan = plan_rolling_upgrade(&nodes, &policy, "2.0").unwrap();
        assert!(plan.batches.iter().all(|b| b.nodes.len() <= 3));
        assert!(validate_plan(&plan, &nodes, &policy));
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let nodes = cluster(2, 0, 0);
        let policy = UpgradePolicy::default();
        // both data nodes in one batch with floor 1 → invalid
        let bad = UpgradePlan {
            batches: vec![UpgradeBatch {
                nodes: vec![NodeId(0), NodeId(1)],
            }],
            to_version: "x".into(),
        };
        assert!(!validate_plan(&bad, &nodes, &policy));
        // a plan that misses a node → invalid
        let partial = UpgradePlan {
            batches: vec![UpgradeBatch {
                nodes: vec![NodeId(0)],
            }],
            to_version: "x".into(),
        };
        assert!(!validate_plan(&partial, &nodes, &policy));
    }
}

//! # Impliance compute and storage resource virtualization
//!
//! §3.4: "Impliance will virtualize this diverse set of compute and
//! storage resources by introducing the notion of a resource group: a
//! group of tightly-coupled nodes … that can be assigned the role of
//! cluster, grid, or data storage service … we organize and manage these
//! resource groups in a hierarchical fashion."
//!
//! * [`ring`] — consistent-hash placement of documents/replicas onto data
//!   nodes, so adding or removing a node moves only its share of data.
//! * [`resource`] — resource groups, the group hierarchy, and the broker
//!   that "facilitates the transfer of resources between groups" on
//!   failure or load imbalance.
//! * [`execmgr`] — execution management: "scheduling prioritized tasks,
//!   i.e., managing queues of long-running analysis tasks and properly
//!   interleaving these analysis tasks with the execution of queries with
//!   more stringent response-time requirements."
//! * [`upgrade`] — §3.1's rolling software upgrades: availability-aware
//!   batch planning so the appliance keeps serving while nodes restart.
//! * [`storagemgr`] — storage management: per-class replication policy
//!   (user data vs. derived data vs. regulatory data), placement, and
//!   autonomous re-replication after node loss (experiment C5).
//! * [`workload`] — multi-tenant workload management: per-tenant token
//!   buckets, bounded queues, priority dispatch, and deadline-aware load
//!   shedding, so 2x offered load degrades a predictable subset instead
//!   of everything at once.
//! * [`traffic`] — seeded open-loop workload generator and virtual-time
//!   simulator (thousands of clients, zipfian tenant skew) for overload
//!   experiments that burn no wall-clock.

pub mod execmgr;
pub mod resource;
pub mod ring;
pub mod storagemgr;
pub mod traffic;
pub mod upgrade;
pub mod workload;

pub use execmgr::{ExecutionManager, TaskClass, TaskTicket};
pub use resource::{Broker, GroupId, GroupRole, ResourceGroup, ResourcePool};
pub use ring::HashRing;
pub use storagemgr::{DataClass, ReplicationReport, StorageManager, StoragePolicy};
pub use traffic::{class_index, class_of, ClassReport, TrafficReport, TrafficSpec};
pub use upgrade::{plan_rolling_upgrade, validate_plan, UpgradeError, UpgradePlan, UpgradePolicy};
pub use workload::{
    Admission, Permit, Shed, ShedReason, TenantId, TenantQuota, WorkloadConfig, WorkloadManager,
    WorkloadStats,
};

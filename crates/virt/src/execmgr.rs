//! Execution management: interleaving interactive queries with background
//! analysis.
//!
//! §3.4: "Execution management also includes scheduling prioritized tasks,
//! i.e., managing queues of long-running analysis tasks and properly
//! interleaving these analysis tasks with the execution of queries with
//! more stringent response-time requirements."
//!
//! The manager keeps two queues. Interactive work always preempts, but a
//! configurable background share guarantees discovery never starves: out
//! of every `window` dispatches, at least `background_share` go to
//! background tasks when any are waiting.
//!
//! Time is read from an injectable
//! [`impliance_query::clock::TimeSource`] — production managers use the
//! process default (monotonic microseconds), tests and simulations inject
//! a `ManualTime` and drive hours of virtual scheduling instantly.

use std::collections::VecDeque;
use std::sync::Arc;

use impliance_analysis::TrackedMutex;
use impliance_query::clock::{default_time_source, TimeSource};

/// Task priority classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskClass {
    /// Response-time-sensitive query work.
    Interactive,
    /// Long-running analysis/discovery work.
    Background,
}

/// A queued unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskTicket {
    /// Caller-assigned identifier.
    pub id: u64,
    /// Priority class.
    pub class: TaskClass,
    /// Enqueue time in microseconds, read from the manager's time source.
    pub enqueued_at: u64,
}

#[derive(Debug, Default)]
struct Queues {
    interactive: VecDeque<TaskTicket>,
    background: VecDeque<TaskTicket>,
    dispatched_in_window: u32,
    background_in_window: u32,
    /// (count, total wait) per class for reporting
    interactive_waits: (u64, u64),
    background_waits: (u64, u64),
}

/// The execution manager.
#[derive(Debug)]
pub struct ExecutionManager {
    queues: TrackedMutex<Queues>,
    /// Dispatch window size.
    window: u32,
    /// Guaranteed background dispatches per window (when backlogged).
    background_share: u32,
    /// Where enqueue/dispatch timestamps come from.
    time: Arc<dyn TimeSource>,
}

impl ExecutionManager {
    /// Create a manager guaranteeing `background_share` of every `window`
    /// dispatches to background work, on the process-default time source.
    pub fn new(window: u32, background_share: u32) -> ExecutionManager {
        ExecutionManager::with_time_source(window, background_share, default_time_source())
    }

    /// Same, but reading time from an explicit source (tests inject a
    /// `ManualTime`).
    pub fn with_time_source(
        window: u32,
        background_share: u32,
        time: Arc<dyn TimeSource>,
    ) -> ExecutionManager {
        ExecutionManager {
            queues: TrackedMutex::new("virt.exec_queues", Queues::default()),
            window: window.max(1),
            background_share: background_share.min(window),
            time,
        }
    }

    /// Enqueue a task, stamped with the time source's current reading.
    pub fn submit(&self, id: u64, class: TaskClass) {
        let now = self.time.now_us();
        let mut q = self.queues.lock();
        let ticket = TaskTicket {
            id,
            class,
            enqueued_at: now,
        };
        match class {
            TaskClass::Interactive => q.interactive.push_back(ticket),
            TaskClass::Background => q.background.push_back(ticket),
        }
    }

    /// Pending counts `(interactive, background)`.
    pub fn pending(&self) -> (usize, usize) {
        let q = self.queues.lock();
        (q.interactive.len(), q.background.len())
    }

    /// Dispatch the next task according to the interleaving policy. Wait
    /// accounting uses the manager's time source.
    pub fn next(&self) -> Option<TaskTicket> {
        let now = self.time.now_us();
        let mut q = self.queues.lock();
        if q.dispatched_in_window >= self.window {
            q.dispatched_in_window = 0;
            q.background_in_window = 0;
        }
        let remaining = self.window - q.dispatched_in_window;
        let bg_owed = self.background_share.saturating_sub(q.background_in_window);
        // Take background when it is owed its share and the window could
        // not otherwise satisfy it, or when no interactive work waits.
        let take_background =
            !q.background.is_empty() && (q.interactive.is_empty() || bg_owed >= remaining);
        let ticket = if take_background {
            q.background_in_window += 1;
            q.background.pop_front()
        } else {
            q.interactive.pop_front().or_else(|| {
                q.background_in_window += 1;
                q.background.pop_front()
            })
        }?;
        q.dispatched_in_window += 1;
        let wait = now.saturating_sub(ticket.enqueued_at);
        match ticket.class {
            TaskClass::Interactive => {
                q.interactive_waits.0 += 1;
                q.interactive_waits.1 += wait;
            }
            TaskClass::Background => {
                q.background_waits.0 += 1;
                q.background_waits.1 += wait;
            }
        }
        Some(ticket)
    }

    /// Mean wait `(interactive, background)` over everything dispatched.
    pub fn mean_waits(&self) -> (f64, f64) {
        let q = self.queues.lock();
        let mean = |(n, total): (u64, u64)| if n == 0 { 0.0 } else { total as f64 / n as f64 };
        (mean(q.interactive_waits), mean(q.background_waits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impliance_query::clock::ManualTime;

    fn manager(window: u32, share: u32) -> (ExecutionManager, Arc<ManualTime>) {
        let time = Arc::new(ManualTime::new());
        (
            ExecutionManager::with_time_source(window, share, time.clone()),
            time,
        )
    }

    #[test]
    fn interactive_preempts_background() {
        let (m, _) = manager(10, 2);
        m.submit(1, TaskClass::Background);
        m.submit(2, TaskClass::Interactive);
        m.submit(3, TaskClass::Interactive);
        assert_eq!(m.next().unwrap().id, 2);
        assert_eq!(m.next().unwrap().id, 3);
        assert_eq!(m.next().unwrap().id, 1);
        assert!(m.next().is_none());
    }

    #[test]
    fn background_never_starves() {
        let (m, time) = manager(4, 1);
        m.submit(100, TaskClass::Background);
        // continuous interactive arrivals
        let mut background_ran_at = None;
        for i in 0..16u64 {
            m.submit(i, TaskClass::Interactive);
            time.advance_us(1);
            let t = m.next().unwrap();
            if t.class == TaskClass::Background {
                background_ran_at = Some(i);
                break;
            }
        }
        assert!(
            background_ran_at.is_some(),
            "background task must run within a few windows despite interactive load"
        );
        assert!(background_ran_at.unwrap() <= 8);
    }

    #[test]
    fn background_share_bounded() {
        let (m, _) = manager(4, 1);
        for i in 0..8 {
            m.submit(i, TaskClass::Background);
            m.submit(100 + i, TaskClass::Interactive);
        }
        let mut bg = 0;
        let mut ia = 0;
        for _ in 0..8 {
            match m.next().unwrap().class {
                TaskClass::Background => bg += 1,
                TaskClass::Interactive => ia += 1,
            }
        }
        assert!(ia >= 6, "interactive should dominate: ia={ia} bg={bg}");
        assert!(bg >= 1, "background must get its share: ia={ia} bg={bg}");
    }

    #[test]
    fn wait_accounting_uses_time_source() {
        let (m, time) = manager(10, 2);
        m.submit(1, TaskClass::Interactive);
        m.submit(2, TaskClass::Background);
        time.advance_us(5);
        m.next(); // interactive waited 5
        time.advance_us(4);
        m.next(); // background waited 9
        let (iw, bw) = m.mean_waits();
        assert_eq!(iw, 5.0);
        assert_eq!(bw, 9.0);
    }

    #[test]
    fn empty_manager_returns_none() {
        let (m, _) = manager(4, 1);
        assert!(m.next().is_none());
        assert_eq!(m.pending(), (0, 0));
        assert_eq!(m.mean_waits(), (0.0, 0.0));
    }
}

//! Seeded open-loop workload generator and discrete-event simulator.
//!
//! Benchmarks need to answer "what does this box do at 2x offered load?"
//! without burning minutes of wall-clock or depending on the host's core
//! count. This module simulates thousands of clients against a
//! [`WorkloadManager`] in *virtual time*: every client is an independent
//! open-loop arrival process (arrivals do not slow down when the system
//! backs up — the defining property of overload), tenants are assigned
//! by zipfian popularity so a few tenants dominate traffic, and the
//! whole simulation drives a [`ManualTime`] clock through an event heap.
//! A multi-hour experiment completes in milliseconds and is bit-for-bit
//! reproducible from its seed.
//!
//! The simulator exercises the manager's *queued* surface
//! ([`WorkloadManager::submit`] / [`WorkloadManager::next_ready`]):
//! arrivals pass the per-tenant token bucket and bounded queue, a fixed
//! pool of virtual servers drains queues in priority order, and
//! dispatched work whose deadline would be exceeded is truncated at its
//! budget — modeling the engine's deadline path, which returns an honest
//! partial answer at the deadline instead of running past it.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use impliance_query::clock::ManualTime;
use impliance_query::Priority;

use crate::workload::{
    Permit, TenantId, TenantQuota, WorkloadConfig, WorkloadManager, WorkloadStats,
};

/// Experiment parameters. Everything is virtual-time; nothing here maps
/// to host wall-clock or host cores.
#[derive(Debug, Clone, Copy)]
pub struct TrafficSpec {
    /// PRNG seed; two runs with equal specs produce identical reports.
    pub seed: u64,
    /// Number of distinct tenants.
    pub tenants: usize,
    /// Number of simulated clients (each an independent arrival process).
    pub clients: usize,
    /// Virtual experiment duration, microseconds.
    pub duration_us: u64,
    /// Aggregate offered load across all clients, queries per second.
    /// Double it to model 2x overload — arrivals are open-loop, so the
    /// offered rate does not relent when the system saturates.
    pub offered_qps: u64,
    /// Zipf exponent ×1000 (1000 = classic zipf s=1.0; 0 = uniform).
    pub zipf_milli: u64,
    /// Mean service time of one query, microseconds (exponential).
    pub service_us: u64,
    /// Virtual server slots draining the queues (the "cores" of the
    /// simulated box).
    pub servers: usize,
    /// Per-class response deadlines, microseconds, indexed High/Normal/Low.
    pub deadline_us: [u64; 3],
    /// Per-tenant sustained admission rate, queries/sec (0 = unlimited).
    pub tenant_qps: u64,
    /// Per-tenant bounded queue capacity.
    pub queue_capacity: usize,
}

impl Default for TrafficSpec {
    fn default() -> TrafficSpec {
        TrafficSpec {
            seed: 42,
            tenants: 20,
            clients: 2_000,
            duration_us: 5_000_000, // 5 virtual seconds
            offered_qps: 2_000,
            zipf_milli: 1_000,
            service_us: 4_000,
            servers: 12,
            deadline_us: [25_000, 60_000, 150_000],
            tenant_qps: 0,
            queue_capacity: 64,
        }
    }
}

/// The priority class a tenant belongs to. Classes are spread across the
/// zipfian popularity ranks (every 5th tenant is `High`) so each class
/// sees both heavy and light tenants.
pub fn class_of(tenant: TenantId) -> Priority {
    match tenant.0 % 5 {
        0 => Priority::High,
        1 | 2 | 3 => Priority::Normal,
        _ => Priority::Low,
    }
}

/// Index of a class in per-class report arrays.
pub fn class_index(priority: Priority) -> usize {
    match priority {
        Priority::High => 0,
        Priority::Normal => 1,
        Priority::Low => 2,
    }
}

/// Per-class outcome accounting for one experiment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassReport {
    /// Queries offered (arrivals) in this class.
    pub offered: u64,
    /// Queries that completed (full fidelity).
    pub completed: u64,
    /// Queries that completed truncated at their deadline budget
    /// (honest partial answers via the engine's degraded path).
    pub degraded: u64,
    /// Queries shed at admission or dispatch.
    pub shed: u64,
    /// Completions (full or degraded) that met their class deadline.
    pub met_deadline: u64,
    /// End-to-end latency (queue wait + service), microseconds, p50.
    pub p50_us: u64,
    /// End-to-end latency p99, microseconds.
    pub p99_us: u64,
    /// Worst observed end-to-end latency, microseconds.
    pub max_us: u64,
}

/// Everything one simulated experiment produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficReport {
    /// Per-class outcomes, indexed High/Normal/Low (see [`class_index`]).
    pub classes: [ClassReport; 3],
    /// The manager's own cumulative accounting.
    pub workload: WorkloadStats,
    /// Virtual duration actually simulated, microseconds.
    pub duration_us: u64,
    /// Total arrivals generated.
    pub offered_total: u64,
}

/// SplitMix64: tiny, seedable, and good enough for load generation.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential with the given mean (for inter-arrivals and service).
    fn next_exp_us(&mut self, mean_us: f64) -> u64 {
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        (-u.ln() * mean_us) as u64
    }
}

/// Zipfian tenant sampler: precomputed CDF over `n` ranks with weight
/// `1 / (rank+1)^s`, sampled by binary search.
#[derive(Debug, Clone)]
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s_milli: u64) -> Zipf {
        let s = s_milli as f64 / 1_000.0;
        let mut cdf = Vec::with_capacity(n.max(1));
        let mut total = 0.0;
        for rank in 0..n.max(1) {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A client issues a query (and schedules its next arrival).
    Arrival { client: u32 },
    /// A dispatched query finishes; the permit keyed by `key` retires.
    Completion { key: u64 },
}

/// Run one experiment. Deterministic in `spec`; burns no wall-clock
/// (virtual time only).
pub fn run(spec: &TrafficSpec) -> TrafficReport {
    let time = Arc::new(ManualTime::new());
    let manager = WorkloadManager::with_time_source(
        WorkloadConfig {
            default_quota: TenantQuota {
                tokens_per_sec: spec.tenant_qps,
                burst: spec.tenant_qps.max(1),
                queue_capacity: spec.queue_capacity.max(1),
            },
            max_concurrent: spec.servers,
            expected_service_us: spec.service_us.max(1),
            ..WorkloadConfig::default()
        },
        time.clone(),
    );
    let mut rng = Rng(spec.seed ^ 0xD6E8_FEB8_6659_FD93);
    let zipf = Zipf::new(spec.tenants.max(1), spec.zipf_milli);

    // Each client binds to one tenant (zipfian), giving the aggregate
    // stream its skew while every client stays an independent process.
    let clients = spec.clients.max(1);
    let client_tenant: Vec<TenantId> = (0..clients)
        .map(|_| TenantId(zipf.sample(&mut rng) as u64))
        .collect();
    let per_client_mean_us = {
        let qps = spec.offered_qps.max(1) as f64;
        clients as f64 * 1_000_000.0 / qps
    };

    let mut heap: BinaryHeap<Reverse<(u64, u64, Event)>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    for c in 0..clients as u32 {
        let at = rng.next_exp_us(per_client_mean_us);
        heap.push(Reverse((at, seq, Event::Arrival { client: c })));
        seq += 1;
    }

    let mut running: HashMap<u64, (Permit, u64, bool)> = HashMap::new(); // key → (permit, latency, degraded)
    let mut busy: usize = 0;
    let mut next_key: u64 = 0;
    let mut offered = [0u64; 3];
    let mut shed = [0u64; 3];
    let mut degraded = [0u64; 3];
    let mut met = [0u64; 3];
    let mut latencies: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut last_t = 0u64;

    while let Some(Reverse((t, _, ev))) = heap.pop() {
        // Arrivals stop at the horizon; completions drain past it so
        // every admitted query is accounted for (no silent truncation).
        time.set_us(t);
        last_t = t.max(last_t);
        match ev {
            Event::Arrival { client } => {
                if t < spec.duration_us {
                    let tenant = client_tenant[client as usize];
                    let priority = class_of(tenant);
                    let ci = class_index(priority);
                    offered[ci] += 1;
                    let deadline = spec.deadline_us[ci];
                    if manager.submit(tenant, priority, Some(deadline)).is_err() {
                        shed[ci] += 1;
                    }
                    let next_at = t + rng.next_exp_us(per_client_mean_us).max(1);
                    heap.push(Reverse((next_at, seq, Event::Arrival { client })));
                    seq += 1;
                }
            }
            Event::Completion { key } => {
                busy = busy.saturating_sub(1);
                if let Some((permit, latency, was_degraded)) = running.remove(&key) {
                    let ci = class_index(permit.priority());
                    let deadline = spec.deadline_us[ci];
                    if was_degraded {
                        degraded[ci] += 1;
                    }
                    if latency <= deadline {
                        met[ci] += 1;
                    }
                    latencies[ci].push(latency);
                    drop(permit); // retires at the completion timestamp
                }
            }
        }
        // Fill free servers from the priority queues. Deadline-expired
        // tickets are shed inside next_ready (counted by the manager).
        while busy < spec.servers.max(1) {
            let Some(permit) = manager.next_ready() else {
                break;
            };
            let service = rng.next_exp_us(spec.service_us.max(1) as f64).max(1);
            // The engine's deadline path truncates at the remaining
            // budget and returns an honest partial answer.
            let (actual, was_degraded) = match permit.budget_us() {
                Some(budget) if service > budget => (budget.max(1), true),
                _ => (service, false),
            };
            let latency = permit.queue_wait_us() + actual;
            let key = next_key;
            next_key += 1;
            running.insert(key, (permit, latency, was_degraded));
            heap.push(Reverse((t + actual, seq, Event::Completion { key })));
            seq += 1;
            busy += 1;
        }
    }

    // Shed-at-dispatch (deadline passed in queue) is recorded by the
    // manager, not at arrival; reconcile per class via completion math:
    // offered = completed + shed_at_arrival + shed_at_dispatch. The
    // per-class dispatch sheds are whatever never completed nor shed.
    let stats = manager.stats();
    let mut classes: [ClassReport; 3] = Default::default();
    for ci in 0..3 {
        let mut lat = std::mem::take(&mut latencies[ci]);
        lat.sort_unstable();
        let pct = |lat: &[u64], p: f64| -> u64 {
            if lat.is_empty() {
                0
            } else {
                let idx = ((lat.len() as f64 - 1.0) * p) as usize;
                lat[idx.min(lat.len() - 1)]
            }
        };
        let completed_total = lat.len() as u64;
        let dispatch_shed = offered[ci]
            .saturating_sub(completed_total)
            .saturating_sub(shed[ci]);
        classes[ci] = ClassReport {
            offered: offered[ci],
            completed: completed_total.saturating_sub(degraded[ci]),
            degraded: degraded[ci],
            shed: shed[ci] + dispatch_shed,
            met_deadline: met[ci],
            p50_us: pct(&lat, 0.50),
            p99_us: pct(&lat, 0.99),
            max_us: lat.last().copied().unwrap_or(0),
        };
    }
    TrafficReport {
        classes,
        workload: stats,
        duration_us: last_t.max(spec.duration_us),
        offered_total: offered.iter().sum(),
    }
}

/// Convenience: make sure nothing in a report was silently dropped —
/// every offered query either completed (fully or degraded) or was shed.
pub fn accounted(report: &TrafficReport) -> bool {
    report.classes.iter().all(|c| {
        c.offered == c.completed + c.degraded + c.shed && c.met_deadline <= c.completed + c.degraded
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_report() {
        let spec = TrafficSpec {
            clients: 200,
            duration_us: 500_000,
            ..TrafficSpec::default()
        };
        let a = run(&spec);
        let b = run(&spec);
        assert_eq!(a, b);
        assert!(a.offered_total > 0);
    }

    #[test]
    fn different_seed_different_traffic() {
        let spec = TrafficSpec {
            clients: 200,
            duration_us: 500_000,
            ..TrafficSpec::default()
        };
        let a = run(&spec);
        let b = run(&TrafficSpec { seed: 7, ..spec });
        assert_ne!(a, b);
    }

    #[test]
    fn every_query_is_accounted_for() {
        for mult in [1u64, 2, 4] {
            let spec = TrafficSpec {
                offered_qps: 2_000 * mult,
                duration_us: 1_000_000,
                clients: 500,
                ..TrafficSpec::default()
            };
            let r = run(&spec);
            assert!(
                accounted(&r),
                "unaccounted queries at {mult}x: {:?}",
                r.classes
            );
        }
    }

    #[test]
    fn overload_sheds_low_before_high() {
        let spec = TrafficSpec {
            offered_qps: 4_000, // 2x the default capacity
            duration_us: 2_000_000,
            clients: 1_000,
            ..TrafficSpec::default()
        };
        let r = run(&spec);
        let high = &r.classes[0];
        let low = &r.classes[2];
        assert!(high.offered > 0 && low.offered > 0);
        let shed_rate = |c: &ClassReport| c.shed as f64 / c.offered.max(1) as f64;
        assert!(
            shed_rate(low) >= shed_rate(high),
            "low must shed at least as hard as high: low={:?} high={:?}",
            low,
            high
        );
    }

    #[test]
    fn no_completion_exceeds_deadline_plus_wait_budget() {
        // Dispatched work is truncated at its budget, so end-to-end
        // latency never exceeds the class deadline.
        let spec = TrafficSpec {
            offered_qps: 4_000,
            duration_us: 1_000_000,
            clients: 500,
            ..TrafficSpec::default()
        };
        let r = run(&spec);
        for (ci, c) in r.classes.iter().enumerate() {
            assert!(
                c.max_us <= spec.deadline_us[ci],
                "class {ci} ran past its deadline: {:?}",
                c
            );
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut rng = Rng(1);
        let z = Zipf::new(10, 1_000);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4], "rank 0 must dominate rank 4");
        assert!(counts[0] > counts[9] * 3);
    }
}

//! Property battery for the execution manager's fairness contract, all on
//! the injectable clock (no wall-time, no sleeps):
//!
//! * conservation — every submitted task is dispatched exactly once, in
//!   FIFO order within its class;
//! * the background share is exact per dispatch window while both queues
//!   are backlogged;
//! * interactive latency is bounded by the background share (never more
//!   than `share` dispatches of queue-jump delay);
//! * background work never starves under continuous interactive arrivals
//!   (dispatched within two windows);
//! * wait accounting equals the hand-computed sums from the injected
//!   `ManualTime` readings.
//!
//! A second section covers the `WorkloadManager` admission ledger: counts
//! always balance (admitted + degraded + shed = offered) and a tenant's
//! token bucket never admits more than `burst + rate * elapsed` queries.

use std::sync::Arc;

use proptest::prelude::*;

use impliance_query::clock::ManualTime;
use impliance_query::Priority;
use impliance_virt::execmgr::{ExecutionManager, TaskClass};
use impliance_virt::{Admission, TenantId, TenantQuota, WorkloadConfig, WorkloadManager};

fn manager(window: u32, share: u32) -> (ExecutionManager, Arc<ManualTime>) {
    let time = Arc::new(ManualTime::new());
    (
        ExecutionManager::with_time_source(window, share, time.clone()),
        time,
    )
}

/// Debug builds run proptest cases slower; keep the battery small there
/// and let `--release` run the full set.
const fn cases(release: u32) -> u32 {
    if cfg!(debug_assertions) {
        release / 4 + 2
    } else {
        release
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    // Conservation: an arbitrary interleaving of submissions and
    // dispatches loses nothing, invents nothing, and preserves FIFO
    // order within each class.
    #[test]
    fn every_task_dispatches_exactly_once_in_class_fifo_order(
        window in 1u32..9,
        share in 0u32..9,
        ops in proptest::collection::vec((0u8..3, 0u64..8), 1..120),
    ) {
        let (m, time) = manager(window, share);
        let mut next_id = 0u64;
        let mut submitted: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        let mut dispatched: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for &(op, advance) in &ops {
            time.advance_us(advance);
            match op {
                0 => {
                    m.submit(next_id, TaskClass::Interactive);
                    submitted[0].push(next_id);
                    next_id += 1;
                }
                1 => {
                    m.submit(next_id, TaskClass::Background);
                    submitted[1].push(next_id);
                    next_id += 1;
                }
                _ => {
                    if let Some(t) = m.next() {
                        let ci = (t.class == TaskClass::Background) as usize;
                        dispatched[ci].push(t.id);
                    }
                }
            }
        }
        // Drain whatever is left; the manager must hand back exactly the
        // un-dispatched remainder and then report empty.
        while let Some(t) = m.next() {
            let ci = (t.class == TaskClass::Background) as usize;
            dispatched[ci].push(t.id);
        }
        prop_assert_eq!(m.pending(), (0, 0));
        prop_assert_eq!(&dispatched[0], &submitted[0], "interactive FIFO order");
        prop_assert_eq!(&dispatched[1], &submitted[1], "background FIFO order");
    }

    // Window exactness: while both queues stay backlogged, every aligned
    // dispatch window contains exactly `share` background dispatches —
    // the share is a guarantee, not a hint, in both directions (no
    // starvation, no over-serving).
    #[test]
    fn background_share_is_exact_per_window_under_backlog(
        window in 1u32..9,
        share_seed in 0u32..9,
        rounds in 1u32..6,
    ) {
        let share = share_seed.min(window);
        let (m, _) = manager(window, share);
        let total = window * rounds;
        // Preload more than enough of each class to stay backlogged for
        // `rounds` full windows.
        for i in 0..u64::from(total) {
            m.submit(i, TaskClass::Interactive);
            m.submit(1_000_000 + i, TaskClass::Background);
        }
        for round in 0..rounds {
            let mut bg = 0u32;
            for _ in 0..window {
                if m.next().expect("backlogged").class == TaskClass::Background {
                    bg += 1;
                }
            }
            prop_assert_eq!(
                bg, share,
                "window {} dispatched {} background tasks, share is {}",
                round, bg, share
            );
        }
    }

    // Interactive latency bound: even against an unbounded background
    // backlog, a newly submitted interactive task is dispatched within
    // `share + 1` calls — the only thing allowed ahead of it is the
    // share the current window still owes to background work.
    #[test]
    fn interactive_waits_at_most_the_background_share(
        window in 2u32..9,
        share_seed in 0u32..8,
        warmup in 0u32..20,
    ) {
        let share = share_seed.min(window - 1);
        let (m, _) = manager(window, share);
        for i in 0..200u64 {
            m.submit(i, TaskClass::Background);
        }
        // Leave the window counter at an arbitrary phase.
        for _ in 0..warmup {
            m.next();
        }
        m.submit(777_777, TaskClass::Interactive);
        let mut calls = 0u32;
        loop {
            let t = m.next().expect("background backlog never empties");
            calls += 1;
            if t.class == TaskClass::Interactive {
                prop_assert_eq!(t.id, 777_777u64);
                break;
            }
            prop_assert!(
                calls <= share + 1,
                "interactive task queue-jumped by {} > share {}",
                calls, share
            );
        }
    }

    // Background starvation bound: with one interactive arrival per
    // dispatch (a permanently hot foreground), a queued background task
    // still runs within two full windows.
    #[test]
    fn background_dispatches_within_two_windows_under_interactive_flood(
        window in 1u32..9,
        share_seed in 1u32..9,
        warmup in 0u32..20,
    ) {
        let share = share_seed.min(window);
        let (m, _) = manager(window, share);
        for i in 0..warmup {
            m.submit(u64::from(i), TaskClass::Interactive);
            m.next();
        }
        m.submit(888_888, TaskClass::Background);
        let mut calls = 0u32;
        loop {
            m.submit(1_000 + u64::from(calls), TaskClass::Interactive);
            let t = m.next().expect("both queues nonempty");
            calls += 1;
            if t.class == TaskClass::Background {
                break;
            }
            prop_assert!(
                calls <= 2 * window,
                "background starved for {} dispatches (window {}, share {})",
                calls, window, share
            );
        }
    }

    // Wait accounting: the means reported by the manager equal the sums
    // hand-computed from the injected clock readings at each dispatch.
    #[test]
    fn mean_waits_match_hand_computed_sums(
        window in 1u32..9,
        share in 0u32..9,
        ops in proptest::collection::vec((0u8..3, 0u64..50), 1..80),
    ) {
        let (m, time) = manager(window, share);
        let mut next_id = 0u64;
        let mut now = 0u64;
        let mut sums = [(0u64, 0u64); 2]; // (count, total wait) per class
        for &(op, advance) in &ops {
            time.advance_us(advance);
            now += advance;
            match op {
                0 => {
                    m.submit(next_id, TaskClass::Interactive);
                    next_id += 1;
                }
                1 => {
                    m.submit(next_id, TaskClass::Background);
                    next_id += 1;
                }
                _ => {
                    if let Some(t) = m.next() {
                        let ci = (t.class == TaskClass::Background) as usize;
                        sums[ci].0 += 1;
                        sums[ci].1 += now - t.enqueued_at;
                    }
                }
            }
        }
        let mean = |(n, total): (u64, u64)| if n == 0 { 0.0 } else { total as f64 / n as f64 };
        let (iw, bw) = m.mean_waits();
        prop_assert_eq!(iw, mean(sums[0]));
        prop_assert_eq!(bw, mean(sums[1]));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(48)))]

    // Admission ledger balance: however admit() is hammered, every call
    // lands in exactly one of admitted/degraded/shed and the stats
    // ledger accounts for all of them.
    #[test]
    fn workload_admission_ledger_always_balances(
        max_concurrent in 0usize..6,
        calls in proptest::collection::vec((0u64..5, 0u8..3, 0u64..20_000), 1..120),
    ) {
        let time = Arc::new(ManualTime::new());
        let mgr = WorkloadManager::with_time_source(
            WorkloadConfig {
                max_concurrent,
                ..WorkloadConfig::default()
            },
            time.clone(),
        );
        let mut live = Vec::new();
        let mut offered = 0u64;
        for &(tenant, prio, advance) in &calls {
            time.advance_us(advance);
            let priority = match prio {
                0 => Priority::Low,
                1 => Priority::Normal,
                _ => Priority::High,
            };
            offered += 1;
            match mgr.admit(TenantId(tenant), priority, None) {
                Admission::Admitted(p) | Admission::Degraded(p) => {
                    // Hold roughly half the permits to build real
                    // concurrency pressure; release the rest at once.
                    if offered % 2 == 0 {
                        live.push(p);
                    }
                }
                Admission::Shed(_) => {}
            }
        }
        drop(live);
        let s = mgr.stats();
        prop_assert_eq!(s.admitted + s.degraded + s.shed_total(), offered);
        prop_assert_eq!(s.active, 0, "all permits released");
    }

    // Token-bucket ceiling: a rate-limited tenant can never be admitted
    // more than burst + rate * elapsed_seconds times, no matter how the
    // arrivals are spaced — and a parallel unlimited tenant is never
    // collateral damage.
    #[test]
    fn token_bucket_never_exceeds_burst_plus_rate(
        rate in 1u64..10,
        burst in 1u64..10,
        gaps_ms in proptest::collection::vec(0u64..400, 1..80),
    ) {
        let time = Arc::new(ManualTime::new());
        let mgr = WorkloadManager::with_time_source(WorkloadConfig::default(), time.clone());
        mgr.set_quota(
            TenantId(1),
            TenantQuota {
                tokens_per_sec: rate,
                burst,
                queue_capacity: 8,
            },
        );
        let mut elapsed_us = 0u64;
        let mut limited_admits = 0u64;
        for &gap in &gaps_ms {
            time.advance_us(gap * 1_000);
            elapsed_us += gap * 1_000;
            if !matches!(
                mgr.admit(TenantId(1), Priority::Normal, None),
                Admission::Shed(_)
            ) {
                limited_admits += 1;
            }
            prop_assert!(
                !matches!(
                    mgr.admit(TenantId(2), Priority::Normal, None),
                    Admission::Shed(_)
                ),
                "unlimited tenant shed by a neighbor's quota"
            );
        }
        let ceiling = burst + (rate * elapsed_us) / 1_000_000;
        prop_assert!(
            limited_admits <= ceiling,
            "rate {}/s burst {} admitted {} in {}us (ceiling {})",
            rate, burst, limited_admits, elapsed_us, ceiling
        );
    }
}

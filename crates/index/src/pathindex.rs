//! Structural and value indexes.
//!
//! For every document, every structural path and every `(path, value)`
//! leaf pair is indexed (§3.2). The value index is ordered (B-tree), so
//! equality *and* range predicates can be answered from the index — the
//! access path the simple planner prefers for top-k queries.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap, HashSet};

use impliance_docmodel::{DocId, Document, Value};
use parking_lot::RwLock;

/// Total-ordered wrapper for [`Value`] usable as a B-tree key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdValue(pub Value);

impl Eq for OrdValue {}

impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// structural path → ordered (value → doc set)
    values: HashMap<String, BTreeMap<OrdValue, HashSet<DocId>>>,
    /// structural path → docs having any leaf there
    paths: HashMap<String, HashSet<DocId>>,
    /// doc → structural paths it contributed (for retirement on update)
    doc_paths: HashMap<DocId, Vec<(String, Value)>>,
}

/// The path/value index for a corpus of documents.
#[derive(Debug, Default)]
pub struct PathValueIndex {
    inner: RwLock<Inner>,
}

impl PathValueIndex {
    /// Create an empty index.
    pub fn new() -> PathValueIndex {
        PathValueIndex::default()
    }

    /// Index (or re-index) the latest version of a document.
    pub fn index_document(&self, doc: &Document) {
        let mut inner = self.inner.write();
        Self::retire_locked(&mut inner, doc.id());
        let mut contributed = Vec::new();
        for (path, value) in doc.leaves() {
            let structural = path.structural_form();
            inner
                .values
                .entry(structural.clone())
                .or_default()
                .entry(OrdValue(value.clone()))
                .or_default()
                .insert(doc.id());
            inner
                .paths
                .entry(structural.clone())
                .or_default()
                .insert(doc.id());
            contributed.push((structural, value.clone()));
        }
        inner.doc_paths.insert(doc.id(), contributed);
    }

    /// Remove a document's contributions (used on re-index and by tests).
    pub fn retire(&self, id: DocId) {
        let mut inner = self.inner.write();
        Self::retire_locked(&mut inner, id);
    }

    fn retire_locked(inner: &mut Inner, id: DocId) {
        if let Some(entries) = inner.doc_paths.remove(&id) {
            for (path, value) in entries {
                if let Some(tree) = inner.values.get_mut(&path) {
                    if let Some(set) = tree.get_mut(&OrdValue(value)) {
                        set.remove(&id);
                    }
                }
                if let Some(set) = inner.paths.get_mut(&path) {
                    set.remove(&id);
                }
            }
            // sweep empty value sets
            for tree in inner.values.values_mut() {
                tree.retain(|_, set| !set.is_empty());
            }
        }
    }

    /// Documents with a leaf equal to `v` at `path`.
    pub fn lookup_eq(&self, path: &str, v: &Value) -> Vec<DocId> {
        let inner = self.inner.read();
        let mut out: Vec<DocId> = inner
            .values
            .get(path)
            .and_then(|tree| tree.get(&OrdValue(v.clone())))
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        out.sort_unstable();
        out
    }

    /// Documents with a leaf in `[lo, hi]` (inclusive bounds; `None` =
    /// unbounded) at `path`.
    pub fn lookup_range(&self, path: &str, lo: Option<&Value>, hi: Option<&Value>) -> Vec<DocId> {
        let inner = self.inner.read();
        let mut out = HashSet::new();
        if let Some(tree) = inner.values.get(path) {
            use std::ops::Bound;
            let lo_bound = match lo {
                Some(v) => Bound::Included(OrdValue(v.clone())),
                None => Bound::Unbounded,
            };
            let hi_bound = match hi {
                Some(v) => Bound::Included(OrdValue(v.clone())),
                None => Bound::Unbounded,
            };
            for (_, set) in tree.range((lo_bound, hi_bound)) {
                out.extend(set.iter().copied());
            }
        }
        let mut v: Vec<DocId> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Documents having any leaf at `path`.
    pub fn lookup_exists(&self, path: &str) -> Vec<DocId> {
        let inner = self.inner.read();
        let mut out: Vec<DocId> = inner
            .paths
            .get(path)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default();
        out.sort_unstable();
        out
    }

    /// All structural paths observed, with live document counts — the raw
    /// material for facet discovery.
    pub fn path_census(&self) -> Vec<(String, usize)> {
        let inner = self.inner.read();
        let mut out: Vec<(String, usize)> = inner
            .paths
            .iter()
            .map(|(p, set)| (p.clone(), set.len()))
            .collect();
        out.sort();
        out
    }

    /// Distinct values at a path with their document counts, ordered by
    /// value — one facet dimension's buckets.
    pub fn value_census(&self, path: &str) -> Vec<(Value, usize)> {
        let inner = self.inner.read();
        inner
            .values
            .get(path)
            .map(|tree| {
                tree.iter()
                    .filter(|(_, set)| !set.is_empty())
                    .map(|(v, set)| (v.0.clone(), set.len()))
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impliance_docmodel::{DocumentBuilder, Node, SourceFormat};

    fn doc(i: u64, amount: i64, make: &str) -> Document {
        DocumentBuilder::new(DocId(i), SourceFormat::Json, "claims")
            .field("amount", amount)
            .field("make", make)
            .build()
    }

    #[test]
    fn eq_lookup() {
        let idx = PathValueIndex::new();
        idx.index_document(&doc(1, 100, "Volvo"));
        idx.index_document(&doc(2, 200, "Volvo"));
        idx.index_document(&doc(3, 100, "Saab"));
        assert_eq!(
            idx.lookup_eq("make", &Value::Str("Volvo".into())),
            vec![DocId(1), DocId(2)]
        );
        assert_eq!(
            idx.lookup_eq("amount", &Value::Int(100)),
            vec![DocId(1), DocId(3)]
        );
        assert!(idx
            .lookup_eq("make", &Value::Str("Tesla".into()))
            .is_empty());
    }

    #[test]
    fn range_lookup() {
        let idx = PathValueIndex::new();
        for i in 0..20 {
            idx.index_document(&doc(i, i as i64 * 10, "x"));
        }
        let r = idx.lookup_range("amount", Some(&Value::Int(50)), Some(&Value::Int(90)));
        assert_eq!(r, vec![DocId(5), DocId(6), DocId(7), DocId(8), DocId(9)]);
        let open = idx.lookup_range("amount", Some(&Value::Int(150)), None);
        assert_eq!(open.len(), 5);
        let all = idx.lookup_range("amount", None, None);
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn range_lookup_crosses_int_float() {
        let idx = PathValueIndex::new();
        idx.index_document(&doc(1, 100, "x"));
        let d = DocumentBuilder::new(DocId(2), SourceFormat::Json, "claims")
            .field("amount", 150.5)
            .build();
        idx.index_document(&d);
        let r = idx.lookup_range("amount", Some(&Value::Int(100)), Some(&Value::Int(200)));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn exists_lookup() {
        let idx = PathValueIndex::new();
        idx.index_document(&doc(1, 1, "Volvo"));
        let other = DocumentBuilder::new(DocId(2), SourceFormat::Json, "c")
            .field("different", 1i64)
            .build();
        idx.index_document(&other);
        assert_eq!(idx.lookup_exists("make"), vec![DocId(1)]);
        assert_eq!(idx.lookup_exists("different"), vec![DocId(2)]);
    }

    #[test]
    fn reindex_replaces_old_values() {
        let idx = PathValueIndex::new();
        let d = doc(1, 100, "Volvo");
        idx.index_document(&d);
        let d2 = d.new_version(
            Node::map([
                ("amount".into(), Node::scalar(999i64)),
                ("make".into(), Node::scalar("Saab")),
            ]),
            1,
        );
        idx.index_document(&d2);
        assert!(idx
            .lookup_eq("make", &Value::Str("Volvo".into()))
            .is_empty());
        assert_eq!(
            idx.lookup_eq("make", &Value::Str("Saab".into())),
            vec![DocId(1)]
        );
        assert!(idx.lookup_eq("amount", &Value::Int(100)).is_empty());
    }

    #[test]
    fn retire_removes_contributions() {
        let idx = PathValueIndex::new();
        idx.index_document(&doc(1, 1, "Volvo"));
        idx.retire(DocId(1));
        assert!(idx.lookup_exists("make").is_empty());
        assert!(idx.value_census("make").is_empty());
    }

    #[test]
    fn censuses_for_facets() {
        let idx = PathValueIndex::new();
        idx.index_document(&doc(1, 10, "Volvo"));
        idx.index_document(&doc(2, 20, "Volvo"));
        idx.index_document(&doc(3, 30, "Saab"));
        let census = idx.path_census();
        assert!(census.contains(&("make".to_string(), 3)));
        let values = idx.value_census("make");
        assert_eq!(
            values,
            vec![
                (Value::Str("Saab".into()), 1),
                (Value::Str("Volvo".into()), 2)
            ]
        );
    }

    #[test]
    fn sequence_paths_are_structural() {
        let d = DocumentBuilder::new(DocId(1), SourceFormat::Json, "orders")
            .node(
                "items",
                Node::seq([
                    Node::map([("sku".to_string(), Node::scalar("A-1"))]),
                    Node::map([("sku".to_string(), Node::scalar("B-2"))]),
                ]),
            )
            .build();
        let idx = PathValueIndex::new();
        idx.index_document(&d);
        assert_eq!(
            idx.lookup_eq("items[].sku", &Value::Str("B-2".into())),
            vec![DocId(1)]
        );
    }
}

//! # Impliance indexing subsystem
//!
//! §3.2: "Impliance automatically indexes each document by its values as
//! well as its structures (e.g., every path in the document) for efficient
//! keyword and structural search. Unlike traditional database systems,
//! this indexing need not take place as part of the same transaction that
//! infused that document initially."
//!
//! The paper proposes embedding Lucene/Indri but notes three required
//! extensions — hierarchy-native indexing, structured payloads for faceted
//! search, and incremental maintenance. This crate builds those properties
//! in from the start:
//!
//! * [`mod@tokenize`] — analyzer producing lowercase word tokens with
//!   positions.
//! * [`postings`] — delta-varint-compressed positional postings lists.
//! * [`inverted`] — the full-text index: an in-memory delta absorbing new
//!   documents plus immutable merged runs (LSM-style), so maintenance is
//!   incremental and never blocks ingestion. Tokens are recorded *per
//!   structural path*, making the index hierarchy-aware.
//! * [`pathindex`] — structural and value indexes: every path, and every
//!   (path, value) pair, point to the documents containing them; ordered
//!   so range predicates use them too.
//! * [`joinindex`] — discovered relationships stored as join indexes
//!   "utilized at query time" (§3.2).
//! * [`search`] — BM25 top-k evaluation with AND/OR semantics and
//!   per-path restriction.

pub mod inverted;
pub mod joinindex;
pub mod pathindex;
pub mod postings;
pub mod search;
pub mod tokenize;

pub use inverted::{DocOrdinal, InvertedIndex};
pub use joinindex::JoinIndex;
pub use pathindex::PathValueIndex;
pub use search::{search_phrase, search_topk, SearchHit, SearchMode, SearchQuery, TopKStats};
pub use tokenize::{tokenize, Token};

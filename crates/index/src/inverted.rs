//! The incremental, hierarchy-aware full-text index.
//!
//! Structure (LSM-flavored, per the paper's incremental-maintenance
//! requirement):
//!
//! * a mutable **delta** absorbing newly indexed documents in O(tokens);
//! * immutable **runs** of compressed postings produced by `commit()`;
//! * periodic **compaction** merging runs so lookup cost stays bounded.
//!
//! Documents are registered with an internal ordinal; re-indexing a new
//! version of the same `DocId` kills the old ordinal (Lucene-style
//! live/dead masking) so search never returns superseded versions —
//! mirroring the storage engine's latest-version semantics.
//!
//! Hierarchy-awareness: tokens are indexed both globally (term) and per
//! structural path (`path\u{1}term`), so searches can be restricted to a
//! subtree ("find 'fracture' within `claim.notes`") — the extension §3.3
//! says off-the-shelf indexers would need.

use std::collections::HashMap;

use impliance_docmodel::{DocId, Document, Version};
use parking_lot::RwLock;

use crate::postings::{Posting, PostingsList};
use crate::tokenize::tokenize;

/// Internal document ordinal in index space.
pub type DocOrdinal = u32;

/// Separator between path and term in per-path keys. `\u{1}` never appears
/// in tokenized terms.
const PATH_SEP: char = '\u{1}';

#[derive(Debug, Default)]
struct Delta {
    /// term (or path-qualified term) → postings under construction,
    /// keyed by ordinal (sorted on commit).
    terms: HashMap<String, Vec<Posting>>,
    tokens: u64,
}

#[derive(Debug, Default)]
struct Run {
    terms: HashMap<String, PostingsList>,
}

#[derive(Debug, Default)]
struct Registry {
    /// ordinal → (id, version, live)
    docs: Vec<(DocId, Version, bool)>,
    /// id → current live ordinal
    current: HashMap<DocId, DocOrdinal>,
    /// ordinal → token count (for BM25 length normalization)
    lengths: Vec<u32>,
    total_live_tokens: u64,
}

/// The full-text index.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    delta: RwLock<Delta>,
    runs: RwLock<Vec<Run>>,
    registry: RwLock<Registry>,
    /// Runs allowed before an automatic compaction.
    max_runs: usize,
}

impl InvertedIndex {
    /// Create an index that compacts once it accumulates `max_runs` runs.
    pub fn new(max_runs: usize) -> InvertedIndex {
        InvertedIndex {
            max_runs: max_runs.max(2),
            ..InvertedIndex::default()
        }
    }

    /// Index (or re-index) a document's latest version. Returns the
    /// ordinal assigned. Indexing is O(tokens) into the delta; no run is
    /// touched until `commit`.
    pub fn index_document(&self, doc: &Document) -> DocOrdinal {
        let mut reg = self.registry.write();
        // retire the previous version's ordinal, if any
        if let Some(&old) = reg.current.get(&doc.id()) {
            let old_len = reg.lengths[old as usize] as u64;
            if let Some(entry) = reg.docs.get_mut(old as usize) {
                if entry.2 {
                    entry.2 = false;
                    reg.total_live_tokens = reg.total_live_tokens.saturating_sub(old_len);
                }
            }
        }
        let ordinal = reg.docs.len() as DocOrdinal;
        reg.docs.push((doc.id(), doc.version(), true));
        reg.current.insert(doc.id(), ordinal);

        let mut delta = self.delta.write();
        let mut doc_tokens = 0u32;
        // positions are document-global: each leaf's tokens continue after
        // the previous leaf's, so per-term position lists stay strictly
        // increasing (the postings delta encoding requires monotonicity)
        let mut position_base = 0u32;
        for (path, value) in doc.leaves() {
            let text = value.render();
            let structural = path.structural_form();
            let tokens = tokenize(&text);
            let leaf_span = tokens.last().map(|t| t.position + 1).unwrap_or(0);
            for token in tokens {
                let position = position_base + token.position;
                doc_tokens += 1;
                delta.tokens += 1;
                push_token(&mut delta.terms, token.text.clone(), ordinal, position);
                let qualified = format!("{structural}{PATH_SEP}{}", token.text);
                push_token(&mut delta.terms, qualified, ordinal, position);
            }
            // +1 leaves a hole between leaves so phrases cannot match
            // across field boundaries
            position_base += leaf_span + 1;
        }
        reg.lengths.push(doc_tokens);
        reg.total_live_tokens += u64::from(doc_tokens);
        ordinal
    }

    /// Freeze the delta into a new immutable run; compacts automatically
    /// when too many runs accumulate. This is the background step the
    /// appliance schedules asynchronously (experiment C3 measures what
    /// doing it synchronously would cost).
    pub fn commit(&self) {
        let mut delta = self.delta.write();
        if delta.terms.is_empty() {
            return;
        }
        let terms = std::mem::take(&mut delta.terms);
        delta.tokens = 0;
        drop(delta);
        let mut run = Run::default();
        for (term, mut postings) in terms {
            postings.sort_by_key(|p| p.ordinal);
            run.terms
                .insert(term, PostingsList::from_postings(&postings));
        }
        let mut runs = self.runs.write();
        runs.push(run);
        if runs.len() > self.max_runs {
            let merged = Self::merge_runs(std::mem::take(&mut *runs));
            runs.push(merged);
        }
    }

    fn merge_runs(old: Vec<Run>) -> Run {
        let mut merged: HashMap<String, PostingsList> = HashMap::new();
        for run in old {
            for (term, list) in run.terms {
                match merged.get(&term) {
                    None => {
                        merged.insert(term, list);
                    }
                    Some(existing) => {
                        let combined = existing.merge(&list);
                        merged.insert(term, combined);
                    }
                }
            }
        }
        Run { terms: merged }
    }

    /// Number of runs currently on disk (observable for tests/benches).
    pub fn run_count(&self) -> usize {
        self.runs.read().len()
    }

    /// Uncommitted tokens buffered in the delta.
    pub fn delta_tokens(&self) -> u64 {
        self.delta.read().tokens
    }

    /// Live documents (latest versions) in the index.
    pub fn live_docs(&self) -> u32 {
        self.registry.read().current.len() as u32
    }

    /// Average live-document length in tokens (BM25's `avgdl`).
    pub fn avg_doc_len(&self) -> f64 {
        let reg = self.registry.read();
        let n = reg.current.len();
        if n == 0 {
            return 0.0;
        }
        reg.total_live_tokens as f64 / n as f64
    }

    /// Token length of a live ordinal.
    pub fn doc_len(&self, ord: DocOrdinal) -> u32 {
        self.registry
            .read()
            .lengths
            .get(ord as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Resolve an ordinal to its document id, if still live.
    pub fn resolve(&self, ord: DocOrdinal) -> Option<(DocId, Version)> {
        let reg = self.registry.read();
        reg.docs.get(ord as usize).and_then(
            |&(id, v, live)| {
                if live {
                    Some((id, v))
                } else {
                    None
                }
            },
        )
    }

    /// Collect the live postings for a term across delta and runs,
    /// optionally restricted to a structural path.
    pub fn postings(&self, term: &str, path: Option<&str>) -> Vec<Posting> {
        let key = match path {
            Some(p) => format!("{p}{PATH_SEP}{term}"),
            None => term.to_string(),
        };
        let mut by_ord: HashMap<DocOrdinal, Posting> = HashMap::new();
        {
            let runs = self.runs.read();
            for run in runs.iter() {
                if let Some(list) = run.terms.get(&key) {
                    for p in list.iter() {
                        by_ord.insert(p.ordinal, p);
                    }
                }
            }
        }
        {
            let delta = self.delta.read();
            if let Some(postings) = delta.terms.get(&key) {
                for p in postings {
                    by_ord.insert(p.ordinal, p.clone());
                }
            }
        }
        let reg = self.registry.read();
        let mut out: Vec<Posting> = by_ord
            .into_values()
            .filter(|p| {
                reg.docs
                    .get(p.ordinal as usize)
                    .map(|d| d.2)
                    .unwrap_or(false)
            })
            .collect();
        out.sort_by_key(|p| p.ordinal);
        out
    }

    /// Document frequency of a term (live docs only).
    pub fn doc_freq(&self, term: &str, path: Option<&str>) -> u32 {
        self.postings(term, path).len() as u32
    }
}

fn push_token(
    terms: &mut HashMap<String, Vec<Posting>>,
    key: String,
    ordinal: DocOrdinal,
    position: u32,
) {
    let postings = terms.entry(key).or_default();
    match postings.last_mut() {
        Some(last) if last.ordinal == ordinal => last.positions.push(position),
        _ => postings.push(Posting {
            ordinal,
            positions: vec![position],
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impliance_docmodel::{DocumentBuilder, Node, SourceFormat};

    fn doc(i: u64, text: &str) -> Document {
        DocumentBuilder::new(DocId(i), SourceFormat::Text, "t")
            .field("body", text)
            .build()
    }

    #[test]
    fn index_and_lookup() {
        let idx = InvertedIndex::new(4);
        idx.index_document(&doc(1, "volvo bumper repair"));
        idx.index_document(&doc(2, "saab hood repair"));
        let p = idx.postings("repair", None);
        assert_eq!(p.len(), 2);
        let p = idx.postings("volvo", None);
        assert_eq!(p.len(), 1);
        assert_eq!(idx.resolve(p[0].ordinal).unwrap().0, DocId(1));
    }

    #[test]
    fn lookup_spans_delta_and_runs() {
        let idx = InvertedIndex::new(8);
        idx.index_document(&doc(1, "alpha"));
        idx.commit();
        idx.index_document(&doc(2, "alpha"));
        // one in run, one in delta
        assert_eq!(idx.postings("alpha", None).len(), 2);
        assert_eq!(idx.run_count(), 1);
        assert!(idx.delta_tokens() > 0);
    }

    #[test]
    fn path_restricted_lookup() {
        let idx = InvertedIndex::new(4);
        let d = DocumentBuilder::new(DocId(1), SourceFormat::Json, "claims")
            .field("notes", "fracture observed")
            .field("title", "routine checkup")
            .build();
        idx.index_document(&d);
        assert_eq!(idx.postings("fracture", Some("notes")).len(), 1);
        assert_eq!(idx.postings("fracture", Some("title")).len(), 0);
        assert_eq!(idx.postings("checkup", Some("title")).len(), 1);
    }

    #[test]
    fn reindex_masks_old_version() {
        let idx = InvertedIndex::new(4);
        let d1 = doc(1, "original text here");
        idx.index_document(&d1);
        idx.commit();
        let d2 = d1.new_version(
            Node::map([("body".into(), Node::scalar("replacement words"))]),
            1,
        );
        idx.index_document(&d2);
        assert_eq!(
            idx.postings("original", None).len(),
            0,
            "old version must be dead"
        );
        assert_eq!(idx.postings("replacement", None).len(), 1);
        assert_eq!(idx.live_docs(), 1);
    }

    #[test]
    fn compaction_bounds_runs() {
        let idx = InvertedIndex::new(3);
        for i in 0..10 {
            idx.index_document(&doc(i, "word common unique"));
            idx.commit();
        }
        assert!(idx.run_count() <= 3 + 1, "runs: {}", idx.run_count());
        // all ten docs still findable after compactions
        assert_eq!(idx.postings("common", None).len(), 10);
    }

    #[test]
    fn avg_doc_len_tracks_live_docs() {
        let idx = InvertedIndex::new(4);
        idx.index_document(&doc(1, "one two three four"));
        idx.index_document(&doc(2, "one two"));
        let avg = idx.avg_doc_len();
        assert!((avg - 3.0).abs() < 1e-9, "avg {avg}");
    }

    #[test]
    fn doc_freq_counts_live_only() {
        let idx = InvertedIndex::new(4);
        let d1 = doc(1, "shared");
        idx.index_document(&d1);
        idx.index_document(&doc(2, "shared"));
        assert_eq!(idx.doc_freq("shared", None), 2);
        let d1b = d1.new_version(Node::map([("body".into(), Node::scalar("different"))]), 1);
        idx.index_document(&d1b);
        assert_eq!(idx.doc_freq("shared", None), 1);
    }

    #[test]
    fn numeric_leaves_are_searchable_as_rendered_text() {
        let idx = InvertedIndex::new(4);
        let d = DocumentBuilder::new(DocId(5), SourceFormat::Json, "c")
            .field("amount", 1500i64)
            .build();
        idx.index_document(&d);
        assert_eq!(idx.postings("1500", None).len(), 1);
    }
}

#[cfg(test)]
mod multi_leaf_tests {
    use super::*;
    use impliance_docmodel::{DocId, DocumentBuilder, SourceFormat};

    #[test]
    fn repeated_terms_across_leaves_commit_cleanly() {
        // regression: a term in several leaves used to produce
        // non-monotonic position lists, overflowing the delta encoder
        let idx = InvertedIndex::new(4);
        let d = DocumentBuilder::new(DocId(1), SourceFormat::Email, "mail")
            .field("headers.subject", "contract agreement pending")
            .field("body", "the agreement covers the agreement annexes")
            .build();
        idx.index_document(&d);
        idx.commit(); // encoder ran without panicking
        let postings = idx.postings("agreement", None);
        assert_eq!(postings.len(), 1);
        assert_eq!(postings[0].tf(), 3);
        let positions = &postings[0].positions;
        for w in positions.windows(2) {
            assert!(
                w[0] < w[1],
                "positions must be strictly increasing: {positions:?}"
            );
        }
    }

    #[test]
    fn path_restriction_still_works_with_global_positions() {
        let idx = InvertedIndex::new(4);
        let d = DocumentBuilder::new(DocId(1), SourceFormat::Email, "mail")
            .field("a", "shared")
            .field("b", "shared")
            .build();
        idx.index_document(&d);
        idx.commit();
        assert_eq!(idx.postings("shared", Some("a")).len(), 1);
        assert_eq!(idx.postings("shared", Some("b")).len(), 1);
        assert_eq!(idx.postings("shared", None)[0].tf(), 2);
    }
}

//! Text analysis: turning string leaves into indexed tokens.
//!
//! The analyzer is deliberately simple and deterministic: Unicode
//! alphanumeric runs, lower-cased, with token positions preserved for
//! phrase-adjacent features. A small stopword list keeps index size and
//! scoring noise down; it can be disabled for exact-match fields.

/// One token produced by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Normalized (lower-cased) token text.
    pub text: String,
    /// 0-based token position within the analyzed text.
    pub position: u32,
}

/// English stopwords excluded from indexing (but still counted for
/// positions, so phrases stay aligned).
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "he", "in", "is", "it",
    "its", "of", "on", "or", "that", "the", "to", "was", "were", "will", "with",
];

fn is_stopword(s: &str) -> bool {
    STOPWORDS.binary_search(&s).is_ok()
}

/// Tokenize with stopword removal (the default for full-text fields).
pub fn tokenize(text: &str) -> Vec<Token> {
    analyze(text, true)
}

/// Tokenize keeping stopwords (for exact fields and phrase-heavy search).
pub fn tokenize_keep_stopwords(text: &str) -> Vec<Token> {
    analyze(text, false)
}

fn analyze(text: &str, drop_stopwords: bool) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut position: u32 = 0;
    let flush = |current: &mut String, position: &mut u32, tokens: &mut Vec<Token>| {
        if current.is_empty() {
            return;
        }
        let text = std::mem::take(current);
        let keep = !drop_stopwords || !is_stopword(&text);
        if keep {
            tokens.push(Token {
                text,
                position: *position,
            });
        }
        *position += 1;
    };
    for c in text.chars() {
        if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                // Two Unicode folds keep the analyzer deterministic and
                // case-insensitive where char-wise lowercasing is not:
                // Greek final sigma 'ς' is already lowercase (so 'ΟΔΟΣ'
                // and 'οδός' would otherwise disagree on the last
                // letter), and some expansions emit combining marks
                // ('İ' -> "i\u{307}") that would embed invisible bytes
                // in the token. Fold sigma, drop non-alphanumerics.
                let lc = if lc == 'ς' { 'σ' } else { lc };
                if lc.is_alphanumeric() {
                    current.push(lc);
                }
            }
        } else if c == '\'' && !current.is_empty() {
            // keep apostrophes inside words ("don't") but normalize later
        } else {
            flush(&mut current, &mut position, &mut tokens);
        }
    }
    flush(&mut current, &mut position, &mut tokens);
    tokens
}

/// Tokenize a query string: same pipeline as documents so terms line up.
pub fn tokenize_query(q: &str) -> Vec<String> {
    tokenize(q).into_iter().map(|t| t.text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn basic_tokenization() {
        let toks = tokenize("The Quick, Brown FOX!");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["quick", "brown", "fox"]);
    }

    #[test]
    fn positions_account_for_stopwords() {
        let toks = tokenize("the cat and the hat");
        // "the"(0) cat(1) "and"(2) "the"(3) hat(4)
        assert_eq!(toks.len(), 2);
        assert_eq!(
            toks[0],
            Token {
                text: "cat".into(),
                position: 1
            }
        );
        assert_eq!(
            toks[1],
            Token {
                text: "hat".into(),
                position: 4
            }
        );
    }

    #[test]
    fn keep_stopwords_variant() {
        let toks = tokenize_keep_stopwords("the cat");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].text, "the");
    }

    #[test]
    fn unicode_and_digits() {
        let toks = tokenize("Café 42 naïve");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["café", "42", "naïve"]);
    }

    #[test]
    fn apostrophes_do_not_split() {
        let toks = tokenize("don't panic");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["dont", "panic"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("... --- !!!").is_empty());
    }

    #[test]
    fn query_tokenization_matches_document_pipeline() {
        assert_eq!(tokenize_query("Quick FOX"), vec!["quick", "fox"]);
    }

    #[test]
    fn final_sigma_folds_case_insensitively() {
        // 'ΟΔΟΣ' char-lowercases to medial sigma, 'οδο\u{3c2}' is typed
        // with a final sigma; both must produce the same token.
        assert_eq!(tokenize_query("ΟΔΟΣ"), tokenize_query("οδο\u{3c2}"));
        assert_eq!(tokenize_query("ΟΔΟΣ"), vec!["οδοσ"]);
    }

    #[test]
    fn combining_marks_from_lowercasing_are_dropped() {
        // Dotted capital I lowercases to "i" + combining dot above; the
        // mark must not survive into the token or "İstanbul" could never
        // match a plain "istanbul" query.
        assert_eq!(tokenize_query("İstanbul"), vec!["istanbul"]);
    }

    /// Golden fixture: the exact (text, position) output of the analyzer
    /// over a corpus covering ASCII, case folding, stopword slots,
    /// apostrophes, digits, diacritics, Greek sigma, expansion ('ß'),
    /// and CJK — pinned so the index and query sides can never drift
    /// apart (both run this exact pipeline).
    #[test]
    fn golden_fixture_pins_the_analyzer() {
        let golden: &[(&str, &[(&str, u32)])] = &[
            (
                "The Quick, Brown FOX!",
                &[("quick", 1), ("brown", 2), ("fox", 3)],
            ),
            ("don't panic", &[("dont", 0), ("panic", 1)]),
            ("Café 42 naïve", &[("café", 0), ("42", 1), ("naïve", 2)]),
            (
                "jack of all trades",
                &[("jack", 0), ("all", 2), ("trades", 3)],
            ),
            ("STRASSE straße", &[("strasse", 0), ("straße", 1)]),
            ("ΟΔΟΣ οδός", &[("οδοσ", 0), ("οδόσ", 1)]),
            ("İstanbul ISTANBUL", &[("istanbul", 0), ("istanbul", 1)]),
            ("東京 2026", &[("東京", 0), ("2026", 1)]),
            ("a--b__c", &[("b", 1), ("c", 2)]),
            ("", &[]),
        ];
        for (input, expected) in golden {
            let got: Vec<(String, u32)> = tokenize(input)
                .into_iter()
                .map(|t| (t.text, t.position))
                .collect();
            let want: Vec<(String, u32)> =
                expected.iter().map(|(s, p)| (s.to_string(), *p)).collect();
            assert_eq!(got, want, "analyzer drifted on {input:?}");
            // the query side is the same pipeline, by construction
            let q: Vec<String> = tokenize_query(input);
            let doc: Vec<String> = want.iter().map(|(s, _)| s.clone()).collect();
            assert_eq!(q, doc, "query analyzer disagrees on {input:?}");
        }
    }
}

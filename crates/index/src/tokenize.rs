//! Text analysis: turning string leaves into indexed tokens.
//!
//! The analyzer is deliberately simple and deterministic: Unicode
//! alphanumeric runs, lower-cased, with token positions preserved for
//! phrase-adjacent features. A small stopword list keeps index size and
//! scoring noise down; it can be disabled for exact-match fields.

/// One token produced by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Normalized (lower-cased) token text.
    pub text: String,
    /// 0-based token position within the analyzed text.
    pub position: u32,
}

/// English stopwords excluded from indexing (but still counted for
/// positions, so phrases stay aligned).
pub const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "has", "he", "in", "is", "it",
    "its", "of", "on", "or", "that", "the", "to", "was", "were", "will", "with",
];

fn is_stopword(s: &str) -> bool {
    STOPWORDS.binary_search(&s).is_ok()
}

/// Tokenize with stopword removal (the default for full-text fields).
pub fn tokenize(text: &str) -> Vec<Token> {
    analyze(text, true)
}

/// Tokenize keeping stopwords (for exact fields and phrase-heavy search).
pub fn tokenize_keep_stopwords(text: &str) -> Vec<Token> {
    analyze(text, false)
}

fn analyze(text: &str, drop_stopwords: bool) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut position: u32 = 0;
    let flush = |current: &mut String, position: &mut u32, tokens: &mut Vec<Token>| {
        if current.is_empty() {
            return;
        }
        let text = std::mem::take(current);
        let keep = !drop_stopwords || !is_stopword(&text);
        if keep {
            tokens.push(Token {
                text,
                position: *position,
            });
        }
        *position += 1;
    };
    for c in text.chars() {
        if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                current.push(lc);
            }
        } else if c == '\'' && !current.is_empty() {
            // keep apostrophes inside words ("don't") but normalize later
        } else {
            flush(&mut current, &mut position, &mut tokens);
        }
    }
    flush(&mut current, &mut position, &mut tokens);
    tokens
}

/// Tokenize a query string: same pipeline as documents so terms line up.
pub fn tokenize_query(q: &str) -> Vec<String> {
    tokenize(q).into_iter().map(|t| t.text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn basic_tokenization() {
        let toks = tokenize("The Quick, Brown FOX!");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["quick", "brown", "fox"]);
    }

    #[test]
    fn positions_account_for_stopwords() {
        let toks = tokenize("the cat and the hat");
        // "the"(0) cat(1) "and"(2) "the"(3) hat(4)
        assert_eq!(toks.len(), 2);
        assert_eq!(
            toks[0],
            Token {
                text: "cat".into(),
                position: 1
            }
        );
        assert_eq!(
            toks[1],
            Token {
                text: "hat".into(),
                position: 4
            }
        );
    }

    #[test]
    fn keep_stopwords_variant() {
        let toks = tokenize_keep_stopwords("the cat");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].text, "the");
    }

    #[test]
    fn unicode_and_digits() {
        let toks = tokenize("Café 42 naïve");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["café", "42", "naïve"]);
    }

    #[test]
    fn apostrophes_do_not_split() {
        let toks = tokenize("don't panic");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["dont", "panic"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("... --- !!!").is_empty());
    }

    #[test]
    fn query_tokenization_matches_document_pipeline() {
        assert_eq!(tokenize_query("Quick FOX"), vec!["quick", "fox"]);
    }
}

//! Join indexes over discovered relationships.
//!
//! §3.2: "Discovered relationships can be stored as join indexes and
//! utilized at query time." A [`JoinIndex`] stores labeled directed edges
//! between documents (e.g. `references-customer`, `same-entity`,
//! `annotates`) with forward and reverse adjacency, so the graph query
//! interface's "how are these two connected?" (§3.2.1) runs a plain BFS.

use std::collections::{HashMap, HashSet, VecDeque};

use impliance_docmodel::DocId;
use parking_lot::RwLock;

/// A labeled edge between two documents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source document.
    pub from: DocId,
    /// Target document.
    pub to: DocId,
    /// Relationship label.
    pub label: String,
}

#[derive(Debug, Default)]
struct Inner {
    /// label → from → targets
    forward: HashMap<String, HashMap<DocId, Vec<DocId>>>,
    /// label → to → sources
    reverse: HashMap<String, HashMap<DocId, Vec<DocId>>>,
    edge_count: usize,
    /// dedup set
    edges: HashSet<(DocId, DocId, String)>,
}

/// Labeled document-relationship index.
#[derive(Debug, Default)]
pub struct JoinIndex {
    inner: RwLock<Inner>,
}

impl JoinIndex {
    /// Create an empty join index.
    pub fn new() -> JoinIndex {
        JoinIndex::default()
    }

    /// Add an edge; duplicate edges are ignored. Returns whether the edge
    /// was new.
    pub fn add_edge(&self, from: DocId, to: DocId, label: &str) -> bool {
        let mut inner = self.inner.write();
        if !inner.edges.insert((from, to, label.to_string())) {
            return false;
        }
        inner
            .forward
            .entry(label.to_string())
            .or_default()
            .entry(from)
            .or_default()
            .push(to);
        inner
            .reverse
            .entry(label.to_string())
            .or_default()
            .entry(to)
            .or_default()
            .push(from);
        inner.edge_count += 1;
        true
    }

    /// Targets of `from` under `label`.
    pub fn targets(&self, from: DocId, label: &str) -> Vec<DocId> {
        let inner = self.inner.read();
        inner
            .forward
            .get(label)
            .and_then(|m| m.get(&from))
            .cloned()
            .unwrap_or_default()
    }

    /// Sources pointing at `to` under `label`.
    pub fn sources(&self, to: DocId, label: &str) -> Vec<DocId> {
        let inner = self.inner.read();
        inner
            .reverse
            .get(label)
            .and_then(|m| m.get(&to))
            .cloned()
            .unwrap_or_default()
    }

    /// All neighbors (either direction, any label) with the connecting
    /// label.
    pub fn neighbors(&self, id: DocId) -> Vec<(DocId, String)> {
        let inner = self.inner.read();
        let mut out = Vec::new();
        for (label, m) in &inner.forward {
            if let Some(ts) = m.get(&id) {
                out.extend(ts.iter().map(|t| (*t, label.clone())));
            }
        }
        for (label, m) in &inner.reverse {
            if let Some(ss) = m.get(&id) {
                out.extend(ss.iter().map(|s| (*s, label.clone())));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Total distinct edges.
    pub fn edge_count(&self) -> usize {
        self.inner.read().edge_count
    }

    /// Labels in use.
    pub fn labels(&self) -> Vec<String> {
        let mut out: Vec<String> = self.inner.read().forward.keys().cloned().collect();
        out.sort();
        out
    }

    /// Shortest undirected path between two documents (the §3.2.1 "given
    /// two pieces of data … ask how they are connected"). Returns the node
    /// sequence including both endpoints, or `None` if disconnected within
    /// `max_hops`.
    pub fn connect(&self, a: DocId, b: DocId, max_hops: usize) -> Option<Vec<DocId>> {
        if a == b {
            return Some(vec![a]);
        }
        let mut prev: HashMap<DocId, DocId> = HashMap::new();
        let mut queue = VecDeque::from([(a, 0usize)]);
        let mut seen = HashSet::from([a]);
        while let Some((cur, depth)) = queue.pop_front() {
            if depth >= max_hops {
                continue;
            }
            for (next, _) in self.neighbors(cur) {
                if seen.insert(next) {
                    prev.insert(next, cur);
                    if next == b {
                        // rebuild path
                        let mut path = vec![b];
                        let mut at = b;
                        while at != a {
                            at = prev[&at];
                            path.push(at);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back((next, depth + 1));
                }
            }
        }
        None
    }

    /// Transitive closure of `seed` under the given labels (legal-discovery
    /// use case §2.1.3: "determining the transitive closure of
    /// relationships"). Bounded by `max_hops`.
    pub fn closure(&self, seed: DocId, labels: &[&str], max_hops: usize) -> Vec<DocId> {
        let mut seen = HashSet::from([seed]);
        let mut frontier = vec![seed];
        for _ in 0..max_hops {
            let mut next = Vec::new();
            for id in frontier {
                for label in labels {
                    for t in self.targets(id, label) {
                        if seen.insert(t) {
                            next.push(t);
                        }
                    }
                    for s in self.sources(id, label) {
                        if seen.insert(s) {
                            next.push(s);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        let mut out: Vec<DocId> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup_edges() {
        let j = JoinIndex::new();
        assert!(j.add_edge(DocId(1), DocId(2), "refs"));
        assert!(!j.add_edge(DocId(1), DocId(2), "refs"), "duplicate ignored");
        assert!(
            j.add_edge(DocId(1), DocId(2), "same-entity"),
            "different label is new"
        );
        assert_eq!(j.targets(DocId(1), "refs"), vec![DocId(2)]);
        assert_eq!(j.sources(DocId(2), "refs"), vec![DocId(1)]);
        assert_eq!(j.edge_count(), 2);
        assert_eq!(j.labels(), vec!["refs", "same-entity"]);
    }

    #[test]
    fn neighbors_cover_both_directions() {
        let j = JoinIndex::new();
        j.add_edge(DocId(1), DocId(2), "a");
        j.add_edge(DocId(3), DocId(1), "b");
        let n = j.neighbors(DocId(1));
        assert_eq!(
            n,
            vec![(DocId(2), "a".to_string()), (DocId(3), "b".to_string())]
        );
    }

    #[test]
    fn connect_finds_shortest_path() {
        let j = JoinIndex::new();
        // chain 1-2-3-4 plus shortcut 1-4
        j.add_edge(DocId(1), DocId(2), "r");
        j.add_edge(DocId(2), DocId(3), "r");
        j.add_edge(DocId(3), DocId(4), "r");
        j.add_edge(DocId(1), DocId(4), "s");
        let path = j.connect(DocId(1), DocId(4), 10).unwrap();
        assert_eq!(path, vec![DocId(1), DocId(4)]);
        let path23 = j.connect(DocId(2), DocId(4), 10).unwrap();
        assert_eq!(path23.len(), 3);
    }

    #[test]
    fn connect_respects_max_hops() {
        let j = JoinIndex::new();
        j.add_edge(DocId(1), DocId(2), "r");
        j.add_edge(DocId(2), DocId(3), "r");
        assert!(j.connect(DocId(1), DocId(3), 1).is_none());
        assert!(j.connect(DocId(1), DocId(3), 2).is_some());
    }

    #[test]
    fn connect_disconnected_is_none() {
        let j = JoinIndex::new();
        j.add_edge(DocId(1), DocId(2), "r");
        assert!(j.connect(DocId(1), DocId(99), 5).is_none());
    }

    #[test]
    fn connect_self_is_trivial() {
        let j = JoinIndex::new();
        assert_eq!(j.connect(DocId(7), DocId(7), 0), Some(vec![DocId(7)]));
    }

    #[test]
    fn closure_is_label_filtered_and_undirected() {
        let j = JoinIndex::new();
        j.add_edge(DocId(1), DocId(2), "partner");
        j.add_edge(DocId(3), DocId(2), "partner");
        j.add_edge(DocId(3), DocId(4), "unrelated");
        let c = j.closure(DocId(1), &["partner"], 10);
        assert_eq!(c, vec![DocId(1), DocId(2), DocId(3)]);
        let c2 = j.closure(DocId(1), &["partner", "unrelated"], 10);
        assert_eq!(c2, vec![DocId(1), DocId(2), DocId(3), DocId(4)]);
    }

    #[test]
    fn closure_bounded_by_hops() {
        let j = JoinIndex::new();
        for i in 0..10u64 {
            j.add_edge(DocId(i), DocId(i + 1), "r");
        }
        let c = j.closure(DocId(0), &["r"], 3);
        assert_eq!(c.len(), 4);
    }
}

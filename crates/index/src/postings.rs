//! Compressed positional postings lists.
//!
//! A postings list maps a term to the ordered set of document ordinals
//! containing it, with per-document term frequency and positions.
//! Ordinals and positions are delta-encoded LEB128 varints — the classic
//! inverted-file layout, built from scratch per the appliance's
//! self-contained design.

/// One document's entry in a postings list (decoded form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// Internal document ordinal (see `inverted::DocOrdinal`).
    pub ordinal: u32,
    /// Token positions of the term in the document.
    pub positions: Vec<u32>,
}

impl Posting {
    /// Term frequency in the document.
    pub fn tf(&self) -> u32 {
        self.positions.len() as u32
    }
}

/// An immutable, delta-compressed postings list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingsList {
    data: Vec<u8>,
    doc_count: u32,
}

fn write_varint(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        v |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 28 {
            return None;
        }
    }
}

impl PostingsList {
    /// Encode from postings sorted by ordinal. Panics in debug builds if
    /// the input is unsorted (encoder contract).
    pub fn from_postings(postings: &[Posting]) -> PostingsList {
        let mut data = Vec::with_capacity(postings.len() * 3);
        let mut prev_ord = 0u32;
        for (i, p) in postings.iter().enumerate() {
            debug_assert!(
                i == 0 || p.ordinal > prev_ord,
                "postings must be strictly sorted"
            );
            let delta = if i == 0 {
                p.ordinal
            } else {
                p.ordinal - prev_ord
            };
            write_varint(&mut data, delta);
            write_varint(&mut data, p.positions.len() as u32);
            let mut prev_pos = 0u32;
            for (j, &pos) in p.positions.iter().enumerate() {
                let pd = if j == 0 { pos } else { pos - prev_pos };
                write_varint(&mut data, pd);
                prev_pos = pos;
            }
            prev_ord = p.ordinal;
        }
        PostingsList {
            data,
            doc_count: postings.len() as u32,
        }
    }

    /// Number of documents in the list.
    pub fn doc_count(&self) -> u32 {
        self.doc_count
    }

    /// Encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Iterate decoded postings.
    pub fn iter(&self) -> PostingsIter<'_> {
        PostingsIter {
            data: &self.data,
            pos: 0,
            remaining: self.doc_count,
            prev_ord: 0,
        }
    }

    /// Merge two sorted lists into one. When both contain the same
    /// ordinal, `other`'s entry wins (used when re-indexing merges newer
    /// runs over older ones).
    pub fn merge(&self, other: &PostingsList) -> PostingsList {
        let mut a = self.iter();
        let mut b = other.iter();
        let mut out = Vec::new();
        let (mut x, mut y) = (a.next(), b.next());
        loop {
            match (x, y) {
                (None, None) => break,
                (Some(p), None) => {
                    out.push(p);
                    x = a.next();
                    y = None;
                }
                (None, Some(q)) => {
                    out.push(q);
                    x = None;
                    y = b.next();
                }
                (Some(p), Some(q)) => {
                    if p.ordinal < q.ordinal {
                        out.push(p);
                        x = a.next();
                        y = Some(q);
                    } else if p.ordinal > q.ordinal {
                        out.push(q);
                        x = Some(p);
                        y = b.next();
                    } else {
                        out.push(q);
                        x = a.next();
                        y = b.next();
                    }
                }
            }
        }
        PostingsList::from_postings(&out)
    }
}

/// Decoding iterator over a [`PostingsList`].
#[derive(Debug, Clone)]
pub struct PostingsIter<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: u32,
    prev_ord: u32,
}

impl Iterator for PostingsIter<'_> {
    type Item = Posting;

    fn next(&mut self) -> Option<Posting> {
        if self.remaining == 0 {
            return None;
        }
        let delta = read_varint(self.data, &mut self.pos)?;
        // First posting: prev_ord is 0 and delta is the absolute ordinal,
        // so the same addition covers both cases.
        let ordinal = self.prev_ord + delta;
        let n = read_varint(self.data, &mut self.pos)?;
        let mut positions = Vec::with_capacity(n as usize);
        let mut prev = 0u32;
        for j in 0..n {
            let pd = read_varint(self.data, &mut self.pos)?;
            let p = if j == 0 { pd } else { prev + pd };
            positions.push(p);
            prev = p;
        }
        self.prev_ord = ordinal;
        self.remaining -= 1;
        Some(Posting { ordinal, positions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ord: u32, positions: &[u32]) -> Posting {
        Posting {
            ordinal: ord,
            positions: positions.to_vec(),
        }
    }

    #[test]
    fn roundtrip_simple() {
        let postings = vec![p(0, &[1, 5, 9]), p(3, &[0]), p(1000, &[7, 8])];
        let list = PostingsList::from_postings(&postings);
        assert_eq!(list.doc_count(), 3);
        let back: Vec<Posting> = list.iter().collect();
        assert_eq!(back, postings);
    }

    #[test]
    fn roundtrip_empty() {
        let list = PostingsList::from_postings(&[]);
        assert_eq!(list.doc_count(), 0);
        assert_eq!(list.iter().count(), 0);
    }

    #[test]
    fn tf_is_position_count() {
        assert_eq!(p(1, &[2, 4, 6]).tf(), 3);
    }

    #[test]
    fn deltas_compress_dense_lists() {
        let dense: Vec<Posting> = (0..1000).map(|i| p(i, &[0])).collect();
        let list = PostingsList::from_postings(&dense);
        // 1000 postings, each ~3 bytes (delta=1, n=1, pos=0)
        assert!(list.byte_len() <= 3200, "got {}", list.byte_len());
    }

    #[test]
    fn merge_disjoint() {
        let a = PostingsList::from_postings(&[p(0, &[1]), p(2, &[1])]);
        let b = PostingsList::from_postings(&[p(1, &[1]), p(3, &[1])]);
        let m = a.merge(&b);
        let ords: Vec<u32> = m.iter().map(|x| x.ordinal).collect();
        assert_eq!(ords, vec![0, 1, 2, 3]);
    }

    #[test]
    fn merge_overlap_prefers_newer() {
        let a = PostingsList::from_postings(&[p(5, &[1, 2])]);
        let b = PostingsList::from_postings(&[p(5, &[9])]);
        let m = a.merge(&b);
        let got: Vec<Posting> = m.iter().collect();
        assert_eq!(got, vec![p(5, &[9])]);
    }

    #[test]
    fn large_ordinals_and_positions() {
        let postings = vec![p(u32::MAX / 2, &[1_000_000, 2_000_000])];
        let list = PostingsList::from_postings(&postings);
        assert_eq!(list.iter().collect::<Vec<_>>(), postings);
    }
}

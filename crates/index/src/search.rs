//! BM25 top-k keyword search over the inverted index.
//!
//! §3.2.1: "The first [query interface] is keyword-driven search, and can
//! immediately be used out of the box." Search supports AND/OR semantics,
//! optional restriction to a structural path, and returns the top-k hits
//! by BM25 — the "top-k results" retrieval characteristic the simple
//! planner exploits (§3.3).

use std::collections::BinaryHeap;
use std::collections::{HashMap, HashSet};

use impliance_docmodel::DocId;

use crate::inverted::{DocOrdinal, InvertedIndex};
use crate::tokenize::tokenize_query;

/// How multiple query terms combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// Every term must occur (conjunctive).
    #[default]
    And,
    /// Any term may occur (disjunctive).
    Or,
}

/// A keyword query.
#[derive(Debug, Clone)]
pub struct SearchQuery {
    /// Raw query text; analyzed with the document pipeline.
    pub text: String,
    /// Term combination semantics.
    pub mode: SearchMode,
    /// Restrict matching to one structural path, if set.
    pub path: Option<String>,
    /// Maximum hits returned.
    pub limit: usize,
}

impl SearchQuery {
    /// Conjunctive top-`limit` query over all paths.
    pub fn new(text: impl Into<String>, limit: usize) -> SearchQuery {
        SearchQuery {
            text: text.into(),
            mode: SearchMode::And,
            path: None,
            limit,
        }
    }

    /// Switch to disjunctive semantics.
    pub fn any_term(mut self) -> SearchQuery {
        self.mode = SearchMode::Or;
        self
    }

    /// Restrict to a structural path.
    pub fn within(mut self, path: impl Into<String>) -> SearchQuery {
        self.path = Some(path.into());
        self
    }
}

/// One search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Matching document.
    pub id: DocId,
    /// BM25 relevance score (higher is better).
    pub score: f64,
}

const BM25_K1: f64 = 1.2;
const BM25_B: f64 = 0.75;

/// Evaluation statistics from [`search_topk`]: how much of the candidate
/// space the bounded-heap / upper-bound evaluation actually touched. The
/// query pipeline folds these into `ExecStats` so top-k early termination
/// is observable, not assumed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopKStats {
    /// Candidates whose BM25 score was fully accumulated.
    pub candidates_scored: usize,
    /// Matching candidates never scored because their best-possible score
    /// (sum of remaining per-term upper bounds, MaxScore-style) could not
    /// reach the current k-th best accumulated score. Disjunctive mode
    /// only — conjunctive candidates are confined to the rarest term's
    /// postings and all survive to scoring.
    pub candidates_pruned: usize,
    /// Documents satisfying the query semantics (scored + pruned).
    pub total_matched: usize,
}

impl TopKStats {
    /// True when the evaluation did less work than scoring every match:
    /// either upper-bound pruning fired, or more documents matched than
    /// the bounded heap retained.
    pub fn early_terminated(&self, k: usize) -> bool {
        self.candidates_pruned > 0 || self.total_matched > k
    }
}

/// Execute a query against an index, returning hits ordered by descending
/// score (ties broken by ascending id for determinism).
pub fn search(index: &InvertedIndex, query: &SearchQuery) -> Vec<SearchHit> {
    search_topk(index, query).0
}

/// Top-k BM25 evaluation with upper-bound pruning and honest stats.
///
/// Terms are processed in descending order of their score upper bound
/// `idf * (k1 + 1)`. Once at least `limit` candidates have accumulated
/// partial scores and the sum of the remaining terms' upper bounds falls
/// below the k-th best partial score, a document first appearing in a
/// later postings list provably cannot reach the top-k and is skipped
/// (counted in [`TopKStats::candidates_pruned`]); already-seen candidates
/// keep accumulating, so the result is exact — identical hits, scores,
/// and tie order to scoring every match.
pub fn search_topk(index: &InvertedIndex, query: &SearchQuery) -> (Vec<SearchHit>, TopKStats) {
    let mut stats = TopKStats::default();
    let terms = tokenize_query(&query.text);
    if terms.is_empty() || query.limit == 0 {
        return (Vec::new(), stats);
    }
    let n = f64::from(index.live_docs()).max(1.0);
    let avgdl = index.avg_doc_len().max(1.0);

    // Per-term postings with idf and the per-term score upper bound
    // idf * (k1 + 1) — the supremum of the tf-normalization factor.
    struct TermList {
        idf: f64,
        ub: f64,
        postings: Vec<crate::postings::Posting>,
    }
    let mut lists: Vec<TermList> = Vec::with_capacity(terms.len());
    for term in &terms {
        let postings = index.postings(term, query.path.as_deref());
        let df = postings.len() as f64;
        if df == 0.0 {
            if query.mode == SearchMode::And {
                return (Vec::new(), stats); // a conjunctive term with no postings
            }
            continue;
        }
        let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
        lists.push(TermList {
            idf,
            ub: idf * (BM25_K1 + 1.0),
            postings,
        });
    }
    if lists.is_empty() {
        return (Vec::new(), stats);
    }
    let needed = lists.len();
    match query.mode {
        // Conjunctive: candidates are confined to the rarest term's
        // postings; process that list first so later terms only update
        // the (small) existing candidate set.
        SearchMode::And => lists.sort_by(|a, b| a.postings.len().cmp(&b.postings.len())),
        // Disjunctive: highest upper bound first, so the k-th best
        // partial score grows fast and tail terms prune hard.
        SearchMode::Or => lists.sort_by(|a, b| b.ub.total_cmp(&a.ub)),
    }
    // tail_ub[i] = sum of upper bounds of lists i.. (what a candidate
    // first appearing at list i could still score, at most).
    let mut tail_ub = vec![0.0f64; needed + 1];
    for i in (0..needed).rev() {
        tail_ub[i] = tail_ub[i + 1] + lists[i].ub;
    }

    let mut scores: HashMap<DocOrdinal, (f64, usize)> = HashMap::new();
    let mut pruned: HashSet<DocOrdinal> = HashSet::new();
    for (i, list) in lists.iter().enumerate() {
        // Threshold for admitting NEW candidates at this list: the k-th
        // best partial score so far (a lower bound on the k-th best final
        // score). Valid only once `limit` candidates exist.
        let theta = if query.mode == SearchMode::Or && i > 0 && scores.len() >= query.limit {
            let mut partials: Vec<f64> = scores.values().map(|(s, _)| *s).collect();
            partials.sort_unstable_by(|a, b| b.total_cmp(a));
            Some(partials[query.limit - 1])
        } else {
            None
        };
        for p in &list.postings {
            let is_new = !scores.contains_key(&p.ordinal);
            if is_new {
                match query.mode {
                    // AND: docs outside the rarest term's postings are
                    // non-matches, not candidates.
                    SearchMode::And if i > 0 => continue,
                    // OR: a new candidate here tops out at tail_ub[i];
                    // below theta it provably misses the top-k.
                    SearchMode::Or => {
                        if let Some(t) = theta {
                            if tail_ub[i] < t && pruned.insert(p.ordinal) {
                                continue;
                            } else if pruned.contains(&p.ordinal) {
                                continue;
                            }
                        }
                    }
                    _ => {}
                }
            }
            let tf = f64::from(p.tf());
            let dl = f64::from(index.doc_len(p.ordinal));
            let norm = tf * (BM25_K1 + 1.0) / (tf + BM25_K1 * (1.0 - BM25_B + BM25_B * dl / avgdl));
            let entry = scores.entry(p.ordinal).or_insert((0.0, 0));
            entry.0 += list.idf * norm;
            entry.1 += 1;
        }
    }

    // Top-k selection with a bounded min-heap.
    #[derive(PartialEq)]
    struct HeapEntry(f64, DocOrdinal);
    impl Eq for HeapEntry {}
    impl PartialOrd for HeapEntry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for HeapEntry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // min-heap by score, then *max* by ordinal so that the heap
            // evicts higher ordinals first on ties (keeps lowest ids).
            other.0.total_cmp(&self.0).then(self.1.cmp(&other.1))
        }
    }

    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(query.limit + 1);
    for (&ord, &(score, matched)) in &scores {
        if query.mode == SearchMode::And && matched < needed {
            continue;
        }
        stats.total_matched += 1;
        stats.candidates_scored += 1;
        heap.push(HeapEntry(score, ord));
        if heap.len() > query.limit {
            heap.pop();
        }
    }
    stats.candidates_pruned = pruned.len();
    stats.total_matched += pruned.len();

    let mut hits: Vec<SearchHit> = heap
        .into_iter()
        .filter_map(|HeapEntry(score, ord)| {
            index.resolve(ord).map(|(id, _)| SearchHit { id, score })
        })
        .collect();
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
    (hits, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use impliance_docmodel::{DocumentBuilder, SourceFormat};

    fn index_with(texts: &[&str]) -> InvertedIndex {
        let idx = InvertedIndex::new(4);
        for (i, t) in texts.iter().enumerate() {
            let d = DocumentBuilder::new(DocId(i as u64), SourceFormat::Text, "t")
                .field("body", *t)
                .build();
            idx.index_document(&d);
        }
        idx
    }

    #[test]
    fn and_requires_all_terms() {
        let idx = index_with(&["volvo bumper", "volvo hood", "saab bumper"]);
        let hits = search(&idx, &SearchQuery::new("volvo bumper", 10));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, DocId(0));
    }

    #[test]
    fn or_accepts_any_term() {
        let idx = index_with(&["volvo bumper", "volvo hood", "saab bumper"]);
        let hits = search(&idx, &SearchQuery::new("volvo bumper", 10).any_term());
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn missing_term_conjunctive_returns_empty() {
        let idx = index_with(&["volvo bumper"]);
        assert!(search(&idx, &SearchQuery::new("volvo tesla", 10)).is_empty());
    }

    #[test]
    fn rare_terms_score_higher() {
        // "common" in all docs; "rare" only in doc 2.
        let idx = index_with(&["common words", "common words", "common rare words"]);
        let hits = search(&idx, &SearchQuery::new("common rare", 10).any_term());
        assert_eq!(hits[0].id, DocId(2), "doc with rare term must rank first");
    }

    #[test]
    fn limit_caps_results_keeping_best() {
        let idx = index_with(&[
            "apple apple apple",
            "apple apple filler filler filler filler",
            "apple filler filler filler filler filler filler",
        ]);
        let hits = search(&idx, &SearchQuery::new("apple", 2));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, DocId(0), "highest tf, shortest doc first");
    }

    #[test]
    fn path_restriction() {
        let idx = InvertedIndex::new(4);
        let d = DocumentBuilder::new(DocId(1), SourceFormat::Json, "c")
            .field("title", "annual report")
            .field("body", "fraud detected in claims")
            .build();
        idx.index_document(&d);
        assert_eq!(
            search(&idx, &SearchQuery::new("fraud", 10).within("body")).len(),
            1
        );
        assert!(search(&idx, &SearchQuery::new("fraud", 10).within("title")).is_empty());
    }

    #[test]
    fn empty_query_or_zero_limit() {
        let idx = index_with(&["something"]);
        assert!(search(&idx, &SearchQuery::new("", 10)).is_empty());
        assert!(search(&idx, &SearchQuery::new("something", 0)).is_empty());
    }

    #[test]
    fn results_are_deterministic_on_ties() {
        let idx = index_with(&["same text", "same text", "same text"]);
        let hits = search(&idx, &SearchQuery::new("same", 3));
        let ids: Vec<u64> = hits.iter().map(|h| h.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn topk_equals_full_scoring_and_prunes() {
        // 100 docs all contain the ubiquitous "alpha"; every 7th also has
        // the rare "beta". With k=5 the rare term's list fills the heap
        // first and the tail upper bound prunes the alpha-only docs.
        let texts: Vec<String> = (0..100)
            .map(|i| {
                if i % 7 == 0 {
                    format!("alpha beta doc{i}")
                } else {
                    format!("alpha doc{i}")
                }
            })
            .collect();
        let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
        let idx = index_with(&refs);
        let full = search(&idx, &SearchQuery::new("alpha beta", 100).any_term());
        let (topk, stats) = search_topk(&idx, &SearchQuery::new("alpha beta", 5).any_term());
        assert_eq!(topk.len(), 5);
        for (a, b) in topk.iter().zip(full.iter()) {
            assert_eq!(a.id, b.id);
            assert!((a.score - b.score).abs() < 1e-12);
        }
        assert!(stats.candidates_pruned > 0, "tail term must prune");
        assert_eq!(stats.total_matched, 100);
        assert!(stats.early_terminated(5));
    }

    #[test]
    fn topk_stats_conjunctive_counts_matches() {
        let idx = index_with(&["volvo bumper", "volvo hood", "volvo bumper rear"]);
        let (hits, stats) = search_topk(&idx, &SearchQuery::new("volvo bumper", 1));
        assert_eq!(hits.len(), 1);
        assert_eq!(stats.total_matched, 2);
        assert_eq!(stats.candidates_pruned, 0);
        assert!(stats.early_terminated(1), "2 matched, heap kept 1");
    }

    #[test]
    fn updated_documents_searched_at_latest_version() {
        let idx = InvertedIndex::new(4);
        let d = DocumentBuilder::new(DocId(1), SourceFormat::Text, "t")
            .field("body", "draft wording")
            .build();
        idx.index_document(&d);
        let d2 = d.new_version(
            impliance_docmodel::Node::map([(
                "body".into(),
                impliance_docmodel::Node::scalar("final wording"),
            )]),
            1,
        );
        idx.index_document(&d2);
        assert!(search(&idx, &SearchQuery::new("draft", 10)).is_empty());
        assert_eq!(search(&idx, &SearchQuery::new("final", 10)).len(), 1);
    }
}

/// Exact-phrase search using token positions. A document matches when the
/// query's tokens occur at consecutive analyzed positions (stopword slots
/// included, so "jack *of* all trades" matches with `of` unindexed).
/// Hits are scored by phrase occurrence count, ties by ascending id.
///
/// Positions are document-global but contiguous per leaf, so phrases
/// match within a single field value — the intuitive behaviour.
pub fn search_phrase(
    index: &InvertedIndex,
    phrase: &str,
    path: Option<&str>,
    limit: usize,
) -> Vec<SearchHit> {
    let tokens = crate::tokenize::tokenize(phrase);
    if tokens.is_empty() || limit == 0 {
        return Vec::new();
    }
    if tokens.len() == 1 {
        let mut q = SearchQuery::new(tokens[0].text.clone(), limit);
        if let Some(p) = path {
            q = q.within(p.to_string());
        }
        return search(index, &q);
    }
    // per-term postings keyed by ordinal
    let mut term_positions: Vec<HashMap<DocOrdinal, Vec<u32>>> = Vec::new();
    for t in &tokens {
        let postings = index.postings(&t.text, path);
        if postings.is_empty() {
            return Vec::new();
        }
        term_positions.push(
            postings
                .into_iter()
                .map(|p| (p.ordinal, p.positions))
                .collect(),
        );
    }
    // candidate ordinals: those present in every term's postings
    let mut hits: Vec<(DocOrdinal, usize)> = Vec::new();
    'docs: for (&ordinal, first_positions) in &term_positions[0] {
        let mut occurrences = 0usize;
        for &base in first_positions {
            let mut ok = true;
            for (t, positions) in tokens.iter().zip(&term_positions).skip(1) {
                let want = base + t.position - tokens[0].position;
                match positions.get(&ordinal) {
                    Some(ps) if ps.binary_search(&want).is_ok() => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                occurrences += 1;
            }
        }
        if occurrences > 0 {
            hits.push((ordinal, occurrences));
            if hits.len() >= limit * 4 {
                break 'docs;
            }
        }
    }
    let mut out: Vec<SearchHit> = hits
        .into_iter()
        .filter_map(|(ord, n)| {
            index.resolve(ord).map(|(id, _)| SearchHit {
                id,
                score: n as f64,
            })
        })
        .collect();
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
    out.truncate(limit);
    out
}

#[cfg(test)]
mod phrase_tests {
    use super::*;
    use impliance_docmodel::{DocumentBuilder, SourceFormat};

    fn index_with(texts: &[&str]) -> InvertedIndex {
        let idx = InvertedIndex::new(4);
        for (i, t) in texts.iter().enumerate() {
            let d = DocumentBuilder::new(DocId(i as u64), SourceFormat::Text, "t")
                .field("body", *t)
                .build();
            idx.index_document(&d);
        }
        idx
    }

    #[test]
    fn phrase_requires_adjacency() {
        let idx = index_with(&[
            "total cost ownership matters",
            "the cost was total nonsense ownership",
            "low total cost today",
        ]);
        let hits = search_phrase(&idx, "total cost", None, 10);
        let ids: Vec<u64> = hits.iter().map(|h| h.id.0).collect();
        assert_eq!(ids, vec![0, 2], "doc 1 has both words but not adjacent");
    }

    #[test]
    fn phrase_spans_dropped_stopwords() {
        // "of" is a stopword: unindexed, but its position slot remains, so
        // any single word may fill it (standard stopword-slot semantics) —
        // while a different word count cannot.
        let idx = index_with(&[
            "jack of all trades",
            "jack likes all trades",
            "jack of nearly all trades",
        ]);
        let hits = search_phrase(&idx, "jack of all trades", None, 10);
        let ids: Vec<u64> = hits.iter().map(|h| h.id.0).collect();
        assert_eq!(
            ids,
            vec![0, 1],
            "one-word slot matches; two-word gap does not"
        );
    }

    #[test]
    fn phrase_counts_occurrences_for_ranking() {
        let idx = index_with(&["red car and red car again", "one red car only"]);
        let hits = search_phrase(&idx, "red car", None, 10);
        assert_eq!(hits[0].id, DocId(0));
        assert_eq!(hits[0].score, 2.0);
        assert_eq!(hits[1].score, 1.0);
    }

    #[test]
    fn phrase_respects_path_restriction() {
        let idx = InvertedIndex::new(4);
        let d = DocumentBuilder::new(DocId(1), SourceFormat::Json, "c")
            .field("title", "quarterly earnings call")
            .field("body", "the earnings were discussed on the call")
            .build();
        idx.index_document(&d);
        assert_eq!(
            search_phrase(&idx, "earnings call", Some("title"), 10).len(),
            1
        );
        assert!(search_phrase(&idx, "earnings call", Some("body"), 10).is_empty());
    }

    #[test]
    fn phrase_does_not_cross_field_boundaries() {
        let idx = InvertedIndex::new(4);
        let d = DocumentBuilder::new(DocId(1), SourceFormat::Json, "c")
            .field("a", "ends with alpha")
            .field("b", "beta starts here")
            .build();
        idx.index_document(&d);
        assert!(search_phrase(&idx, "alpha beta", None, 10).is_empty());
    }

    #[test]
    fn single_word_phrase_degenerates_to_term_search() {
        let idx = index_with(&["solo word"]);
        assert_eq!(search_phrase(&idx, "solo", None, 10).len(), 1);
        assert!(search_phrase(&idx, "", None, 10).is_empty());
    }
}

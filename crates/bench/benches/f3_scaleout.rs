//! F3 (Figure 3): distributed scan latency as data nodes are added.
//! The *shape* — latency dropping as data nodes increase, because each
//! node scans its partition in parallel — is the reproduction target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use impliance_bench::Corpus;
use impliance_core::{ApplianceConfig, ClusterImpliance};
use impliance_storage::{Predicate, ScanRequest};

fn cluster(data_nodes: usize, docs: usize) -> ClusterImpliance {
    let app = ClusterImpliance::boot(ApplianceConfig {
        data_nodes,
        grid_nodes: 1,
        replication: 1,
        ..ApplianceConfig::default()
    });
    let mut corpus = Corpus::new(11);
    for _ in 0..docs {
        app.ingest_json("orders", &corpus.order_json(50)).unwrap();
    }
    app
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_scan_scaleout");
    group.sample_size(10);
    for nodes in [1usize, 2, 4, 8] {
        let app = cluster(nodes, 2000);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| {
                let r = app
                    .scan(&ScanRequest::filtered(Predicate::Contains(
                        "sku".into(),
                        "bx".into(),
                    )))
                    .unwrap();
                assert!(r.metrics.docs_scanned >= 2000);
                r.documents.len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);

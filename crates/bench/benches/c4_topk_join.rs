//! C4 (§3.3): "given a keyword-search interface that requires only the
//! top-k results, indexed nested-loop joins may always be the preferred
//! join method" — the crossover between indexed NL and hash join as k
//! grows.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use impliance_bench::Corpus;
use impliance_core::{ApplianceConfig, Impliance};
use impliance_docmodel::DocId;
use impliance_query::{joins, Tuple};
use impliance_storage::{Predicate, ScanRequest};

fn bench(c: &mut Criterion) {
    let imp = Impliance::boot(ApplianceConfig::default());
    let mut corpus = Corpus::new(61);
    let po = Corpus::po_schema();
    let cu = Corpus::customer_schema();
    for _ in 0..8000 {
        imp.ingest_row(&po, corpus.purchase_order_row(800)).unwrap();
    }
    for code in 0..800 {
        imp.ingest_row(&cu, corpus.customer_row(code)).unwrap();
    }
    let orders: Vec<Tuple> = imp
        .storage()
        .scan(&ScanRequest::filtered(Predicate::CollectionIs(
            "orders".into(),
        )))
        .unwrap()
        .documents
        .into_iter()
        .map(|d| Tuple::single("o", Arc::new(d)))
        .collect();
    let customers: Vec<Tuple> = imp
        .storage()
        .scan(&ScanRequest::filtered(Predicate::CollectionIs(
            "customers".into(),
        )))
        .unwrap()
        .documents
        .into_iter()
        .map(|d| Tuple::single("c", Arc::new(d)))
        .collect();
    let lk = ("o".to_string(), "cust".to_string());
    let rk = ("c".to_string(), "code".to_string());
    let storage = imp.storage();
    let fetch = |id: DocId| storage.get_latest(id).ok().flatten().map(Arc::new);

    let mut group = c.benchmark_group("c4_topk_join");
    group.sample_size(10);
    for k in [1usize, 10, 100, 8000] {
        group.bench_with_input(BenchmarkId::new("indexed_nl", k), &k, |b, &k| {
            b.iter(|| {
                joins::indexed_nl_join(
                    orders.clone(),
                    imp.value_index(),
                    "c",
                    "code",
                    &lk,
                    &fetch,
                    Some(k),
                )
                .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("hash", k), &k, |b, &k| {
            b.iter(|| {
                let mut out = joins::hash_join(orders.clone(), customers.clone(), &lk, &rk);
                out.truncate(k);
                out.len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);

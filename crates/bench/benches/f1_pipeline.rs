//! F1 (Figure 1): ingestion throughput per format through the full
//! pipeline entry (storage + synchronous value index + queues).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use impliance_bench::Corpus;
use impliance_core::{ApplianceConfig, Impliance};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_ingest");
    group.sample_size(20);

    group.bench_function("transcript_text", |b| {
        let imp = Impliance::boot(ApplianceConfig::default());
        let mut corpus = Corpus::new(1);
        b.iter_batched(
            || corpus.transcript(),
            |t| imp.ingest_text("transcripts", &t).unwrap(),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("claim_json", |b| {
        let imp = Impliance::boot(ApplianceConfig::default());
        let mut corpus = Corpus::new(2);
        b.iter_batched(
            || corpus.claim_json(),
            |j| imp.ingest_json("claims", &j).unwrap(),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("relational_row", |b| {
        let imp = Impliance::boot(ApplianceConfig::default());
        let schema = Corpus::po_schema();
        let mut corpus = Corpus::new(3);
        b.iter_batched(
            || corpus.purchase_order_row(100),
            |row| imp.ingest_row(&schema, row).unwrap(),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("email", |b| {
        let imp = Impliance::boot(ApplianceConfig::default());
        let mut corpus = Corpus::new(4);
        b.iter_batched(
            || corpus.email(),
            |e| imp.ingest_email("mail", &e).unwrap(),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! C6 (§4): cost of update-as-new-version (append + latest-map advance)
//! and of reading history.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use impliance_bench::Corpus;
use impliance_core::{ApplianceConfig, Impliance};
use impliance_docmodel::{Node, Path, Version};

fn bench(c: &mut Criterion) {
    let imp = Impliance::boot(ApplianceConfig::default());
    let mut corpus = Corpus::new(81);
    let ids: Vec<_> = (0..1000)
        .map(|_| imp.ingest_json("claims", &corpus.claim_json()).unwrap())
        .collect();
    // create some history
    for &id in &ids {
        let doc = imp.get(id).unwrap().unwrap();
        let mut root = doc.root().clone();
        root.set(&Path::parse("revision"), Node::scalar(1i64));
        imp.update(id, root).unwrap();
    }

    let mut group = c.benchmark_group("c6_versioning");
    group.sample_size(20);

    let mut cursor = 0usize;
    group.bench_function("update_new_version", |b| {
        b.iter_batched(
            || {
                let id = ids[cursor % ids.len()];
                cursor += 1;
                let doc = imp.get(id).unwrap().unwrap();
                let mut root = doc.root().clone();
                root.set(&Path::parse("touched"), Node::scalar(cursor as i64));
                (id, root)
            },
            |(id, root)| imp.update(id, root).unwrap(),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("read_latest", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            imp.get(ids[i % ids.len()]).unwrap().unwrap().version()
        })
    });

    group.bench_function("read_point_in_time_v1", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            imp.get_version(ids[i % ids.len()], Version(1))
                .unwrap()
                .unwrap()
                .version()
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! C2 (§3.1): early data reduction — filtered scans with the predicate
//! evaluated at the storage node vs shipping whole documents.

use criterion::{criterion_group, criterion_main, Criterion};
use impliance_bench::Corpus;
use impliance_core::{ApplianceConfig, ClusterImpliance};
use impliance_docmodel::Value;
use impliance_storage::{Predicate, ScanRequest};

fn bench(c: &mut Criterion) {
    let app = ClusterImpliance::boot(ApplianceConfig {
        data_nodes: 4,
        grid_nodes: 1,
        replication: 1,
        ..ApplianceConfig::default()
    });
    let mut corpus = Corpus::new(41);
    for _ in 0..3000 {
        app.ingest_json("orders", &corpus.order_json(50)).unwrap();
    }
    let selective = Predicate::Gt("amount".into(), Value::Int(950));

    let mut group = c.benchmark_group("c2_pushdown");
    group.sample_size(10);
    group.bench_function("pushdown_filter", |b| {
        b.iter(|| {
            app.scan(&ScanRequest::filtered(selective.clone()))
                .unwrap()
                .documents
                .len()
        })
    });
    group.bench_function("ship_all_filter_at_coordinator", |b| {
        b.iter(|| {
            let res = app.scan(&ScanRequest::full()).unwrap();
            res.documents
                .iter()
                .filter(|d| selective.matches(d))
                .count()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);

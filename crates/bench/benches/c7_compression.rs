//! C7 (§3.1): compression at the storage node — raw codec throughput and
//! scan cost with compression on/off.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use impliance_bench::Corpus;
use impliance_docmodel::{text_to_document, DocId};
use impliance_storage::{compress, ScanRequest, StorageEngine, StorageOptions};

fn bench(c: &mut Criterion) {
    // raw compressor throughput
    let mut corpus = Corpus::new(91);
    let blob: Vec<u8> = (0..200)
        .map(|_| corpus.transcript())
        .collect::<Vec<_>>()
        .join(" ")
        .into_bytes();
    let compressed = compress::lz_compress(&blob);

    let mut group = c.benchmark_group("c7_codec");
    group.throughput(Throughput::Bytes(blob.len() as u64));
    group.bench_function("lz_compress", |b| {
        b.iter(|| compress::lz_compress(&blob).len())
    });
    group.bench_function("lz_decompress", |b| {
        b.iter(|| compress::lz_decompress(&compressed).unwrap().len())
    });
    group.finish();

    // scan cost with and without segment compression
    let build = |compression: bool| {
        let engine = StorageEngine::new(StorageOptions {
            partitions: 2,
            seal_threshold: 128,
            compression,
            encryption_key: None,
        });
        let mut corpus = Corpus::new(92);
        for i in 0..2000u64 {
            engine
                .put(&text_to_document(
                    DocId(i),
                    "transcripts",
                    &corpus.transcript(),
                    0,
                ))
                .unwrap();
        }
        engine.seal_all();
        engine
    };
    let compressed_engine = build(true);
    let raw_engine = build(false);

    let mut group = c.benchmark_group("c7_scan");
    group.sample_size(10);
    group.bench_function("scan_compressed", |b| {
        b.iter(|| {
            compressed_engine
                .scan(&ScanRequest::full())
                .unwrap()
                .documents
                .len()
        })
    });
    group.bench_function("scan_uncompressed", |b| {
        b.iter(|| {
            raw_engine
                .scan(&ScanRequest::full())
                .unwrap()
                .documents
                .len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);

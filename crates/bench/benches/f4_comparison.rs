//! F4 (Figure 4): the same retrieval task timed on every system class
//! that can perform it — exact lookup everywhere it is supported, content
//! search where it exists (Impliance's index vs the file store's grep).

use criterion::{criterion_group, criterion_main, Criterion};
use impliance_baselines::{ColumnType, FsStore, MiniRdbms, TableSchema};
use impliance_bench::Corpus;
use impliance_core::{ApplianceConfig, Impliance};
use impliance_docmodel::Value;

const N: usize = 2000;

fn bench(c: &mut Criterion) {
    // shared corpora
    let mut corpus = Corpus::new(21);
    let transcripts: Vec<String> = (0..N).map(|_| corpus.transcript()).collect();
    let rows: Vec<Vec<Value>> = (0..N).map(|_| corpus.purchase_order_row(100)).collect();

    // impliance
    let imp = Impliance::boot(ApplianceConfig::default());
    let schema = Corpus::po_schema();
    for r in &rows {
        imp.ingest_row(&schema, r.clone()).unwrap();
    }
    for t in &transcripts {
        imp.ingest_text("transcripts", t).unwrap();
    }
    imp.run_indexing(None);

    // rdbms
    let mut db = MiniRdbms::new();
    db.create_table(TableSchema {
        name: "orders".into(),
        columns: vec![
            ("order_id".into(), ColumnType::Int),
            ("cust".into(), ColumnType::Text),
            ("sku".into(), ColumnType::Text),
            ("qty".into(), ColumnType::Int),
            ("total".into(), ColumnType::Float),
        ],
    });
    db.create_index("orders", "cust").unwrap();
    for r in &rows {
        db.insert("orders", r.clone()).unwrap();
    }

    // file store
    let mut fs = FsStore::new();
    for (i, t) in transcripts.iter().enumerate() {
        fs.put(&format!("t{i}.txt"), t.as_bytes());
    }

    let mut group = c.benchmark_group("f4_exact_lookup");
    group.sample_size(20);
    group.bench_function("impliance_indexed", |b| {
        b.iter(|| {
            imp.value_index()
                .lookup_eq("cust", &Value::Str("C-7".into()))
                .len()
        })
    });
    group.bench_function("rdbms_indexed", |b| {
        b.iter(|| {
            db.select_eq("orders", "cust", &Value::Str("C-7".into()))
                .unwrap()
                .len()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("f4_content_search");
    group.sample_size(20);
    group.bench_function("impliance_fulltext", |b| {
        b.iter(|| imp.search("bumper refund", 10).len())
    });
    group.bench_function("fsstore_grep", |b| b.iter(|| fs.grep("refund").len()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! C1 (§3.3): planning cost — the simple planner's single pass vs the
//! cost-based optimizer's statistics-driven enumeration, plus end-to-end
//! execution under each plan.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};
use impliance_bench::Corpus;
use impliance_core::{ApplianceConfig, Impliance};
use impliance_query::{
    costopt::CostOptimizer, execute_plan, parse_sql, ExecContext, SimplePlanner,
};

fn bench(c: &mut Criterion) {
    let imp = Impliance::boot(ApplianceConfig::default());
    let schema = Corpus::po_schema();
    let mut corpus = Corpus::new(31);
    for _ in 0..5000 {
        imp.ingest_row(&schema, corpus.purchase_order_row(50))
            .unwrap();
    }
    let stats = imp.storage().stats();
    let counts = HashMap::from([("orders".to_string(), imp.storage().live_docs() as u64)]);
    let opt = CostOptimizer::new(stats, counts);
    let simple = SimplePlanner::new();
    let sql = "SELECT cust, SUM(total) AS t FROM orders WHERE qty > 5 GROUP BY cust";

    let mut group = c.benchmark_group("c1_planning");
    group.bench_function("simple_planner", |b| {
        b.iter(|| simple.plan(parse_sql(sql).unwrap()).node_count())
    });
    group.bench_function("cost_optimizer", |b| {
        b.iter(|| opt.optimize(parse_sql(sql).unwrap()).plan.node_count())
    });
    group.finish();

    let simple_plan = simple.plan(parse_sql(sql).unwrap());
    let cost_plan = opt.optimize(parse_sql(sql).unwrap()).plan;
    let ctx = ExecContext {
        storage: imp.storage(),
        text_index: imp.text_index(),
        value_index: imp.value_index(),
        join_index: imp.join_index(),
        pushdown: true,
        columnar: true,
        snapshot: None,
    };
    let mut group = c.benchmark_group("c1_execution");
    group.sample_size(15);
    group.bench_function("simple_plan_exec", |b| {
        b.iter(|| execute_plan(&ctx, &simple_plan).unwrap().0.len())
    });
    group.bench_function("cost_plan_exec", |b| {
        b.iter(|| execute_plan(&ctx, &cost_plan).unwrap().0.len())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);

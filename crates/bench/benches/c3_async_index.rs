//! C3 (§3.2): ingest latency with asynchronous background indexing vs
//! index-in-the-ingest-transaction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use impliance_bench::Corpus;
use impliance_core::{ApplianceConfig, Impliance};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("c3_ingest_latency");
    group.sample_size(30);

    group.bench_function("async_indexing", |b| {
        let imp = Impliance::boot(ApplianceConfig::default());
        let mut corpus = Corpus::new(51);
        b.iter_batched(
            || corpus.transcript(),
            |t| imp.ingest_text("transcripts", &t).unwrap(),
            BatchSize::SmallInput,
        );
    });

    group.bench_function("synchronous_indexing", |b| {
        let imp = Impliance::boot(ApplianceConfig {
            synchronous_indexing: true,
            ..ApplianceConfig::default()
        });
        let mut corpus = Corpus::new(51);
        b.iter_batched(
            || corpus.transcript(),
            |t| imp.ingest_text("transcripts", &t).unwrap(),
            BatchSize::SmallInput,
        );
    });

    group.finish();

    // the deferred cost: draining the backlog in batch
    let mut group = c.benchmark_group("c3_backlog_drain");
    group.sample_size(10);
    group.bench_function("drain_1000_docs", |b| {
        b.iter_batched(
            || {
                let imp = Impliance::boot(ApplianceConfig::default());
                let mut corpus = Corpus::new(52);
                for _ in 0..1000 {
                    imp.ingest_text("transcripts", &corpus.transcript())
                        .unwrap();
                }
                imp
            },
            |imp| imp.run_indexing(None),
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! F2 (Figure 2): cost of building the system-supplied relational views
//! over annotations, and of SQL over annotation collections.

use criterion::{criterion_group, criterion_main, Criterion};
use impliance_bench::Corpus;
use impliance_core::{views, ApplianceConfig, Impliance, QueryRequest};

fn appliance(n: usize) -> Impliance {
    let imp = Impliance::boot(ApplianceConfig::default());
    let mut corpus = Corpus::new(7);
    for _ in 0..n {
        imp.ingest_text("transcripts", &corpus.transcript())
            .unwrap();
    }
    imp.quiesce();
    imp
}

fn bench(c: &mut Criterion) {
    let imp = appliance(500);
    let mut group = c.benchmark_group("f2_views");
    group.sample_size(20);

    group.bench_function("entity_view_500docs", |b| {
        b.iter(|| {
            let rows = views::entity_view(&imp).unwrap();
            assert!(!rows.is_empty());
            rows.len()
        })
    });

    group.bench_function("sentiment_view_500docs", |b| {
        b.iter(|| views::sentiment_view(&imp).unwrap().len())
    });

    group.bench_function("entities_joined_to_base", |b| {
        b.iter(|| views::entities_with_base(&imp, "body").unwrap().len())
    });

    group.bench_function("sql_over_annotations", |b| {
        b.iter(|| {
            imp.query(
                QueryRequest::builder("SELECT COUNT(*) AS n FROM annotations.entities").build(),
            )
            .unwrap()
            .rows()
            .len()
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);

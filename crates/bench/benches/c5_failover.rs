//! C5 (§3.4): autonomous recovery time after a data-node failure, per
//! replication factor.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use impliance_bench::Corpus;
use impliance_cluster::NodeKind;
use impliance_core::{ApplianceConfig, ClusterImpliance};

fn loaded_cluster(replication: usize) -> ClusterImpliance {
    let app = ClusterImpliance::boot(ApplianceConfig {
        data_nodes: 6,
        grid_nodes: 1,
        replication,
        ..ApplianceConfig::default()
    });
    let mut corpus = Corpus::new(71);
    for _ in 0..1000 {
        app.ingest_json("orders", &corpus.order_json(50)).unwrap();
    }
    app
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("c5_recovery");
    group.sample_size(10);
    for replication in [2usize, 3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(replication),
            &replication,
            |b, &r| {
                b.iter_batched(
                    || loaded_cluster(r),
                    |app| {
                        let victim = app.runtime().nodes_of_kind(NodeKind::Data)[2];
                        let report = app.kill_data_node(victim).unwrap();
                        assert_eq!(report.docs_lost, 0);
                        report.docs_repaired
                    },
                    BatchSize::PerIteration,
                );
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! C8 (§3.3): annotation-extraction throughput — per-document annotator
//! cost and pipeline drain rate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use impliance_annotate::{scan_entities, sentiment_score};
use impliance_bench::Corpus;
use impliance_core::{ApplianceConfig, Impliance};

fn bench(c: &mut Criterion) {
    let mut corpus = Corpus::new(101);
    let transcripts: Vec<String> = (0..200).map(|_| corpus.transcript()).collect();

    let mut group = c.benchmark_group("c8_annotators");
    group.bench_function("entity_scan_per_doc", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            scan_entities(&transcripts[i % transcripts.len()]).len()
        })
    });
    group.bench_function("sentiment_per_doc", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            sentiment_score(&transcripts[i % transcripts.len()])
        })
    });
    group.finish();

    let mut group = c.benchmark_group("c8_pipeline");
    group.sample_size(10);
    group.bench_function("drain_500_transcripts", |b| {
        b.iter_batched(
            || {
                let imp = Impliance::boot(ApplianceConfig::default());
                let mut corpus = Corpus::new(102);
                for _ in 0..500 {
                    imp.ingest_text("transcripts", &corpus.transcript())
                        .unwrap();
                }
                imp
            },
            |imp| imp.run_discovery(None),
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Deterministic synthetic corpora for the §2.1 use cases.
//!
//! Everything is seeded: the same seed produces byte-identical corpora,
//! so experiments are reproducible run to run.

use impliance_docmodel::{RelationalSchema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use impliance_annotate::scan::{FIRST_NAMES, LOCATIONS};

const SURNAMES: &[&str] = &[
    "Anderson", "Baker", "Chen", "Davis", "Engel", "Fischer", "Garcia", "Hopper", "Ishikawa",
    "Johnson", "Kim", "Lovelace", "Miller", "Nguyen", "Olsen", "Patel", "Quinn", "Rivera", "Smith",
    "Turing",
];

const PRODUCTS: &[&str] = &["BX", "AX", "CW", "DZ", "MK"];

const COMPLAINT_PHRASES: &[&str] = &[
    "the unit arrived broken and I am very disappointed",
    "this is my third complaint about the same problem",
    "the part was late and the packaging was terrible",
    "I want a refund because the device is defective",
    "support was unhelpful and I am quite upset",
];

const PRAISE_PHRASES: &[&str] = &[
    "the replacement works great and I am very happy",
    "excellent service, thanks for the quick turnaround",
    "I would recommend this product, it is reliable",
    "the technician was helpful and I am pleased",
    "wonderful experience overall, thanks again",
];

const NEUTRAL_PHRASES: &[&str] = &[
    "please confirm the shipping address on file",
    "the serial number is printed under the base plate",
    "I am calling to check the status of my case",
    "the manual mentions a firmware update procedure",
];

const DAMAGE_PARTS: &[&str] = &[
    "bumper",
    "hood",
    "windshield",
    "door panel",
    "mirror",
    "tail light",
];

/// Deterministic corpus generator.
pub struct Corpus {
    rng: StdRng,
    next_customer: u32,
}

impl Corpus {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Corpus {
        Corpus {
            rng: StdRng::seed_from_u64(seed),
            next_customer: 0,
        }
    }

    fn pick<'a>(&mut self, items: &[&'a str]) -> &'a str {
        items[self.rng.gen_range(0..items.len())]
    }

    /// A person name drawn from the annotator-recognizable lexicons.
    pub fn person(&mut self) -> String {
        format!("{} {}", self.pick(FIRST_NAMES), self.pick(SURNAMES))
    }

    /// A product code like `BX-1042`.
    pub fn product_code(&mut self) -> String {
        format!("{}-{}", self.pick(PRODUCTS), self.rng.gen_range(100..9999))
    }

    /// A location from the gazetteer.
    pub fn location(&mut self) -> String {
        self.pick(LOCATIONS).to_string()
    }

    /// A customer code like `C-17`, cycling through `n_customers`.
    pub fn customer_code(&mut self, n_customers: u32) -> String {
        let c = self.next_customer % n_customers.max(1);
        self.next_customer += 1;
        format!("C-{c}")
    }

    /// §2.1.1: a call-center transcript mentioning a person, a product,
    /// a location, and sentiment-bearing language.
    pub fn transcript(&mut self) -> String {
        let person = self.person();
        let product = self.product_code();
        let location = self.location();
        let mood = self.rng.gen_range(0..3);
        let phrase = match mood {
            0 => self.pick(COMPLAINT_PHRASES),
            1 => self.pick(PRAISE_PHRASES),
            _ => self.pick(NEUTRAL_PHRASES),
        };
        format!(
            "Call transcript: {person} calling from {location} about product {product}. \
             Customer said: {phrase}. Follow up on {}-{:02}-{:02}.",
            self.rng.gen_range(2005..2008),
            self.rng.gen_range(1..13),
            self.rng.gen_range(1..29),
        )
    }

    /// §2.1.2: an insurance claim as JSON, with nested structure.
    pub fn claim_json(&mut self) -> String {
        let claimant = self.person();
        let part = self.pick(DAMAGE_PARTS);
        let amount = self.rng.gen_range(50..5000);
        let make = self.pick(&["Volvo", "Saab", "Tesla", "Ford"]);
        let city = self.location();
        format!(
            r#"{{"claimant": "{claimant}", "city": "{city}", "amount": {amount}, "vehicle": {{"make": "{make}", "year": {}}}, "notes": "Damage to the {part}; estimate covers parts and labor. {claimant} filed in {city}."}}"#,
            self.rng.gen_range(1995..2007)
        )
    }

    /// §2.1.3: an e-mail between employees, sometimes referencing a
    /// contract partner.
    pub fn email(&mut self) -> String {
        let from = self.person().to_lowercase().replace(' ', ".");
        let to = self.person().to_lowercase().replace(' ', ".");
        let partner = self.pick(&["Acme Widgets Inc.", "Globex Corp", "Initech LLC"]);
        let product = self.product_code();
        format!(
            "From: {from}@example.com\nTo: {to}@example.com\nSubject: {partner} contract\n\n\
             Regarding our agreement with {partner}: the delivery of {product} is confirmed \
             for next quarter. Keep this thread for the compliance archive.\n"
        )
    }

    /// A purchase-order relational row matching [`Corpus::po_schema`].
    pub fn purchase_order_row(&mut self, n_customers: u32) -> Vec<Value> {
        vec![
            Value::Int(self.rng.gen_range(1..1_000_000)),
            Value::Str(self.customer_code(n_customers)),
            Value::Str(self.product_code()),
            Value::Int(self.rng.gen_range(1..20)),
            Value::Float(f64::from(self.rng.gen_range(500..50_000)) / 100.0),
        ]
    }

    /// The purchase-order table schema.
    pub fn po_schema() -> RelationalSchema {
        RelationalSchema::new("orders", &["order_id", "cust", "sku", "qty", "total"])
    }

    /// A customer master-data row matching [`Corpus::customer_schema`].
    pub fn customer_row(&mut self, code: u32) -> Vec<Value> {
        vec![
            Value::Str(format!("C-{code}")),
            Value::Str(self.person()),
            Value::Str(self.location()),
        ]
    }

    /// The customer table schema.
    pub fn customer_schema() -> RelationalSchema {
        RelationalSchema::new("customers", &["code", "name", "city"])
    }

    /// A flat order document as JSON (for cluster ingestion where the
    /// relational path is not under test).
    pub fn order_json(&mut self, n_customers: u32) -> String {
        format!(
            r#"{{"cust": "{}", "sku": "{}", "amount": {}}}"#,
            self.customer_code(n_customers),
            self.product_code(),
            self.rng.gen_range(1..1000)
        )
    }

    /// An integer in a range (exposed for sweeps).
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impliance_annotate::scan_entities;

    #[test]
    fn corpora_are_deterministic() {
        let mut a = Corpus::new(7);
        let mut b = Corpus::new(7);
        assert_eq!(a.transcript(), b.transcript());
        assert_eq!(a.claim_json(), b.claim_json());
        assert_eq!(a.email(), b.email());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Corpus::new(1);
        let mut b = Corpus::new(2);
        assert_ne!(a.transcript(), b.transcript());
    }

    #[test]
    fn transcripts_carry_recognizable_entities() {
        let mut c = Corpus::new(42);
        let t = c.transcript();
        let kinds: Vec<_> = scan_entities(&t).into_iter().map(|m| m.kind).collect();
        assert!(
            kinds.contains(&impliance_annotate::EntityKind::Person),
            "{t}"
        );
        assert!(
            kinds.contains(&impliance_annotate::EntityKind::ProductCode),
            "{t}"
        );
        assert!(
            kinds.contains(&impliance_annotate::EntityKind::Location),
            "{t}"
        );
    }

    #[test]
    fn claims_parse_as_json() {
        let mut c = Corpus::new(9);
        for _ in 0..50 {
            let j = c.claim_json();
            assert!(impliance_docmodel::json::parse(&j).is_ok(), "{j}");
        }
    }

    #[test]
    fn rows_match_schemas() {
        let mut c = Corpus::new(3);
        assert_eq!(
            c.purchase_order_row(10).len(),
            Corpus::po_schema().columns.len()
        );
        assert_eq!(
            c.customer_row(1).len(),
            Corpus::customer_schema().columns.len()
        );
    }

    #[test]
    fn customer_codes_cycle() {
        let mut c = Corpus::new(3);
        let codes: Vec<String> = (0..6).map(|_| c.customer_code(3)).collect();
        assert_eq!(codes, vec!["C-0", "C-1", "C-2", "C-0", "C-1", "C-2"]);
    }
}

//! Plain-text tables for the figures harness.

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Format a byte count in adaptive units.
pub fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{:.2}MiB", b as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("alpha  1"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_duration(std::time::Duration::from_micros(500)), "500µs");
        assert_eq!(
            fmt_duration(std::time::Duration::from_millis(20)),
            "20.00ms"
        );
        assert_eq!(fmt_bytes(100), "100B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
    }
}

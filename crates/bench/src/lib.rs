//! # Impliance benchmark harness
//!
//! Workload generators and reporting helpers shared by the criterion
//! benches (`benches/`) and the `figures` binary, which regenerates every
//! experiment in EXPERIMENTS.md (the paper's Figures 1–4 plus the
//! falsifiable §3/§4 claims C1–C8).
//!
//! The paper's corpora (call-center transcripts, insurance claims,
//! enterprise e-mail, purchase orders) are proprietary; [`corpus`]
//! generates deterministic synthetic equivalents that exercise the same
//! code paths — entity mentions, sentiment vocabulary, cross-document
//! references, schema diversity (see DESIGN.md's substitution table).

pub mod corpus;
pub mod report;

pub use corpus::Corpus;
pub use report::Table;

//! Hybrid retrieval benchmark. Emits `BENCH_search.json` in the
//! workspace root and exits non-zero unless the retrieval gates hold.
//!
//! The corpus is a seeded synthetic claims collection with a skewed term
//! distribution (a few very common terms, a long tail of rare ones), so
//! top-k queries over common terms have large candidate sets — exactly
//! where early termination earns its keep.
//!
//! Measurements:
//!
//! * **QPS** — wall-clock throughput of `match_text(..).top_k(10)`
//!   queries through the full redesigned API (admission, plan cache off,
//!   IndexScan operator, scored rows).
//! * **Early-termination ratio** — fraction of queries whose `ExecStats`
//!   report the bounded-heap / upper-bound machinery doing less work
//!   than scoring every match.
//! * **Index-lag watermark** — `index_epoch` vs the storage epoch right
//!   after ingest (maintenance pending) and after `run_indexing` drains
//!   the change feed (caught up).
//! * **Row equality vs brute force** — every measured query's rows are
//!   checked against a full-scoring reference with no pruning.
//!
//! Gates:
//!
//! * every query's rows equal the brute-force reference (ids and scores);
//! * at least half the measured queries terminate early;
//! * after ingest the index watermark visibly lags the storage epoch,
//!   and after maintenance it catches up (lag zero, backlog zero);
//! * scored rows arrive ordered (score descending, ties by id ascending).

use std::time::Instant;

use impliance_core::{ApplianceConfig, Impliance, QueryRequest};
use impliance_docmodel::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DOCS: usize = 2_000;
const QUERY_ROUNDS: usize = 50;
const TOP_K: usize = 10;

/// Common head terms (appear in most documents) and rare tail terms.
const HEAD: &[&str] = &["claim", "vehicle", "damage", "inspection"];
const TAIL: &[&str] = &[
    "bumper",
    "windshield",
    "hood",
    "mirror",
    "fender",
    "radiator",
    "axle",
    "tailgate",
    "sunroof",
    "chassis",
];

fn corpus_doc(rng: &mut StdRng, i: usize) -> String {
    let mut words: Vec<&str> = Vec::new();
    for h in HEAD {
        if rng.gen_range(0..10) < 8 {
            words.push(h);
        }
    }
    let tails = rng.gen_range(1..4);
    for _ in 0..tails {
        words.push(TAIL[rng.gen_range(0..TAIL.len())]);
    }
    // Variable padding so document lengths (and BM25 normalization) vary.
    let pad = rng.gen_range(0..12);
    for _ in 0..pad {
        words.push("routine");
    }
    format!(
        r#"{{"amount": {}, "notes": "{}"}}"#,
        i * 7 % 1000,
        words.join(" ")
    )
}

/// Full-scoring reference: limit = live docs means the bounded heap never
/// evicts and the MaxScore bound never prunes, so every match is scored.
fn brute_force(imp: &Impliance, query: &str, k: usize) -> Vec<(i64, f64)> {
    let idx = imp.text_index();
    let q = impliance_index::search::SearchQuery::new(query, (idx.live_docs() as usize).max(1));
    // The reference must bypass the pipeline under test; bench-only oracle.
    // impliance-lint: allow(L13)
    let (hits, _stats) = impliance_index::search::search_topk(idx, &q);
    hits.into_iter()
        .take(k)
        .map(|h| (h.id.0 as i64, h.score))
        .collect()
}

fn pipeline_rows(imp: &Impliance, query: &str, k: usize) -> (Vec<(i64, f64)>, bool) {
    let resp = imp
        .query(
            QueryRequest::builder("")
                .match_text("*", query)
                .top_k(k)
                .plan_cache(false)
                .build(),
        )
        .expect("search query");
    let stats = resp.exec_stats();
    let rows = resp
        .rows()
        .iter()
        .map(|row| {
            let Value::Int(id) = row.get("id") else {
                panic!("row without id: {row:?}");
            };
            let Value::Float(score) = row.get("score") else {
                panic!("row without score: {row:?}");
            };
            (*id, *score)
        })
        .collect();
    (rows, stats.early_terminations > 0)
}

fn main() {
    let imp = Impliance::boot(ApplianceConfig::default());
    let mut rng = StdRng::seed_from_u64(42);
    for i in 0..DOCS {
        imp.ingest_json("claims", &corpus_doc(&mut rng, i))
            .expect("ingest");
    }

    // Freshness watermark before maintenance: the change feed holds the
    // whole corpus, so the index must admit it is behind.
    let storage_epoch = imp.storage().current_epoch();
    let epoch_before = imp.index_epoch();
    let backlog_before = imp.indexing_backlog();
    let maintain_start = Instant::now();
    let maintained = imp.run_indexing(None);
    let maintain_secs = maintain_start.elapsed().as_secs_f64();
    let epoch_after = imp.index_epoch();
    let backlog_after = imp.indexing_backlog();
    let lag_after = imp.storage().current_epoch().saturating_sub(epoch_after);

    // Query mix: head-term queries (large candidate sets, pruning
    // matters) and head+tail pairs (selective).
    let mut queries: Vec<String> = Vec::new();
    for h in HEAD {
        queries.push((*h).to_string());
    }
    for (i, t) in TAIL.iter().enumerate() {
        queries.push(format!("{} {}", HEAD[i % HEAD.len()], t));
    }

    let mut total_queries = 0usize;
    let mut early_terminated = 0usize;
    let mut rows_equal = true;
    let mut rows_ordered = true;
    let qps_start = Instant::now();
    for _ in 0..QUERY_ROUNDS {
        for q in &queries {
            let (rows, early) = pipeline_rows(&imp, q, TOP_K);
            total_queries += 1;
            if early {
                early_terminated += 1;
            }
            for w in rows.windows(2) {
                if w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 >= w[1].0) {
                    rows_ordered = false;
                }
            }
            if rows != brute_force(&imp, q, TOP_K) {
                rows_equal = false;
            }
        }
    }
    let elapsed = qps_start.elapsed().as_secs_f64();
    // Wall-clock includes the brute-force verification; report the
    // pipeline-only half honestly by measuring a second verification-free
    // sweep.
    let clean_start = Instant::now();
    for _ in 0..QUERY_ROUNDS {
        for q in &queries {
            let _ = pipeline_rows(&imp, q, TOP_K);
        }
    }
    let clean_elapsed = clean_start.elapsed().as_secs_f64().max(1e-9);
    let qps = (total_queries as f64) / clean_elapsed;
    let early_ratio = early_terminated as f64 / total_queries.max(1) as f64;

    let json = format!(
        "{{\n  \"bench\": \"search\",\n  \"docs\": {DOCS},\n  \"queries\": {total_queries},\n  \
         \"top_k\": {TOP_K},\n  \"qps\": {qps:.1},\n  \
         \"verified_sweep_secs\": {elapsed:.3},\n  \
         \"early_termination_ratio\": {early_ratio:.3},\n  \
         \"rows_equal_brute_force\": {rows_equal},\n  \"rows_ordered\": {rows_ordered},\n  \
         \"index_maintenance\": {{\n    \"records_consumed\": {maintained},\n    \
         \"maintain_secs\": {maintain_secs:.3},\n    \"storage_epoch\": {storage_epoch},\n    \
         \"index_epoch_before\": {epoch_before},\n    \"backlog_before\": {backlog_before},\n    \
         \"index_epoch_after\": {epoch_after},\n    \"backlog_after\": {backlog_after},\n    \
         \"lag_after\": {lag_after}\n  }}\n}}\n"
    );
    std::fs::write("BENCH_search.json", &json).expect("write BENCH_search.json");
    print!("{json}");

    let mut failed = false;
    if !rows_equal {
        eprintln!("FAIL: pipeline rows diverged from the brute-force reference");
        failed = true;
    }
    if !rows_ordered {
        eprintln!("FAIL: rows not ordered by (score desc, id asc)");
        failed = true;
    }
    if early_ratio < 0.5 {
        eprintln!("FAIL: early-termination ratio {early_ratio:.3} below 0.5");
        failed = true;
    }
    if epoch_before >= storage_epoch {
        eprintln!(
            "FAIL: index watermark {epoch_before} not behind storage epoch {storage_epoch} \
             before maintenance"
        );
        failed = true;
    }
    if backlog_after != 0 || lag_after != 0 {
        eprintln!("FAIL: maintenance left backlog={backlog_after} lag={lag_after}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

//! The experiment harness: regenerates every figure and claim experiment
//! from EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p impliance-bench --bin figures [f1|f2|f3|f4|c1..c8|all]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use impliance_annotate::SchemaMapper;
use impliance_baselines::{
    BiAppliance, ColumnType, ContentStore, FsStore, InfoSystem, MiniRdbms, TableSchema,
    ALL_CAPABILITIES,
};
use impliance_bench::report::{fmt_bytes, fmt_duration};
use impliance_bench::{Corpus, Table};
use impliance_cluster::NodeKind;
use impliance_core::{views, ApplianceConfig, ClusterImpliance, Impliance, QueryRequest};
use impliance_docmodel::{DocId, Value};
use impliance_query::{costopt::CostOptimizer, joins, parse_sql, SimplePlanner, Tuple};
use impliance_storage::{
    AggFunc, AggSpec, Predicate, Projection, ScanRequest, StorageEngine, StorageOptions,
};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    println!("Impliance experiment harness — reproducing CIDR 2007 figures & claims\n");
    if all || which == "f1" {
        f1_pipeline();
    }
    if all || which == "f2" {
        f2_views();
    }
    if all || which == "f3" {
        f3_scaleout();
    }
    if all || which == "f4" {
        f4_comparison();
    }
    if all || which == "c1" {
        c1_planner();
    }
    if all || which == "c2" {
        c2_pushdown();
    }
    if all || which == "c3" {
        c3_async_indexing();
    }
    if all || which == "c4" {
        c4_topk_join();
    }
    if all || which == "c5" {
        c5_failover();
    }
    if all || which == "c6" {
        c6_versioning();
    }
    if all || which == "c7" {
        c7_compression();
    }
    if all || which == "c8" {
        c8_discovery();
    }
    if all || which == "c9" {
        c9_interleaving();
    }
    obs_snapshot();
}

// ---------------------------------------------------------------------
// Observability snapshot: every experiment above funnels its storage,
// query, cluster, and annotate activity through the workspace metrics
// registry; dump it so a figures run is self-describing.
// ---------------------------------------------------------------------

fn obs_snapshot() {
    let snap = impliance_obs::global().snapshot();
    println!("\n=== observability snapshot (metrics registry + trace rings) ===");
    println!("{}", snap.to_json().pretty());
}

// ---------------------------------------------------------------------
// C9 — execution management: interleaving discovery with queries (§3.4)
// ---------------------------------------------------------------------

fn c9_interleaving() {
    // A 2000-document discovery backlog exists at t=0; 50 interactive
    // queries arrive every 5ms. Two schedulers dispatch one task at a
    // time with *measured* service times:
    //   fifo        — arrival order (queries wait behind the backlog)
    //   interleaved — the execution manager: interactive preempts,
    //                 background keeps a guaranteed share
    use impliance_query::clock::ManualTime;
    use impliance_virt::{ExecutionManager, TaskClass};
    use std::sync::Arc;

    const QUERIES: usize = 50;
    const BATCHES: usize = 100; // × 20 docs = the whole backlog
    const ARRIVAL_GAP_US: u64 = 5_000;

    let mut table = Table::new(
        "C9 — interleaving background discovery with interactive queries",
        &[
            "policy",
            "interactive mean",
            "interactive p95",
            "backlog done at",
        ],
    );

    for policy in ["fifo", "interleaved"] {
        let imp = Impliance::boot(ApplianceConfig::default());
        let mut corpus = Corpus::new(15);
        let schema = Corpus::po_schema();
        for _ in 0..2000 {
            imp.ingest_text("transcripts", &corpus.transcript())
                .unwrap();
        }
        for _ in 0..500 {
            imp.ingest_row(&schema, corpus.purchase_order_row(20))
                .unwrap();
        }

        let mgr_time = Arc::new(ManualTime::new());
        let mgr = ExecutionManager::with_time_source(8, 1, mgr_time.clone());
        // background batches all queued at t=0
        for b in 0..BATCHES {
            mgr.submit(10_000 + b as u64, TaskClass::Background);
        }
        let mut clock_us: u64 = 0;
        let mut next_arrival = 0usize;
        let mut latencies: Vec<u64> = Vec::new();
        let mut backlog_done_at: Option<u64> = None;
        let mut fifo_phase_bg = 0usize; // fifo dispatch cursor
        let mut batches_run = 0usize;

        while latencies.len() < QUERIES || batches_run < BATCHES {
            // admit arrivals up to the current clock
            mgr_time.set_us(clock_us);
            while next_arrival < QUERIES && (next_arrival as u64 * ARRIVAL_GAP_US) <= clock_us {
                mgr.submit(next_arrival as u64, TaskClass::Interactive);
                next_arrival += 1;
            }
            // choose the next task per policy
            let run_background = match policy {
                // fifo: everything queued at t=0 runs first
                "fifo" => fifo_phase_bg < BATCHES,
                _ => {
                    // the execution manager decides
                    match mgr.next() {
                        Some(t) => t.class == TaskClass::Background,
                        None => {
                            // idle: jump to the next arrival
                            clock_us = next_arrival as u64 * ARRIVAL_GAP_US;
                            continue;
                        }
                    }
                }
            };
            if run_background && batches_run >= BATCHES {
                continue;
            }
            if run_background {
                let t0 = Instant::now();
                imp.run_discovery(Some(20));
                clock_us += t0.elapsed().as_micros() as u64;
                batches_run += 1;
                if policy == "fifo" {
                    fifo_phase_bg += 1;
                }
                if batches_run == BATCHES {
                    backlog_done_at = Some(clock_us);
                }
            } else {
                // an interactive query; in fifo mode pull arrival order
                let arrived = latencies.len();
                if arrived >= QUERIES {
                    continue;
                }
                let arrival_us = arrived as u64 * ARRIVAL_GAP_US;
                if clock_us < arrival_us {
                    clock_us = arrival_us; // idle until it arrives
                }
                let t0 = Instant::now();
                let _ = imp.query(
                    QueryRequest::builder("SELECT cust, SUM(total) AS t FROM orders GROUP BY cust")
                        .build(),
                );
                clock_us += t0.elapsed().as_micros() as u64;
                latencies.push(clock_us - arrival_us);
            }
        }
        latencies.sort_unstable();
        let mean = latencies.iter().sum::<u64>() / latencies.len() as u64;
        let p95 = latencies[latencies.len() * 95 / 100];
        table.row(&[
            policy.into(),
            fmt_duration(Duration::from_micros(mean)),
            fmt_duration(Duration::from_micros(p95)),
            fmt_duration(Duration::from_micros(backlog_done_at.unwrap_or(0))),
        ]);
    }
    table.print();
}

// ---------------------------------------------------------------------
// F1 — Figure 1: the overview pipeline and time-to-value
// ---------------------------------------------------------------------

fn f1_pipeline() {
    const N: usize = 1500;
    let mut corpus = Corpus::new(1);
    let mut mixed: Vec<(u8, String)> = Vec::new();
    for i in 0..N {
        mixed.push(match i % 3 {
            0 => (0, corpus.transcript()),
            1 => (1, corpus.claim_json()),
            _ => (2, corpus.email()),
        });
    }

    // Impliance: no preparation, ingest everything, query immediately.
    let imp = Impliance::boot(ApplianceConfig::default());
    let t0 = Instant::now();
    for (kind, body) in &mixed {
        match kind {
            0 => imp.ingest_text("transcripts", body).map(|_| ()).unwrap(),
            1 => imp.ingest_json("claims", body).map(|_| ()).unwrap(),
            _ => imp.ingest_email("mail", body).map(|_| ()).unwrap(),
        }
    }
    let ingest_time = t0.elapsed();
    // SQL answer available immediately (value index is synchronous):
    let t_sql = Instant::now();
    let sql_rows = imp
        .query(
            QueryRequest::builder("SELECT COUNT(*) AS n FROM claims WHERE amount > 1000").build(),
        )
        .unwrap();
    let sql_latency = t_sql.elapsed();
    // keyword answers appear after the asynchronous text-index pass:
    let t_idx = Instant::now();
    imp.run_indexing(None);
    let index_time = t_idx.elapsed();
    let hits = imp.search("bumper", 10).len();
    // discovery deepens answers further:
    let t_disc = Instant::now();
    imp.run_discovery(None);
    imp.run_indexing(None);
    let discovery_time = t_disc.elapsed();
    let entities = views::entity_view(&imp).unwrap().len();

    // RDBMS baseline: schema design gates everything; text is rejected.
    let mut db = MiniRdbms::new();
    let t1 = Instant::now();
    db.create_table(TableSchema {
        name: "claims".into(),
        columns: vec![
            ("claimant".into(), ColumnType::Text),
            ("amount".into(), ColumnType::Float),
        ],
    });
    db.create_index("claims", "amount").unwrap();
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    for (kind, body) in &mixed {
        if *kind == 1 {
            // a human-written loader extracts two fields from the JSON
            let parsed = impliance_docmodel::json::parse(body).unwrap();
            let claimant = parsed
                .get_str_path("claimant")
                .unwrap()
                .as_value()
                .unwrap()
                .clone();
            let amount = parsed
                .get_str_path("amount")
                .unwrap()
                .as_value()
                .unwrap()
                .as_f64()
                .unwrap();
            db.insert("claims", vec![claimant, Value::Float(amount)])
                .unwrap();
            accepted += 1;
        } else {
            rejected += 1; // transcripts and e-mail have no table
        }
    }
    let rdbms_time = t1.elapsed();

    let mut t = Table::new(
        "F1 — Figure 1 pipeline: ingest→query→discover (1500 mixed documents)",
        &["stage", "impliance", "mini-rdbms"],
    );
    t.row(&[
        "setup (admin ops)".into(),
        imp.admin_ops().to_string(),
        format!("{} (schema+index design)", db.admin_ops()),
    ]);
    t.row(&[
        "documents accepted".into(),
        format!("{N}/{N} (all formats)"),
        format!("{accepted}/{N} ({rejected} rejected)"),
    ]);
    t.row(&[
        "ingest time".into(),
        fmt_duration(ingest_time),
        fmt_duration(rdbms_time),
    ]);
    t.row(&[
        "SQL usable".into(),
        format!(
            "immediately ({} in {})",
            sql_rows.rows()[0].get("n").render(),
            fmt_duration(sql_latency)
        ),
        "after schema design".into(),
    ]);
    t.row(&[
        "keyword search usable".into(),
        format!(
            "after async index ({}) — {} hits for 'bumper'",
            fmt_duration(index_time),
            hits
        ),
        "never (content unsearchable)".into(),
    ]);
    t.row(&[
        "discovered entity rows".into(),
        format!(
            "{entities} (after {} discovery)",
            fmt_duration(discovery_time)
        ),
        "0".into(),
    ]);
    t.print();
}

// ---------------------------------------------------------------------
// F2 — Figure 2: data modeling, annotation lag, and views
// ---------------------------------------------------------------------

fn f2_views() {
    let imp = Impliance::boot(ApplianceConfig::default());
    let mut corpus = Corpus::new(2);
    let schema = Corpus::po_schema();
    for _ in 0..500 {
        imp.ingest_row(&schema, corpus.purchase_order_row(20))
            .unwrap();
    }
    for _ in 0..300 {
        imp.ingest_text("transcripts", &corpus.transcript())
            .unwrap();
    }

    let mut t = Table::new(
        "F2 — Figure 2 data modeling: rows → documents → annotations → views",
        &["observable", "value"],
    );
    // immediate SQL over freshly ingested rows
    let q = Instant::now();
    let rows = imp
        .query(QueryRequest::builder("SELECT COUNT(*) AS n FROM orders").build())
        .unwrap();
    t.row(&[
        "SQL over rows pre-discovery".into(),
        format!(
            "COUNT(*) = {} in {}",
            rows.rows()[0].get("n").render(),
            fmt_duration(q.elapsed())
        ),
    ]);
    t.row(&[
        "entity view rows pre-discovery".into(),
        views::entity_view(&imp).unwrap().len().to_string(),
    ]);
    // annotation lag: drain discovery in budgeted steps
    let mut steps = 0;
    let t0 = Instant::now();
    while imp.discovery_backlog() > 0 {
        imp.run_discovery(Some(100));
        imp.run_indexing(None);
        steps += 1;
    }
    let lag = t0.elapsed();
    let entity_rows = views::entity_view(&imp).unwrap();
    let sentiment_rows = views::sentiment_view(&imp).unwrap();
    t.row(&[
        "background drain".into(),
        format!("{steps} steps, {}", fmt_duration(lag)),
    ]);
    t.row(&[
        "entity view rows post-discovery".into(),
        entity_rows.len().to_string(),
    ]);
    t.row(&[
        "sentiment view rows".into(),
        sentiment_rows.len().to_string(),
    ]);
    // view joined back to base data
    let joined = views::entities_with_base(&imp, "total").unwrap();
    let with_base = joined
        .iter()
        .filter(|r| !r.get("base_total").is_null())
        .count();
    t.row(&[
        "entity rows joined to base total".into(),
        format!("{with_base}/{} carry a base value", joined.len()),
    ]);
    // annotations queryable by plain SQL
    let ann = imp
        .query(QueryRequest::builder("SELECT COUNT(*) AS n FROM annotations.entities").build())
        .unwrap();
    t.row(&[
        "SQL over annotation collection".into(),
        format!("COUNT(*) = {}", ann.rows()[0].get("n").render()),
    ]);
    t.print();
}

// ---------------------------------------------------------------------
// F3 — Figure 3: cluster scale-out (data vs grid, independently)
// ---------------------------------------------------------------------

fn f3_scaleout() {
    // The harness host may have a single CPU core, so wall-clock time
    // cannot exhibit rack parallelism. Instead each simulated node
    // measures its own busy time and the harness reports the *simulated
    // makespan*: max over nodes of per-node busy time (every node of the
    // paper's rack owns its own CPU). Total work is also shown so the
    // reader can verify work conservation.
    const DOCS: usize = 12_000;
    let mut t = Table::new(
        "F3 — Figure 3 scale-out: simulated scan makespan vs data nodes (12k docs)",
        &[
            "data nodes",
            "total work",
            "makespan",
            "speedup",
            "balance (max/min)",
            "net bytes",
        ],
    );
    let mut base: Option<Duration> = None;
    for d in [1usize, 2, 4, 8, 16] {
        let app = ClusterImpliance::boot(ApplianceConfig {
            data_nodes: d,
            grid_nodes: 1,
            replication: 1,
            ..ApplianceConfig::default()
        });
        let mut corpus = Corpus::new(3);
        for _ in 0..DOCS {
            app.ingest_json("orders", &corpus.order_json(50)).unwrap();
        }
        app.runtime().network().reset_metrics();
        let req = ScanRequest::filtered(Predicate::Contains("sku".into(), "bx".into()));
        // per-node busy time for the same scan
        let mut node_times = Vec::new();
        let mut total_docs = 0usize;
        for node in app.runtime().nodes_of_kind(NodeKind::Data) {
            let req = req.clone();
            let handle = app
                .runtime()
                .submit_to(node, 64, move |ctx| {
                    let state = ctx
                        .state
                        .downcast_ref::<impliance_query::dist::DataNodeState>()
                        .unwrap();
                    // min of 3 runs de-noises the per-node busy time
                    let mut best = Duration::MAX;
                    let mut docs = 0usize;
                    for _ in 0..3 {
                        let t = Instant::now();
                        let r = state.storage.scan(&req).unwrap();
                        best = best.min(t.elapsed());
                        docs = r.metrics.docs_scanned as usize;
                        ctx.network.transmit(
                            ctx.id,
                            impliance_cluster::NodeId(u32::MAX),
                            r.metrics.bytes_returned,
                        );
                    }
                    (best, docs)
                })
                .unwrap();
            let (busy, docs) = handle.join().unwrap();
            node_times.push(busy);
            total_docs += docs;
        }
        assert_eq!(total_docs, DOCS);
        let total: Duration = node_times.iter().sum();
        let makespan = *node_times.iter().max().unwrap();
        let min = *node_times.iter().min().unwrap();
        let speedup = base.get_or_insert(makespan).as_secs_f64() / makespan.as_secs_f64();
        t.row(&[
            d.to_string(),
            fmt_duration(total),
            fmt_duration(makespan),
            format!("{speedup:.2}x"),
            format!(
                "{:.2}",
                makespan.as_secs_f64() / min.as_secs_f64().max(1e-9)
            ),
            fmt_bytes(app.runtime().network().metrics().bytes),
        ]);
    }
    t.print();

    // grid compute: same busy-time model; 24 equal tasks round-robined
    let mut t2 = Table::new(
        "F3 — grid compute scaling: 24 analytic tasks, simulated makespan vs grid nodes",
        &["grid nodes", "total work", "makespan", "speedup"],
    );
    let mut base2: Option<Duration> = None;
    for g in [1usize, 2, 4, 8] {
        let app = ClusterImpliance::boot(ApplianceConfig {
            data_nodes: 1,
            grid_nodes: g,
            replication: 1,
            ..ApplianceConfig::default()
        });
        // submit one task at a time so each busy-time sample runs
        // uncontended on the single benchmarking core; the makespan model
        // then assigns the samples to their nodes
        let mut per_node: std::collections::HashMap<impliance_cluster::NodeId, Duration> =
            Default::default();
        for i in 0..24 {
            let handle = app
                .runtime()
                .submit_to_kind(NodeKind::Grid, 64, move |ctx| {
                    let t = Instant::now();
                    let mut v: Vec<u64> = (0..300_000u64)
                        .map(|x| x.wrapping_mul(0x9E3779B9).rotate_left((i % 13) as u32))
                        .collect();
                    v.sort_unstable();
                    (ctx.id, t.elapsed(), v[0])
                })
                .unwrap();
            let (node, busy, _) = handle.join().unwrap();
            *per_node.entry(node).or_default() += busy;
        }
        let total: Duration = per_node.values().sum();
        let makespan = *per_node.values().max().unwrap();
        let speedup = base2.get_or_insert(makespan).as_secs_f64() / makespan.as_secs_f64();
        t2.row(&[
            g.to_string(),
            fmt_duration(total),
            fmt_duration(makespan),
            format!("{speedup:.2}x"),
        ]);
    }
    t2.print();

    // the mixed pipeline: data → grid → cluster
    let app = ClusterImpliance::boot(ApplianceConfig {
        data_nodes: 4,
        grid_nodes: 2,
        cluster_nodes: 3,
        replication: 1,
        ..ApplianceConfig::default()
    });
    let mut corpus = Corpus::new(4);
    for _ in 0..1000 {
        app.ingest_json("orders", &corpus.order_json(20)).unwrap();
    }
    let req = ScanRequest {
        predicate: None,
        projection: Projection::All,
        aggregate: Some(AggSpec {
            group_by: Some("cust".into()),
            func: AggFunc::Sum,
            operand: Some("amount".into()),
        }),
        limit: None,
        snapshot: None,
    };
    let t0 = Instant::now();
    let groups = app.pipeline_query(&req).unwrap();
    let mut t3 = Table::new(
        "F3 — mixed query pipeline (scan on data → aggregate on grid → commit on cluster)",
        &["observable", "value"],
    );
    t3.row(&["groups committed".into(), groups.to_string()]);
    t3.row(&["pipeline latency".into(), fmt_duration(t0.elapsed())]);
    t3.row(&[
        "cluster 2PC log entries".into(),
        app.group().log().len().to_string(),
    ]);
    t3.print();
}

// ---------------------------------------------------------------------
// F4 — Figure 4: the comparison matrix, measured
// ---------------------------------------------------------------------

fn f4_comparison() {
    // set every system up for the same small workload
    let imp = Impliance::boot(ApplianceConfig::default());
    let mut corpus = Corpus::new(5);
    let schema = Corpus::po_schema();
    for _ in 0..200 {
        imp.ingest_row(&schema, corpus.purchase_order_row(10))
            .unwrap();
        imp.ingest_text("transcripts", &corpus.transcript())
            .unwrap();
    }
    imp.quiesce();

    let mut db = MiniRdbms::new();
    db.create_table(TableSchema {
        name: "orders".into(),
        columns: vec![
            ("order_id".into(), ColumnType::Int),
            ("cust".into(), ColumnType::Text),
            ("sku".into(), ColumnType::Text),
            ("qty".into(), ColumnType::Int),
            ("total".into(), ColumnType::Float),
        ],
    });
    db.create_index("orders", "cust").unwrap();
    let mut corpus2 = Corpus::new(5);
    for _ in 0..200 {
        db.insert("orders", corpus2.purchase_order_row(10)).unwrap();
    }

    let mut cs = ContentStore::new();
    cs.register_template(&["author", "date"]);
    let mut corpus3 = Corpus::new(5);
    for i in 0..200 {
        cs.store(
            corpus3.transcript().as_bytes(),
            &[("author", "agent"), ("date", "2006-11-03")],
        )
        .unwrap_or_else(|_| panic!("store {i}"));
    }

    let mut fs = FsStore::new();
    let mut corpus4 = Corpus::new(5);
    for i in 0..200 {
        fs.put(&format!("t{i}.txt"), corpus4.transcript().as_bytes());
    }

    let mut bi = BiAppliance::boot(8);
    bi.create_table(TableSchema {
        name: "orders".into(),
        columns: vec![
            ("order_id".into(), ColumnType::Int),
            ("cust".into(), ColumnType::Text),
            ("sku".into(), ColumnType::Text),
            ("qty".into(), ColumnType::Int),
            ("total".into(), ColumnType::Float),
        ],
    });
    let mut corpus5 = Corpus::new(5);
    for _ in 0..200 {
        bi.insert("orders", corpus5.purchase_order_row(10)).unwrap();
    }

    let systems: Vec<&dyn InfoSystem> = vec![&imp, &bi, &db, &cs, &fs];
    let mut t = Table::new(
        "F4 — Figure 4 comparison: capability matrix (✓ = supported)",
        &[
            "capability",
            "impliance",
            "bi-appliance",
            "mini-rdbms",
            "content-store",
            "fs-store",
        ],
    );
    for cap in ALL_CAPABILITIES {
        let mut cells = vec![cap.name().to_string()];
        for s in &systems {
            cells.push(if s.supports(*cap) {
                "✓".into()
            } else {
                "-".into()
            });
        }
        t.row(&cells);
    }
    t.print();

    let mut t2 = Table::new(
        "F4 — Figure 4 axes, measured (same 400-item workload)",
        &["system", "query power", "TCO (admin ops)", "scalability"],
    );
    for s in &systems {
        let scal = match (s.scales_out(), s.system_name()) {
            (true, "impliance") => "scale-out, all data (see F3)",
            (true, _) => "scale-out, relational only",
            (false, _) => "single node",
        };
        t2.row(&[
            s.system_name().to_string(),
            format!("{:.0}%", s.power_score() * 100.0),
            s.admin_ops().to_string(),
            scal.to_string(),
        ]);
    }
    t2.print();
}

// ---------------------------------------------------------------------
// C1 — simple planner vs cost-based optimizer
// ---------------------------------------------------------------------

fn c1_planner() {
    // Fresh statistics, then a distribution shift the optimizer does not
    // see: the cost-based planner keeps an indexed nested-loop join that
    // was optimal when `cust = 'C-7'` matched ~100 rows but is
    // catastrophic when it matches 6100; the simple planner's fixed rule
    // (no limit → hash join) is never optimal and never catastrophic —
    // §3.3's "predictable performance (as opposed to optimal
    // performance)". Compression is off so random index probes are not
    // charged block decompression — the comparison isolates plan shape.
    let imp = Impliance::boot(ApplianceConfig {
        compression: false,
        ..ApplianceConfig::default()
    });
    let po = Corpus::po_schema();
    let cu = Corpus::customer_schema();
    let mut corpus = Corpus::new(6);
    for _ in 0..4000 {
        imp.ingest_row(&po, corpus.purchase_order_row(2000))
            .unwrap();
    }
    for c in 0..8000 {
        imp.ingest_row(&cu, corpus.customer_row(c % 2000)).unwrap();
    }
    let fresh_stats = imp.storage().stats();
    let counts = std::collections::HashMap::from([
        ("orders".to_string(), 4000u64),
        ("customers".to_string(), 8000u64),
    ]);
    let optimizer = CostOptimizer::new(fresh_stats, counts);
    let simple = SimplePlanner::new();
    let sql = "SELECT o.order_id, c.name FROM orders o JOIN customers c ON o.cust = c.code \
               WHERE o.qty <= 2";
    let t0 = Instant::now();
    let simple_plan = simple.plan(parse_sql(sql).unwrap());
    let simple_plan_time = t0.elapsed();
    let t1 = Instant::now();
    let cost_plan = optimizer.optimize(parse_sql(sql).unwrap()).plan;
    let cost_plan_time = t1.elapsed();

    let run = |plan: &impliance_query::LogicalPlan| -> (Duration, usize) {
        let ctx = impliance_query::ExecContext {
            storage: imp.storage(),
            text_index: imp.text_index(),
            value_index: imp.value_index(),
            join_index: imp.join_index(),
            pushdown: true,
            columnar: true,
            snapshot: None,
        };
        let t = Instant::now();
        let (out, _) = impliance_query::execute_plan(&ctx, plan).unwrap();
        (t.elapsed(), out.len())
    };

    let (simple_fresh, n1) = run(&simple_plan);
    let (cost_fresh, n2) = run(&cost_plan);
    assert_eq!(n1, n2);

    // distribution shift the snapshot does not see: a flood of qty=1
    // orders makes the once-selective predicate match most of the table
    for _ in 0..6000 {
        let mut row = corpus.purchase_order_row(2000);
        row[3] = Value::Int(1);
        imp.ingest_row(&po, row).unwrap();
    }
    // the cost-based system re-plans against its (now stale) statistics
    // and reaches the same plan; the simple planner had no statistics to
    // go stale
    let (simple_stale, n3) = run(&simple_plan);
    let (cost_stale, n4) = run(&cost_plan);
    assert_eq!(n3, n4);

    let mut table = Table::new(
        "C1 — simple planner vs cost-based optimizer across a distribution shift",
        &[
            "planner",
            "plan time",
            "plan",
            "exec (fresh stats)",
            "exec (stale stats)",
            "degradation",
        ],
    );
    table.row(&[
        "simple".into(),
        fmt_duration(simple_plan_time),
        simple_plan.describe(),
        fmt_duration(simple_fresh),
        fmt_duration(simple_stale),
        format!(
            "{:.1}x",
            simple_stale.as_secs_f64() / simple_fresh.as_secs_f64()
        ),
    ]);
    table.row(&[
        "cost-based".into(),
        fmt_duration(cost_plan_time),
        cost_plan.describe(),
        fmt_duration(cost_fresh),
        fmt_duration(cost_stale),
        format!(
            "{:.1}x",
            cost_stale.as_secs_f64() / cost_fresh.as_secs_f64()
        ),
    ]);
    table.print();
    println!(
        "rows matched: {n1} before the shift, {n3} after. The cost-based plan was chosen\n\
         for the fresh distribution; after the shift its probe count explodes with\n\
         the data while the simple planner's fixed hash join degrades only linearly\n\
         — the predictable-over-optimal argument of \u{00a7}3.3, measured.\n"
    );
}

// ---------------------------------------------------------------------
// C2 — push-down vs no push-down (bytes over the simulated network)
// ---------------------------------------------------------------------

fn c2_pushdown() {
    const DOCS: usize = 4000;
    let app = ClusterImpliance::boot(ApplianceConfig {
        data_nodes: 4,
        grid_nodes: 1,
        replication: 1,
        ..ApplianceConfig::default()
    });
    let mut corpus = Corpus::new(7);
    for _ in 0..DOCS {
        app.ingest_json("orders", &corpus.order_json(50)).unwrap();
    }
    let mut t = Table::new(
        "C2 — predicate/aggregation push-down vs shipping whole documents (4000 docs)",
        &["query", "mode", "net bytes", "reduction", "latency"],
    );
    let selective = Predicate::Gt("amount".into(), Value::Int(950)); // ~5%
                                                                     // filter push-down
    for (mode, req) in [
        ("pushdown", ScanRequest::filtered(selective.clone())),
        ("ship-all", ScanRequest::full()),
    ] {
        app.runtime().network().reset_metrics();
        let t0 = Instant::now();
        let res = app.scan(&req).unwrap();
        let elapsed = t0.elapsed();
        let bytes = app.runtime().network().metrics().bytes;
        // in ship-all mode the coordinator filters afterwards
        let matching = if mode == "ship-all" {
            res.documents
                .iter()
                .filter(|d| selective.matches(d))
                .count()
        } else {
            res.documents.len()
        };
        t.row(&[
            "filter amount>950".into(),
            mode.into(),
            fmt_bytes(bytes),
            format!("matches={matching}"),
            fmt_duration(elapsed),
        ]);
    }
    // aggregation push-down
    let agg_req = ScanRequest {
        predicate: None,
        projection: Projection::All,
        aggregate: Some(AggSpec {
            group_by: Some("cust".into()),
            func: AggFunc::Sum,
            operand: Some("amount".into()),
        }),
        limit: None,
        snapshot: None,
    };
    app.runtime().network().reset_metrics();
    let t0 = Instant::now();
    let groups = app.aggregate(&agg_req).unwrap();
    let push_bytes = app.runtime().network().metrics().bytes;
    let push_time = t0.elapsed();
    app.runtime().network().reset_metrics();
    let t1 = Instant::now();
    let res = app.scan(&ScanRequest::full()).unwrap();
    let mut coord_groups: std::collections::BTreeMap<String, f64> = Default::default();
    for d in &res.documents {
        let cust = d
            .get_str_path("cust")
            .and_then(|n| n.as_value())
            .map(|v| v.render());
        let amount = d
            .get_str_path("amount")
            .and_then(|n| n.as_value())
            .and_then(|v| v.as_f64());
        if let (Some(c), Some(a)) = (cust, amount) {
            *coord_groups.entry(c).or_insert(0.0) += a;
        }
    }
    let ship_bytes = app.runtime().network().metrics().bytes;
    let ship_time = t1.elapsed();
    assert_eq!(groups.len(), coord_groups.len());
    t.row(&[
        "sum(amount) by cust".into(),
        "pushdown".into(),
        fmt_bytes(push_bytes),
        format!("{} groups", groups.len()),
        fmt_duration(push_time),
    ]);
    t.row(&[
        "sum(amount) by cust".into(),
        "ship-all".into(),
        fmt_bytes(ship_bytes),
        format!("{} groups", coord_groups.len()),
        fmt_duration(ship_time),
    ]);
    t.print();
}

// ---------------------------------------------------------------------
// C3 — asynchronous vs synchronous (transactional) indexing
// ---------------------------------------------------------------------

fn c3_async_indexing() {
    const N: usize = 3000;
    let mut t = Table::new(
        "C3 — ingest throughput: async background indexing vs index-in-transaction",
        &[
            "mode",
            "ingest time",
            "docs/s",
            "backlog after ingest",
            "drain time",
        ],
    );
    for sync in [false, true] {
        let imp = Impliance::boot(ApplianceConfig {
            synchronous_indexing: sync,
            ..ApplianceConfig::default()
        });
        let mut corpus = Corpus::new(8);
        let docs: Vec<String> = (0..N).map(|_| corpus.transcript()).collect();
        let t0 = Instant::now();
        for d in &docs {
            imp.ingest_text("transcripts", d).unwrap();
        }
        let ingest = t0.elapsed();
        let backlog = imp.indexing_backlog();
        let t1 = Instant::now();
        imp.run_indexing(None);
        let drain = t1.elapsed();
        // answers identical either way
        assert!(!imp.search("transcript", 10).is_empty());
        t.row(&[
            if sync { "synchronous" } else { "asynchronous" }.into(),
            fmt_duration(ingest),
            format!("{:.0}", N as f64 / ingest.as_secs_f64()),
            backlog.to_string(),
            fmt_duration(drain),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// C4 — top-k: indexed nested-loop vs hash join crossover
// ---------------------------------------------------------------------

fn c4_topk_join() {
    const ORDERS: usize = 20_000;
    const CUSTOMERS: u32 = 2000;
    let imp = Impliance::boot(ApplianceConfig::default());
    let mut corpus = Corpus::new(9);
    let po = Corpus::po_schema();
    let cu = Corpus::customer_schema();
    for _ in 0..ORDERS {
        imp.ingest_row(&po, corpus.purchase_order_row(CUSTOMERS))
            .unwrap();
    }
    for c in 0..CUSTOMERS {
        imp.ingest_row(&cu, corpus.customer_row(c)).unwrap();
    }
    // materialize both sides once (tuples)
    let orders: Vec<Tuple> = imp
        .storage()
        .scan(&ScanRequest::filtered(Predicate::CollectionIs(
            "orders".into(),
        )))
        .unwrap()
        .documents
        .into_iter()
        .map(|d| Tuple::single("o", Arc::new(d)))
        .collect();
    let customers: Vec<Tuple> = imp
        .storage()
        .scan(&ScanRequest::filtered(Predicate::CollectionIs(
            "customers".into(),
        )))
        .unwrap()
        .documents
        .into_iter()
        .map(|d| Tuple::single("c", Arc::new(d)))
        .collect();
    let lk = ("o".to_string(), "cust".to_string());
    let rk = ("c".to_string(), "code".to_string());
    let storage = imp.storage();
    let fetch = |id: DocId| storage.get_latest(id).ok().flatten().map(Arc::new);

    let mut t = Table::new(
        "C4 — top-k join: indexed nested-loop vs hash (20k orders ⋈ 2k customers)",
        &["k", "indexed NL", "hash join", "winner"],
    );
    for k in [1usize, 10, 100, 1000, 10_000, usize::MAX] {
        let t0 = Instant::now();
        let inl = joins::indexed_nl_join(
            orders.clone(),
            imp.value_index(),
            "c",
            "code",
            &lk,
            &fetch,
            if k == usize::MAX { None } else { Some(k) },
        );
        let inl_time = t0.elapsed();
        let t1 = Instant::now();
        let mut hashed = joins::hash_join(orders.clone(), customers.clone(), &lk, &rk);
        hashed.truncate(k);
        let hash_time = t1.elapsed();
        assert_eq!(inl.len().min(k), hashed.len().min(k));
        let label = if k == usize::MAX {
            "all".to_string()
        } else {
            k.to_string()
        };
        t.row(&[
            label,
            fmt_duration(inl_time),
            fmt_duration(hash_time),
            if inl_time < hash_time {
                "indexed NL"
            } else {
                "hash"
            }
            .into(),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// C5 — autonomous failure recovery
// ---------------------------------------------------------------------

fn c5_failover() {
    const DOCS: usize = 4000;
    let mut t = Table::new(
        "C5 — data-node failure: autonomous re-replication (4000 docs, 6 data nodes)",
        &[
            "replication",
            "recovery time",
            "docs repaired",
            "bytes copied",
            "docs lost",
            "scan after",
        ],
    );
    for replication in [1usize, 2, 3] {
        let app = ClusterImpliance::boot(ApplianceConfig {
            data_nodes: 6,
            grid_nodes: 1,
            replication,
            ..ApplianceConfig::default()
        });
        let mut corpus = Corpus::new(10);
        for _ in 0..DOCS {
            app.ingest_json("orders", &corpus.order_json(50)).unwrap();
        }
        let victim = app.runtime().nodes_of_kind(NodeKind::Data)[2];
        let t0 = Instant::now();
        let report = app.kill_data_node(victim).unwrap();
        let recovery = t0.elapsed();
        let visible = app.scan(&ScanRequest::full()).unwrap().documents.len();
        t.row(&[
            replication.to_string(),
            fmt_duration(recovery),
            report.docs_repaired.to_string(),
            fmt_bytes(report.bytes_copied),
            report.docs_lost.to_string(),
            format!("{visible}/{DOCS}"),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// C6 — versioning overhead vs in-place updates
// ---------------------------------------------------------------------

fn c6_versioning() {
    const DOCS: u64 = 2000;
    const UPDATES: u64 = 4; // versions per doc beyond v1
    let imp = Impliance::boot(ApplianceConfig::default());
    let mut corpus = Corpus::new(11);
    let mut ids = Vec::new();
    for _ in 0..DOCS {
        ids.push(imp.ingest_json("claims", &corpus.claim_json()).unwrap());
    }
    let base_bytes = {
        imp.storage().seal_all();
        imp.storage().stored_bytes()
    };
    let t0 = Instant::now();
    for round in 0..UPDATES {
        for &id in &ids {
            let doc = imp.get(id).unwrap().unwrap();
            let mut root = doc.root().clone();
            root.set(
                &impliance_docmodel::Path::parse("amount"),
                impliance_docmodel::Node::scalar(corpus.int_in(50, 5000)),
            );
            root.set(
                &impliance_docmodel::Path::parse("revision"),
                impliance_docmodel::Node::scalar(round as i64 + 1),
            );
            imp.update(id, root).unwrap();
        }
    }
    let update_time = t0.elapsed();
    imp.storage().seal_all();
    let full_bytes = imp.storage().stored_bytes();

    // point-in-time and latest read costs
    let t1 = Instant::now();
    for &id in ids.iter().take(500) {
        imp.get(id).unwrap().unwrap();
    }
    let latest_read = t1.elapsed() / 500;
    let t2 = Instant::now();
    for &id in ids.iter().take(500) {
        imp.get_version(id, impliance_docmodel::Version(1))
            .unwrap()
            .unwrap();
    }
    let old_read = t2.elapsed() / 500;

    let mut t = Table::new(
        "C6 — immutable versioning (2000 docs × 5 versions) vs in-place baseline",
        &["observable", "value"],
    );
    t.row(&[
        "stored versions".into(),
        imp.storage().total_versions().to_string(),
    ]);
    t.row(&[
        "live documents".into(),
        imp.storage().live_docs().to_string(),
    ]);
    t.row(&["bytes after v1 only".into(), fmt_bytes(base_bytes as u64)]);
    t.row(&[
        "bytes with full history".into(),
        format!(
            "{} ({:.2}x write amplification vs in-place)",
            fmt_bytes(full_bytes as u64),
            full_bytes as f64 / base_bytes as f64
        ),
    ]);
    t.row(&[
        "update throughput".into(),
        format!(
            "{:.0} versions/s",
            (DOCS * UPDATES) as f64 / update_time.as_secs_f64()
        ),
    ]);
    t.row(&["latest-version read".into(), fmt_duration(latest_read)]);
    t.row(&["point-in-time read (v1)".into(), fmt_duration(old_read)]);
    t.row(&[
        "history available".into(),
        format!("{} versions per doc (in-place baseline: 1)", 1 + UPDATES),
    ]);
    t.print();
}

// ---------------------------------------------------------------------
// C7 — storage-node compression
// ---------------------------------------------------------------------

fn c7_compression() {
    const DOCS: u64 = 4000;
    let mut t = Table::new(
        "C7 — compression inside the storage node (4000 text-heavy docs)",
        &[
            "compression",
            "stored bytes",
            "ratio",
            "ingest time",
            "full-scan time",
        ],
    );
    let mut raw_bytes = 0usize;
    for compression in [false, true] {
        let engine = StorageEngine::new(StorageOptions {
            partitions: 4,
            seal_threshold: 256,
            compression,
            encryption_key: None,
        });
        let mut corpus = Corpus::new(12);
        let t0 = Instant::now();
        for i in 0..DOCS {
            let d = impliance_docmodel::text_to_document(
                DocId(i),
                "transcripts",
                &corpus.transcript(),
                0,
            );
            engine.put(&d).unwrap();
        }
        engine.seal_all();
        let ingest = t0.elapsed();
        let stored = engine.stored_bytes();
        if !compression {
            raw_bytes = stored;
        }
        let t1 = Instant::now();
        let res = engine.scan(&ScanRequest::full()).unwrap();
        assert_eq!(res.documents.len(), DOCS as usize);
        let scan = t1.elapsed();
        t.row(&[
            if compression { "on" } else { "off" }.into(),
            fmt_bytes(stored as u64),
            format!("{:.2}x", raw_bytes as f64 / stored as f64),
            fmt_duration(ingest),
            fmt_duration(scan),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// C8 — discovery pipeline scaling across workers (grid crew)
// ---------------------------------------------------------------------

fn c8_discovery() {
    // Same simulated-makespan model as F3 (single-core host): the backlog
    // is partitioned into equal worker shares; each share's busy time is
    // measured uncontended; makespan = max share time.
    const N: usize = 2000;
    let mut t = Table::new(
        "C8 — discovery makespan vs worker crew size (2000 transcripts)",
        &[
            "workers",
            "total work",
            "makespan",
            "docs/s (simulated)",
            "speedup",
        ],
    );
    let mut base: Option<Duration> = None;
    for workers in [1usize, 2, 4, 8] {
        let imp = Impliance::boot(ApplianceConfig::default());
        let mut corpus = Corpus::new(13);
        for _ in 0..N {
            imp.ingest_text("transcripts", &corpus.transcript())
                .unwrap();
        }
        let share = N / workers;
        let mut share_times = Vec::new();
        for w in 0..workers {
            let budget = if w + 1 == workers {
                N - share * w
            } else {
                share
            };
            let t0 = Instant::now();
            let done = imp.run_discovery(Some(budget));
            share_times.push(t0.elapsed());
            assert_eq!(done, budget);
        }
        assert_eq!(imp.discovery_stats().docs_processed, N as u64);
        let total: Duration = share_times.iter().sum();
        let makespan = *share_times.iter().max().unwrap();
        let speedup = base.get_or_insert(makespan).as_secs_f64() / makespan.as_secs_f64();
        t.row(&[
            workers.to_string(),
            fmt_duration(total),
            fmt_duration(makespan),
            format!("{:.0}", N as f64 / makespan.as_secs_f64()),
            format!("{speedup:.2}x"),
        ]);
    }
    t.print();

    // stage breakdown on one worker
    let imp = Impliance::boot(ApplianceConfig::default());
    let mut corpus = Corpus::new(14);
    for _ in 0..500 {
        imp.ingest_text("transcripts", &corpus.transcript())
            .unwrap();
    }
    let t0 = Instant::now();
    imp.run_discovery(None);
    let disc = t0.elapsed();
    let t1 = Instant::now();
    imp.run_indexing(None);
    let idx = t1.elapsed();
    let stats = imp.discovery_stats();
    let mut t2 = Table::new(
        "C8 — stage breakdown (500 transcripts)",
        &["stage", "value"],
    );
    t2.row(&["intra+inter-document analysis".into(), fmt_duration(disc)]);
    t2.row(&[
        "annotation indexing (cluster persist)".into(),
        fmt_duration(idx),
    ]);
    t2.row(&["mentions extracted".into(), stats.mentions.to_string()]);
    t2.row(&[
        "relationships discovered".into(),
        stats.relationships.to_string(),
    ]);
    t2.print();

    let _ = SchemaMapper::default(); // referenced to keep the mapper in the harness's scope
}

//! Throughput and byte-movement accounting for the batched streaming
//! executor. Emits `BENCH_exec.json` in the workspace root and exits
//! non-zero if the batched scan→filter→limit pipeline fails to move
//! strictly fewer bytes through the cluster `Network` than the
//! pre-refactor monolithic distributed scan on the same corpus.
//!
//! Two measurements:
//!
//! 1. **Local pipeline** — scan→filter→project over a single-node corpus,
//!    once unbounded and once with a request-level LIMIT. The limited run
//!    must scan only a prefix of the corpus (early termination), which
//!    shows up both in `docs_scanned` and in the
//!    `query.pipeline.early_terminations` observability counter.
//! 2. **Distributed bytes** — the same filtered scan over a simulated
//!    cluster, comparing the pre-refactor shape (one task per node, the
//!    node's whole partial shipped in a single transmit, LIMIT applied
//!    only at the coordinator) against `dist_scan_batched` with the limit
//!    pushed into the per-morsel page loop.
//!
//! A third measurement, **chaos** (`BENCH_chaos.json`), replays seeded
//! fault schedules — 1 of 4 data nodes killed mid-scan at 0%, 5%, and
//! 20% message drop — against the resilient scan path and fails unless
//! every trial recovers the exact fault-free row set.

use std::sync::Arc;
use std::time::Instant;

use impliance_cluster::{ClusterRuntime, FaultSchedule, Network, NodeId, NodeKind, NodeSpec};
use impliance_docmodel::{DocId, DocumentBuilder, SourceFormat, Value};
use impliance_index::{InvertedIndex, JoinIndex, PathValueIndex};
use impliance_query::dist::{
    dist_put, dist_put_replicated, dist_scan_batched, dist_scan_resilient, DataNodeState,
    DistExecOptions, FailoverPolicy, RetryPolicy,
};
use impliance_query::{execute_plan_opts, ExecContext, ExecOptions, LogicalPlan};
use impliance_storage::{Predicate, ScanRequest, StorageEngine, StorageOptions};

const LOCAL_DOCS: u64 = 20_000;
const LOCAL_LIMIT: usize = 100;
const BATCH_SIZE: usize = 256;
const DIST_DOCS: u64 = 400;
const DIST_LIMIT: usize = 5;
const DIST_BATCH: usize = 16;
const CHAOS_DOCS: u64 = 200;
const CHAOS_NODES: u32 = 4;
const CHAOS_TRIALS: usize = 5;
const CHAOS_DROP_PCTS: [u32; 3] = [0, 5, 20];

struct RunStats {
    rows: u64,
    docs_scanned: u64,
    micros: u128,
}

fn main() {
    let local = bench_local_pipeline();
    let dist = bench_distributed_bytes();

    let rows_per_sec = if local.0.micros > 0 {
        local.0.rows as f64 / (local.0.micros as f64 / 1_000_000.0)
    } else {
        f64::INFINITY
    };
    let ratio = dist.batched_bytes as f64 / dist.monolithic_bytes.max(1) as f64;

    let json = format!(
        "{{\n  \"bench\": \"exec\",\n  \"local\": {{\n    \"corpus_docs\": {LOCAL_DOCS},\n    \
         \"batch_size\": {BATCH_SIZE},\n    \"full\": {{ \"rows\": {}, \"docs_scanned\": {}, \
         \"micros\": {}, \"rows_per_sec\": {:.0} }},\n    \"limited\": {{ \"limit\": \
         {LOCAL_LIMIT}, \"rows\": {}, \"docs_scanned\": {}, \"micros\": {}, \
         \"early_terminations\": {} }}\n  }},\n  \"distributed\": {{\n    \"corpus_docs\": \
         {DIST_DOCS},\n    \"data_nodes\": 2,\n    \"partitions_per_node\": 2,\n    \
         \"limit\": {DIST_LIMIT},\n    \"monolithic_bytes\": {},\n    \"batched_limit_bytes\": \
         {},\n    \"batched_morsels\": {},\n    \"batched_batches\": {},\n    \
         \"bytes_ratio\": {:.4}\n  }}\n}}\n",
        local.0.rows,
        local.0.docs_scanned,
        local.0.micros,
        rows_per_sec,
        local.1.rows,
        local.1.docs_scanned,
        local.1.micros,
        local.2,
        dist.monolithic_bytes,
        dist.batched_bytes,
        dist.morsels,
        dist.batches,
        ratio,
    );
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    print!("{json}");

    let mut failed = false;
    if local.1.docs_scanned >= LOCAL_DOCS {
        eprintln!(
            "FAIL: limited pipeline scanned the whole corpus ({} docs) — no early termination",
            local.1.docs_scanned
        );
        failed = true;
    }
    if dist.batched_bytes >= dist.monolithic_bytes {
        eprintln!(
            "FAIL: batched limit scan moved {} bytes, monolithic scan {} — expected strictly \
             fewer",
            dist.batched_bytes, dist.monolithic_bytes
        );
        failed = true;
    }
    let chaos = bench_chaos();
    let baseline_latency = chaos[0].median_micros;
    let mut chaos_json = String::from("{\n  \"bench\": \"chaos\",\n  \"corpus_docs\": ");
    chaos_json.push_str(&format!(
        "{CHAOS_DOCS},\n  \"data_nodes\": {CHAOS_NODES},\n  \"trials_per_config\": \
         {CHAOS_TRIALS},\n  \"killed_nodes\": 1,\n  \"configs\": [\n"
    ));
    for (i, c) in chaos.iter().enumerate() {
        let added = c.p99_micros.saturating_sub(baseline_latency);
        chaos_json.push_str(&format!(
            "    {{ \"drop_pct\": {}, \"success_rate\": {:.2}, \"retries\": {}, \
             \"failovers\": {}, \"median_micros\": {}, \"p99_micros\": {}, \
             \"p99_added_micros\": {} }}{}\n",
            c.drop_pct,
            c.successes as f64 / CHAOS_TRIALS as f64,
            c.retries,
            c.failovers,
            c.median_micros,
            c.p99_micros,
            added,
            if i + 1 < chaos.len() { "," } else { "" },
        ));
    }
    chaos_json.push_str("  ]\n}\n");
    std::fs::write("BENCH_chaos.json", &chaos_json).expect("write BENCH_chaos.json");
    print!("{chaos_json}");

    for c in &chaos {
        if c.successes < CHAOS_TRIALS {
            eprintln!(
                "FAIL: chaos config drop_pct={} recovered the exact row set in only {}/{} trials",
                c.drop_pct, c.successes, CHAOS_TRIALS
            );
            failed = true;
        }
    }
    if chaos.iter().all(|c| c.failovers == 0) {
        eprintln!("FAIL: no chaos trial exercised replica failover — the kill never landed");
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: limit scanned {}/{} docs locally; batched dist scan moved {}/{} bytes ({:.1}%); \
         chaos recovered {} trials across {} configs",
        local.1.docs_scanned,
        LOCAL_DOCS,
        dist.batched_bytes,
        dist.monolithic_bytes,
        ratio * 100.0,
        chaos.iter().map(|c| c.successes).sum::<usize>(),
        chaos.len(),
    );
}

/// Scan→filter→project over one node, unbounded then LIMIT-ed.
fn bench_local_pipeline() -> (RunStats, RunStats, u64) {
    let storage = StorageEngine::new(StorageOptions {
        partitions: 4,
        seal_threshold: 512,
        compression: true,
        encryption_key: None,
    });
    for i in 0..LOCAL_DOCS {
        storage
            .put(
                &DocumentBuilder::new(DocId(i), SourceFormat::Json, "orders")
                    .field("amount", (i % 1000) as i64)
                    .field("cust", format!("C-{}", i % 17))
                    .build(),
            )
            .expect("put");
    }
    let text = InvertedIndex::new(4);
    let values = PathValueIndex::new();
    let joins = JoinIndex::new();
    let ctx = ExecContext {
        storage: &storage,
        text_index: &text,
        value_index: &values,
        join_index: &joins,
        pushdown: true,
    };
    let plan = LogicalPlan::Project {
        input: Box::new(LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan {
                collection: Some("orders".into()),
                predicate: None,
                alias: "orders".into(),
                use_value_index: false,
            }),
            alias: "orders".into(),
            predicate: Predicate::Ge("amount".into(), Value::Int(100)),
        }),
        columns: vec![("orders".into(), "amount".into(), "amount".into())],
    };

    let run = |limit: Option<usize>| {
        let opts = ExecOptions {
            batch_size: BATCH_SIZE,
            limit,
            ..ExecOptions::default()
        };
        let t0 = Instant::now();
        let (out, m) = execute_plan_opts(&ctx, &plan, &opts).expect("execute");
        RunStats {
            rows: out.len() as u64,
            docs_scanned: m.scan.docs_scanned,
            micros: t0.elapsed().as_micros(),
        }
    };

    let early = impliance_obs::global()
        .metrics()
        .counter("query.pipeline.early_terminations");
    let full = run(None);
    let before = early.get();
    let limited = run(Some(LOCAL_LIMIT));
    (full, limited, early.get() - before)
}

struct DistStats {
    monolithic_bytes: u64,
    batched_bytes: u64,
    morsels: usize,
    batches: u64,
}

/// Same filtered scan over a 2-node × 2-partition cluster: pre-refactor
/// monolithic shape vs batched morsels with the limit pushed down.
fn bench_distributed_bytes() -> DistStats {
    let specs = vec![
        NodeSpec::new(0, NodeKind::Data),
        NodeSpec::new(1, NodeKind::Data),
        NodeSpec::new(100, NodeKind::Grid),
    ];
    let rt = ClusterRuntime::boot(&specs, Arc::new(Network::new()), |spec| match spec.kind {
        NodeKind::Data => Arc::new(DataNodeState::new(Arc::new(StorageEngine::new(
            StorageOptions {
                partitions: 2,
                seal_threshold: 64,
                compression: true,
                encryption_key: None,
            },
        )))),
        _ => Arc::new(()),
    });
    for i in 0..DIST_DOCS {
        dist_put(
            &rt,
            &DocumentBuilder::new(DocId(i), SourceFormat::Json, "orders")
                .field("amount", (i % 100) as i64)
                .field("cust", format!("C-{}", i % 10))
                .build(),
        )
        .expect("dist_put");
    }
    let request = ScanRequest::filtered(Predicate::Ge("amount".into(), Value::Int(50)));

    // Pre-refactor shape: one task per node, the node scans everything the
    // predicate admits and ships its whole partial in a single transmit;
    // LIMIT existed only at the coordinator, after the bytes had moved.
    rt.network().reset_metrics();
    let req_bytes = format!("{request:?}").len() as u64;
    let mut handles = Vec::new();
    for id in rt.nodes_of_kind(NodeKind::Data) {
        let req = request.clone();
        let handle = rt
            .submit_to(id, req_bytes, move |ctx| {
                let state = ctx
                    .state
                    .downcast_ref::<DataNodeState>()
                    .expect("data node state");
                let result = state.storage.scan(&req).expect("node scan");
                ctx.network
                    .transmit(ctx.id, NodeId(u32::MAX), result.metrics.bytes_returned);
                result.documents.len()
            })
            .expect("submit monolithic scan");
        handles.push(handle);
    }
    let mut monolithic_docs = 0usize;
    for h in handles {
        monolithic_docs += h.join().expect("join monolithic scan");
    }
    let monolithic_bytes = rt.network().metrics().bytes;

    // Batched pipeline: the limit rides in the request, every morsel stops
    // after its first page reaches it.
    rt.network().reset_metrics();
    let limited = ScanRequest {
        limit: Some(DIST_LIMIT),
        ..request.clone()
    };
    let (res, stats) = dist_scan_batched(&rt, &limited, DIST_BATCH).expect("batched scan");
    let batched_bytes = rt.network().metrics().bytes;
    assert_eq!(res.documents.len(), DIST_LIMIT, "limit honored");
    assert!(monolithic_docs > DIST_LIMIT, "corpus larger than the limit");

    DistStats {
        monolithic_bytes,
        batched_bytes,
        morsels: stats.morsels,
        batches: stats.batches,
    }
}

struct ChaosConfigStats {
    drop_pct: u32,
    successes: usize,
    retries: u64,
    failovers: u64,
    median_micros: u128,
    p99_micros: u128,
}

/// Replay seeded fault schedules against the resilient scan: for each
/// drop rate, every trial boots a fresh 4-data-node cluster (killed nodes
/// stay dead), ingests a 2-way replicated corpus, kills one node mid-scan
/// while dropping `drop_pct`% of the victim's coordinator traffic, and
/// checks the recovered row set against the fault-free one exactly.
fn bench_chaos() -> Vec<ChaosConfigStats> {
    let expected: Vec<u64> = (0..CHAOS_DOCS).collect();
    let mut out = Vec::new();
    for drop_pct in CHAOS_DROP_PCTS {
        let mut successes = 0usize;
        let mut retries = 0u64;
        let mut failovers = 0u64;
        let mut micros: Vec<u128> = Vec::with_capacity(CHAOS_TRIALS);
        for trial in 0..CHAOS_TRIALS {
            let mut specs: Vec<NodeSpec> = (0..CHAOS_NODES)
                .map(|i| NodeSpec::new(i, NodeKind::Data))
                .collect();
            specs.push(NodeSpec::new(100, NodeKind::Grid));
            let rt =
                ClusterRuntime::boot(&specs, Arc::new(Network::new()), |spec| match spec.kind {
                    NodeKind::Data => Arc::new(DataNodeState::new(Arc::new(StorageEngine::new(
                        StorageOptions {
                            partitions: 3,
                            seal_threshold: 64,
                            compression: true,
                            encryption_key: None,
                        },
                    )))),
                    _ => Arc::new(()),
                });
            for i in 0..CHAOS_DOCS {
                dist_put_replicated(
                    &rt,
                    &DocumentBuilder::new(DocId(i), SourceFormat::Json, "orders")
                        .field("amount", (i % 100) as i64)
                        .build(),
                    2,
                )
                .expect("replicated ingest on a healthy cluster");
            }

            let victim = rt.nodes_of_kind(NodeKind::Data)[trial % CHAOS_NODES as usize];
            let coord = NodeId(u32::MAX);
            let sched = Arc::new(FaultSchedule::new(
                0xC4A0_0000 ^ ((drop_pct as u64) << 8) ^ trial as u64,
            ));
            sched.drop_link(coord, victim, drop_pct as f64 / 100.0);
            sched.drop_link(victim, coord, drop_pct as f64 / 100.0);
            sched.kill_after(victim, 20);
            rt.network().install_faults(sched);

            let opts = DistExecOptions {
                batch_size: 8,
                retry: RetryPolicy {
                    max_attempts: 10,
                    ..RetryPolicy::default()
                },
                failover: Some(FailoverPolicy::ring(&rt.nodes_of_kind(NodeKind::Data))),
                deadline: None,
                degraded_ok: false,
            };
            let t0 = Instant::now();
            let scan = dist_scan_resilient(&rt, &ScanRequest::full(), &opts);
            micros.push(t0.elapsed().as_micros());
            rt.network().clear_faults();
            if let Ok(scan) = scan {
                let mut ids: Vec<u64> = scan.result.documents.iter().map(|d| d.id().0).collect();
                ids.sort_unstable();
                if ids == expected && !scan.degraded {
                    successes += 1;
                }
                retries += scan.retries;
                failovers += scan.failovers;
            }
        }
        micros.sort_unstable();
        out.push(ChaosConfigStats {
            drop_pct,
            successes,
            retries,
            failovers,
            // 5 trials: median is the middle one, "p99" is the worst
            median_micros: micros[micros.len() / 2],
            p99_micros: *micros.last().expect("at least one trial"),
        });
    }
    out
}

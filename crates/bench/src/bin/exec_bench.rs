//! Throughput and byte-movement accounting for the batched streaming
//! executor. Emits `BENCH_exec.json` in the workspace root and exits
//! non-zero if the batched scan→filter→limit pipeline fails to move
//! strictly fewer bytes through the cluster `Network` than the
//! pre-refactor monolithic distributed scan on the same corpus.
//!
//! Two measurements:
//!
//! 1. **Local pipeline** — scan→filter→project over a single-node corpus,
//!    once unbounded and once with a request-level LIMIT. The limited run
//!    must scan only a prefix of the corpus (early termination), which
//!    shows up both in `docs_scanned` and in the
//!    `query.pipeline.early_terminations` observability counter.
//! 2. **Distributed bytes** — the same filtered scan over a simulated
//!    cluster, comparing the pre-refactor shape (one task per node, the
//!    node's whole partial shipped in a single transmit, LIMIT applied
//!    only at the coordinator) against `dist_scan_batched` with the limit
//!    pushed into the per-morsel page loop.
//!
//! A third measurement, **chaos** (`BENCH_chaos.json`), replays seeded
//! fault schedules — 1 of 4 data nodes killed mid-scan at 0%, 5%, and
//! 20% message drop — against the resilient scan path and fails unless
//! every trial recovers the exact fault-free row set.
//!
//! A fourth measurement, **parallel** (`BENCH_parallel.json`), runs the
//! local scan and a group-aggregate at 1/2/4/8 morsel workers. On hosts
//! with ≥ 4 cores the 4-worker scan must beat serial by ≥ 1.5×; smaller
//! hosts gate on exact row equality plus bounded pool overhead instead
//! (the JSON reports `host_cores` and which gate applied).
//!
//! A fifth measurement, **columnar** (`BENCH_columnar.json`), compares
//! the vectorized (column-at-a-time) pipeline against the row pipeline
//! on the same corpus, single-threaded: a full-pass scan for decode
//! throughput and a selective scan for zone-map segment skipping. Row
//! equality between the two pipelines gates everywhere; on ≥ 4-core
//! hosts the columnar scan must also beat the row scan by > 2× and the
//! selective scan must skip > 50% of segments.

use std::sync::Arc;
use std::time::Instant;

use impliance_cluster::{ClusterRuntime, FaultSchedule, Network, NodeId, NodeKind, NodeSpec};
use impliance_docmodel::{DocId, DocumentBuilder, SourceFormat, Value};
use impliance_index::{InvertedIndex, JoinIndex, PathValueIndex};
use impliance_query::clock::{self, BackoffClock};
use impliance_query::dist::{
    dist_put, dist_put_replicated, dist_scan_batched, dist_scan_resilient, DataNodeState,
    FailoverPolicy, RetryPolicy,
};
use impliance_query::{execute_plan_opts, ExecContext, ExecutionContext, LogicalPlan};
use impliance_storage::{Predicate, ScanRequest, StorageEngine, StorageOptions};

const LOCAL_DOCS: u64 = 20_000;
const LOCAL_LIMIT: usize = 100;
const BATCH_SIZE: usize = 256;
const DIST_DOCS: u64 = 400;
const DIST_LIMIT: usize = 5;
const DIST_BATCH: usize = 16;
const CHAOS_DOCS: u64 = 200;
const CHAOS_NODES: u32 = 4;
const CHAOS_TRIALS: usize = 5;
const CHAOS_DROP_PCTS: [u32; 3] = [0, 5, 20];

struct RunStats {
    rows: u64,
    docs_scanned: u64,
    micros: u128,
}

/// Retry backoff that burns no wall-clock time: the chaos battery
/// retries hundreds of times and should measure work, not sleeping.
struct NoSleep;

impl BackoffClock for NoSleep {
    fn sleep_us(&self, _us: u64) {}
}

fn main() {
    clock::install(std::sync::Arc::new(NoSleep));
    let local = bench_local_pipeline();
    let dist = bench_distributed_bytes();

    let rows_per_sec = if local.0.micros > 0 {
        local.0.rows as f64 / (local.0.micros as f64 / 1_000_000.0)
    } else {
        f64::INFINITY
    };
    let ratio = dist.batched_bytes as f64 / dist.monolithic_bytes.max(1) as f64;

    let json = format!(
        "{{\n  \"bench\": \"exec\",\n  \"local\": {{\n    \"corpus_docs\": {LOCAL_DOCS},\n    \
         \"batch_size\": {BATCH_SIZE},\n    \"full\": {{ \"rows\": {}, \"docs_scanned\": {}, \
         \"micros\": {}, \"rows_per_sec\": {:.0} }},\n    \"limited\": {{ \"limit\": \
         {LOCAL_LIMIT}, \"rows\": {}, \"docs_scanned\": {}, \"micros\": {}, \
         \"early_terminations\": {} }}\n  }},\n  \"distributed\": {{\n    \"corpus_docs\": \
         {DIST_DOCS},\n    \"data_nodes\": 2,\n    \"partitions_per_node\": 2,\n    \
         \"limit\": {DIST_LIMIT},\n    \"monolithic_bytes\": {},\n    \"batched_limit_bytes\": \
         {},\n    \"batched_morsels\": {},\n    \"batched_batches\": {},\n    \
         \"bytes_ratio\": {:.4}\n  }}\n}}\n",
        local.0.rows,
        local.0.docs_scanned,
        local.0.micros,
        rows_per_sec,
        local.1.rows,
        local.1.docs_scanned,
        local.1.micros,
        local.2,
        dist.monolithic_bytes,
        dist.batched_bytes,
        dist.morsels,
        dist.batches,
        ratio,
    );
    std::fs::write("BENCH_exec.json", &json).expect("write BENCH_exec.json");
    print!("{json}");

    let mut failed = false;
    if local.1.docs_scanned >= LOCAL_DOCS {
        eprintln!(
            "FAIL: limited pipeline scanned the whole corpus ({} docs) — no early termination",
            local.1.docs_scanned
        );
        failed = true;
    }
    if dist.batched_bytes >= dist.monolithic_bytes {
        eprintln!(
            "FAIL: batched limit scan moved {} bytes, monolithic scan {} — expected strictly \
             fewer",
            dist.batched_bytes, dist.monolithic_bytes
        );
        failed = true;
    }
    let chaos = bench_chaos();
    let baseline_latency = chaos[0].median_micros;
    let mut chaos_json = String::from("{\n  \"bench\": \"chaos\",\n  \"corpus_docs\": ");
    chaos_json.push_str(&format!(
        "{CHAOS_DOCS},\n  \"data_nodes\": {CHAOS_NODES},\n  \"trials_per_config\": \
         {CHAOS_TRIALS},\n  \"killed_nodes\": 1,\n  \"configs\": [\n"
    ));
    for (i, c) in chaos.iter().enumerate() {
        let added = c.p99_micros.saturating_sub(baseline_latency);
        chaos_json.push_str(&format!(
            "    {{ \"drop_pct\": {}, \"success_rate\": {:.2}, \"retries\": {}, \
             \"failovers\": {}, \"median_micros\": {}, \"p99_micros\": {}, \
             \"p99_added_micros\": {} }}{}\n",
            c.drop_pct,
            c.successes as f64 / CHAOS_TRIALS as f64,
            c.retries,
            c.failovers,
            c.median_micros,
            c.p99_micros,
            added,
            if i + 1 < chaos.len() { "," } else { "" },
        ));
    }
    chaos_json.push_str("  ]\n}\n");
    std::fs::write("BENCH_chaos.json", &chaos_json).expect("write BENCH_chaos.json");
    print!("{chaos_json}");

    for c in &chaos {
        if c.successes < CHAOS_TRIALS {
            eprintln!(
                "FAIL: chaos config drop_pct={} recovered the exact row set in only {}/{} trials",
                c.drop_pct, c.successes, CHAOS_TRIALS
            );
            failed = true;
        }
    }
    if chaos.iter().all(|c| c.failovers == 0) {
        eprintln!("FAIL: no chaos trial exercised replica failover — the kill never landed");
        failed = true;
    }

    let par = bench_parallel();
    let mut par_json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"corpus_docs\": {LOCAL_DOCS},\n  \"partitions\": \
         {PAR_PARTITIONS},\n  \"host_cores\": {},\n  \"gate\": \"{}\",\n  \"runs\": [\n",
        par.host_cores, par.gate,
    );
    for (i, r) in par.runs.iter().enumerate() {
        par_json.push_str(&format!(
            "    {{ \"workers\": {}, \"scan_micros\": {}, \"group_agg_micros\": {} }}{}\n",
            r.workers,
            r.scan_micros,
            r.agg_micros,
            if i + 1 < par.runs.len() { "," } else { "" },
        ));
    }
    par_json.push_str(&format!(
        "  ],\n  \"scan_speedup_4x\": {:.3},\n  \"group_agg_speedup_4x\": {:.3},\n  \
         \"rows_equal\": {}\n}}\n",
        par.scan_speedup_4x, par.agg_speedup_4x, par.rows_equal,
    ));
    std::fs::write("BENCH_parallel.json", &par_json).expect("write BENCH_parallel.json");
    print!("{par_json}");

    if !par.rows_equal {
        eprintln!("FAIL: parallel execution returned different rows than serial");
        failed = true;
    }
    if par.host_cores >= 4 {
        if par.scan_speedup_4x < 1.5 {
            eprintln!(
                "FAIL: 4-worker scan speedup {:.2}x on a {}-core host — expected >= 1.5x",
                par.scan_speedup_4x, par.host_cores
            );
            failed = true;
        }
    } else if par.scan_speedup_4x < 0.2 {
        // Small host: a real speedup is physically impossible, so gate on
        // bounded overhead instead (and say so honestly in the JSON).
        eprintln!(
            "FAIL: 4-worker scan ran {:.1}x slower than serial on a {}-core host — pool \
             overhead is out of bounds",
            1.0 / par.scan_speedup_4x.max(1e-9),
            par.host_cores
        );
        failed = true;
    }

    let col = bench_columnar();
    let col_json = format!(
        "{{\n  \"bench\": \"columnar\",\n  \"corpus_docs\": {COL_DOCS},\n  \"partitions\": \
         {COL_PARTITIONS},\n  \"host_cores\": {},\n  \"gate\": \"{}\",\n  \"throughput\": {{ \
         \"row_micros\": {}, \"columnar_micros\": {}, \"row_rows_per_sec\": {:.0}, \
         \"columnar_rows_per_sec\": {:.0}, \"speedup\": {:.3} }},\n  \"selective\": {{ \
         \"threshold\": {}, \"rows\": {}, \"segments_skipped\": {}, \"segments_scanned\": {}, \
         \"skip_ratio\": {:.3} }},\n  \"rows_equal\": {}\n}}\n",
        col.host_cores,
        col.gate,
        col.row_micros,
        col.columnar_micros,
        col.row_rows_per_sec,
        col.columnar_rows_per_sec,
        col.speedup,
        COL_THRESHOLD,
        col.selective_rows,
        col.segments_skipped,
        col.segments_scanned,
        col.skip_ratio,
        col.rows_equal,
    );
    std::fs::write("BENCH_columnar.json", &col_json).expect("write BENCH_columnar.json");
    print!("{col_json}");

    if !col.rows_equal {
        eprintln!("FAIL: columnar pipeline returned different rows than the row pipeline");
        failed = true;
    }
    if col.host_cores >= 4 {
        if col.speedup <= 2.0 {
            eprintln!(
                "FAIL: columnar scan speedup {:.2}x over the row pipeline on a {}-core host — \
                 expected > 2x",
                col.speedup, col.host_cores
            );
            failed = true;
        }
        if col.skip_ratio <= 0.5 {
            eprintln!(
                "FAIL: selective scan skipped {:.1}% of segments — expected > 50%",
                col.skip_ratio * 100.0
            );
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!(
        "OK: limit scanned {}/{} docs locally; batched dist scan moved {}/{} bytes ({:.1}%); \
         chaos recovered {} trials across {} configs",
        local.1.docs_scanned,
        LOCAL_DOCS,
        dist.batched_bytes,
        dist.monolithic_bytes,
        ratio * 100.0,
        chaos.iter().map(|c| c.successes).sum::<usize>(),
        chaos.len(),
    );
}

/// Scan→filter→project over one node, unbounded then LIMIT-ed.
fn bench_local_pipeline() -> (RunStats, RunStats, u64) {
    let storage = StorageEngine::new(StorageOptions {
        partitions: 4,
        seal_threshold: 512,
        compression: true,
        encryption_key: None,
    });
    for i in 0..LOCAL_DOCS {
        storage
            .put(
                &DocumentBuilder::new(DocId(i), SourceFormat::Json, "orders")
                    .field("amount", (i % 1000) as i64)
                    .field("cust", format!("C-{}", i % 17))
                    .build(),
            )
            .expect("put");
    }
    let text = InvertedIndex::new(4);
    let values = PathValueIndex::new();
    let joins = JoinIndex::new();
    let ctx = ExecContext {
        storage: &storage,
        text_index: &text,
        value_index: &values,
        join_index: &joins,
        pushdown: true,
        columnar: true,
        snapshot: None,
    };
    let plan = LogicalPlan::Project {
        input: Box::new(LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan {
                collection: Some("orders".into()),
                predicate: None,
                alias: "orders".into(),
                use_value_index: false,
            }),
            alias: "orders".into(),
            predicate: Predicate::Ge("amount".into(), Value::Int(100)),
        }),
        columns: vec![("orders".into(), "amount".into(), "amount".into())],
    };

    let run = |limit: Option<usize>| {
        let opts = ExecutionContext {
            batch_size: BATCH_SIZE,
            limit,
            ..ExecutionContext::default()
        };
        let t0 = Instant::now();
        let (out, m) = execute_plan_opts(&ctx, &plan, &opts).expect("execute");
        RunStats {
            rows: out.len() as u64,
            docs_scanned: m.scan.docs_scanned,
            micros: t0.elapsed().as_micros(),
        }
    };

    let early = impliance_obs::global()
        .metrics()
        .counter("query.pipeline.early_terminations");
    let full = run(None);
    let before = early.get();
    let limited = run(Some(LOCAL_LIMIT));
    (full, limited, early.get() - before)
}

struct DistStats {
    monolithic_bytes: u64,
    batched_bytes: u64,
    morsels: usize,
    batches: u64,
}

/// Same filtered scan over a 2-node × 2-partition cluster: pre-refactor
/// monolithic shape vs batched morsels with the limit pushed down.
fn bench_distributed_bytes() -> DistStats {
    let specs = vec![
        NodeSpec::new(0, NodeKind::Data),
        NodeSpec::new(1, NodeKind::Data),
        NodeSpec::new(100, NodeKind::Grid),
    ];
    let rt = ClusterRuntime::boot(&specs, Arc::new(Network::new()), |spec| match spec.kind {
        NodeKind::Data => Arc::new(DataNodeState::new(Arc::new(StorageEngine::new(
            StorageOptions {
                partitions: 2,
                seal_threshold: 64,
                compression: true,
                encryption_key: None,
            },
        )))),
        _ => Arc::new(()),
    });
    for i in 0..DIST_DOCS {
        dist_put(
            &rt,
            &DocumentBuilder::new(DocId(i), SourceFormat::Json, "orders")
                .field("amount", (i % 100) as i64)
                .field("cust", format!("C-{}", i % 10))
                .build(),
        )
        .expect("dist_put");
    }
    let request = ScanRequest::filtered(Predicate::Ge("amount".into(), Value::Int(50)));

    // Pre-refactor shape: one task per node, the node scans everything the
    // predicate admits and ships its whole partial in a single transmit;
    // LIMIT existed only at the coordinator, after the bytes had moved.
    rt.network().reset_metrics();
    let req_bytes = format!("{request:?}").len() as u64;
    let mut handles = Vec::new();
    for id in rt.nodes_of_kind(NodeKind::Data) {
        let req = request.clone();
        let handle = rt
            .submit_to(id, req_bytes, move |ctx| {
                let state = ctx
                    .state
                    .downcast_ref::<DataNodeState>()
                    .expect("data node state");
                let result = state.storage.scan(&req).expect("node scan");
                ctx.network
                    .transmit(ctx.id, NodeId(u32::MAX), result.metrics.bytes_returned);
                result.documents.len()
            })
            .expect("submit monolithic scan");
        handles.push(handle);
    }
    let mut monolithic_docs = 0usize;
    for h in handles {
        monolithic_docs += h.join().expect("join monolithic scan");
    }
    let monolithic_bytes = rt.network().metrics().bytes;

    // Batched pipeline: the limit rides in the request, every morsel stops
    // after its first page reaches it.
    rt.network().reset_metrics();
    let limited = ScanRequest {
        limit: Some(DIST_LIMIT),
        ..request.clone()
    };
    let (res, stats) = dist_scan_batched(&rt, &limited, DIST_BATCH).expect("batched scan");
    let batched_bytes = rt.network().metrics().bytes;
    assert_eq!(res.documents.len(), DIST_LIMIT, "limit honored");
    assert!(monolithic_docs > DIST_LIMIT, "corpus larger than the limit");

    DistStats {
        monolithic_bytes,
        batched_bytes,
        morsels: stats.morsels,
        batches: stats.batches,
    }
}

const PAR_PARTITIONS: usize = 8;
const PAR_WORKERS: [usize; 4] = [1, 2, 4, 8];
const PAR_REPS: usize = 3;

struct ParallelRun {
    workers: usize,
    scan_micros: u128,
    agg_micros: u128,
}

struct ParallelStats {
    host_cores: usize,
    gate: &'static str,
    runs: Vec<ParallelRun>,
    scan_speedup_4x: f64,
    agg_speedup_4x: f64,
    rows_equal: bool,
}

/// Morsel-driven parallel execution vs the serial pipeline: the same
/// scan→filter→project and group-aggregate workloads over the 20k-doc
/// corpus at 1/2/4/8 workers. On hosts with ≥ 4 cores the 4-worker scan
/// must beat serial by ≥ 1.5×; on smaller hosts (where a speedup is
/// physically impossible) the gate degrades to exact row equality plus
/// bounded pool overhead, with the host core count reported honestly.
fn bench_parallel() -> ParallelStats {
    let storage = StorageEngine::new(StorageOptions {
        partitions: PAR_PARTITIONS,
        seal_threshold: 512,
        compression: true,
        encryption_key: None,
    });
    for i in 0..LOCAL_DOCS {
        storage
            .put(
                &DocumentBuilder::new(DocId(i), SourceFormat::Json, "orders")
                    .field("amount", (i % 1000) as i64)
                    .field("cust", format!("C-{}", i % 17))
                    .build(),
            )
            .expect("put");
    }
    let text = InvertedIndex::new(4);
    let values = PathValueIndex::new();
    let joins = JoinIndex::new();
    let ctx = ExecContext {
        storage: &storage,
        text_index: &text,
        value_index: &values,
        join_index: &joins,
        pushdown: true,
        columnar: true,
        snapshot: None,
    };
    let scan_plan = LogicalPlan::Project {
        input: Box::new(LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan {
                collection: Some("orders".into()),
                predicate: None,
                alias: "orders".into(),
                use_value_index: false,
            }),
            alias: "orders".into(),
            predicate: Predicate::Ge("amount".into(), Value::Int(100)),
        }),
        columns: vec![("orders".into(), "amount".into(), "amount".into())],
    };
    let agg_plan = LogicalPlan::GroupAgg {
        input: Box::new(LogicalPlan::Scan {
            collection: Some("orders".into()),
            predicate: None,
            alias: "orders".into(),
            use_value_index: false,
        }),
        group_by: Some(("orders".into(), "cust".into())),
        aggs: vec![impliance_query::AggItem {
            func: impliance_storage::AggFunc::Sum,
            operand: Some("amount".into()),
            output: "total".into(),
        }],
    };

    let render = |out: &impliance_query::QueryOutput| -> Vec<String> {
        out.rows().iter().map(|r| r.render()).collect()
    };
    // Median-of-reps wall time plus the rendered rows of the last rep.
    let measure = |plan: &LogicalPlan, workers: usize| -> (u128, Vec<String>) {
        let opts = ExecutionContext {
            batch_size: BATCH_SIZE,
            ..ExecutionContext::default()
        }
        .parallelism(workers);
        let mut times: Vec<u128> = Vec::with_capacity(PAR_REPS);
        let mut rows = Vec::new();
        for _ in 0..PAR_REPS {
            let t0 = Instant::now();
            let (out, _) = execute_plan_opts(&ctx, plan, &opts).expect("parallel execute");
            times.push(t0.elapsed().as_micros());
            rows = render(&out);
        }
        times.sort_unstable();
        (times[times.len() / 2], rows)
    };

    let mut runs = Vec::with_capacity(PAR_WORKERS.len());
    let mut rows_equal = true;
    let mut serial_rows: (Vec<String>, Vec<String>) = (Vec::new(), Vec::new());
    let mut scan_times: Vec<(usize, u128)> = Vec::new();
    let mut agg_times: Vec<(usize, u128)> = Vec::new();
    for workers in PAR_WORKERS {
        let (scan_micros, scan_rows) = measure(&scan_plan, workers);
        let (agg_micros, agg_rows) = measure(&agg_plan, workers);
        if workers == 1 {
            serial_rows = (scan_rows, agg_rows);
        } else if scan_rows != serial_rows.0 || agg_rows != serial_rows.1 {
            rows_equal = false;
        }
        scan_times.push((workers, scan_micros));
        agg_times.push((workers, agg_micros));
        runs.push(ParallelRun {
            workers,
            scan_micros,
            agg_micros,
        });
    }
    let speedup = |times: &[(usize, u128)], workers: usize| -> f64 {
        let serial = times.iter().find(|(w, _)| *w == 1).map(|(_, t)| *t);
        let at = times.iter().find(|(w, _)| *w == workers).map(|(_, t)| *t);
        match (serial, at) {
            (Some(s), Some(t)) if t > 0 => s as f64 / t as f64,
            _ => 0.0,
        }
    };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    ParallelStats {
        host_cores,
        gate: if host_cores >= 4 {
            "speedup_1_5x_at_4_workers"
        } else {
            "row_equality_plus_bounded_overhead"
        },
        runs,
        scan_speedup_4x: speedup(&scan_times, 4),
        agg_speedup_4x: speedup(&agg_times, 4),
        rows_equal,
    }
}

const COL_DOCS: u64 = 20_000;
const COL_PARTITIONS: usize = 4;
// Selective threshold: amounts are ingested in arrival order (0..COL_DOCS),
// so each sealed segment holds a contiguous range and its zone map prunes
// exactly; a 90th-percentile predicate should skip ~90% of segments.
const COL_THRESHOLD: i64 = (COL_DOCS as i64 / 10) * 9;
const COL_REPS: usize = 3;

struct ColumnarStats {
    host_cores: usize,
    gate: &'static str,
    row_micros: u128,
    columnar_micros: u128,
    row_rows_per_sec: f64,
    columnar_rows_per_sec: f64,
    speedup: f64,
    selective_rows: u64,
    segments_skipped: u64,
    segments_scanned: u64,
    skip_ratio: f64,
    rows_equal: bool,
}

/// Columnar vs row pipeline, single-threaded, same corpus and plans:
///
/// * **Throughput** — a filter+project that admits every document, so
///   zone maps skip nothing and the difference is pure decode cost
///   (typed column vectors vs materialized documents). Speedup is the
///   ratio of median wall times; rows/sec counts corpus documents.
/// * **Selective** — a 90th-percentile predicate over arrival-ordered
///   amounts; tight per-segment zone maps should skip most segments
///   before decompression (`storage.segment.skipped` accounting).
/// * **Equality** — both measurements compare rendered rows between the
///   two pipelines exactly.
fn bench_columnar() -> ColumnarStats {
    let storage = StorageEngine::new(StorageOptions {
        partitions: COL_PARTITIONS,
        seal_threshold: 512,
        compression: true,
        encryption_key: None,
    });
    for i in 0..COL_DOCS {
        storage
            .put(
                &DocumentBuilder::new(DocId(i), SourceFormat::Json, "orders")
                    .field("amount", i as i64)
                    .field("cust", format!("C-{}", i % 17))
                    .build(),
            )
            .expect("put");
    }
    let text = InvertedIndex::new(4);
    let values = PathValueIndex::new();
    let joins = JoinIndex::new();
    let ctx = |columnar: bool| ExecContext {
        storage: &storage,
        text_index: &text,
        value_index: &values,
        join_index: &joins,
        pushdown: true,
        columnar,
        snapshot: None,
    };
    let plan = |threshold: i64| LogicalPlan::Project {
        input: Box::new(LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan {
                collection: Some("orders".into()),
                predicate: None,
                alias: "orders".into(),
                use_value_index: false,
            }),
            alias: "orders".into(),
            predicate: Predicate::Ge("amount".into(), Value::Int(threshold)),
        }),
        columns: vec![("orders".into(), "amount".into(), "amount".into())],
    };
    let opts = ExecutionContext {
        batch_size: BATCH_SIZE,
        ..ExecutionContext::default()
    };
    // Median wall time + last run's (rendered rows, metrics).
    let measure = |plan: &LogicalPlan, columnar: bool| {
        let mut times: Vec<u128> = Vec::with_capacity(COL_REPS);
        let mut rows: Vec<String> = Vec::new();
        let mut metrics = None;
        for _ in 0..COL_REPS {
            let t0 = Instant::now();
            let (out, m) = execute_plan_opts(&ctx(columnar), plan, &opts).expect("execute");
            times.push(t0.elapsed().as_micros());
            rows = out.rows().iter().map(|r| r.render()).collect();
            metrics = Some(m);
        }
        times.sort_unstable();
        (times[times.len() / 2], rows, metrics.expect("ran"))
    };

    let full = plan(0);
    let (row_micros, row_rows, _) = measure(&full, false);
    let (columnar_micros, col_rows, col_full_m) = measure(&full, true);
    let mut rows_equal = row_rows == col_rows;
    assert!(
        col_full_m.columnar_batches > 0,
        "full scan did not take the columnar path"
    );

    let selective = plan(COL_THRESHOLD);
    let (_, sel_row_rows, _) = measure(&selective, false);
    let (_, sel_col_rows, sel_m) = measure(&selective, true);
    rows_equal &= sel_row_rows == sel_col_rows;
    let skipped = sel_m.scan.segments_skipped;
    let scanned = sel_m.scan.segments_scanned;

    let per_sec = |micros: u128| {
        if micros > 0 {
            COL_DOCS as f64 / (micros as f64 / 1_000_000.0)
        } else {
            f64::INFINITY
        }
    };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    ColumnarStats {
        host_cores,
        gate: if host_cores >= 4 {
            "speedup_2x_and_skip_ratio_0_5"
        } else {
            "row_equality_only"
        },
        row_micros,
        columnar_micros,
        row_rows_per_sec: per_sec(row_micros),
        columnar_rows_per_sec: per_sec(columnar_micros),
        speedup: if columnar_micros > 0 {
            row_micros as f64 / columnar_micros as f64
        } else {
            f64::INFINITY
        },
        selective_rows: sel_col_rows.len() as u64,
        segments_skipped: skipped,
        segments_scanned: scanned,
        skip_ratio: skipped as f64 / (skipped + scanned).max(1) as f64,
        rows_equal,
    }
}

struct ChaosConfigStats {
    drop_pct: u32,
    successes: usize,
    retries: u64,
    failovers: u64,
    median_micros: u128,
    p99_micros: u128,
}

/// Replay seeded fault schedules against the resilient scan: for each
/// drop rate, every trial boots a fresh 4-data-node cluster (killed nodes
/// stay dead), ingests a 2-way replicated corpus, kills one node mid-scan
/// while dropping `drop_pct`% of the victim's coordinator traffic, and
/// checks the recovered row set against the fault-free one exactly.
fn bench_chaos() -> Vec<ChaosConfigStats> {
    let expected: Vec<u64> = (0..CHAOS_DOCS).collect();
    let mut out = Vec::new();
    for drop_pct in CHAOS_DROP_PCTS {
        let mut successes = 0usize;
        let mut retries = 0u64;
        let mut failovers = 0u64;
        let mut micros: Vec<u128> = Vec::with_capacity(CHAOS_TRIALS);
        for trial in 0..CHAOS_TRIALS {
            let mut specs: Vec<NodeSpec> = (0..CHAOS_NODES)
                .map(|i| NodeSpec::new(i, NodeKind::Data))
                .collect();
            specs.push(NodeSpec::new(100, NodeKind::Grid));
            let rt =
                ClusterRuntime::boot(&specs, Arc::new(Network::new()), |spec| match spec.kind {
                    NodeKind::Data => Arc::new(DataNodeState::new(Arc::new(StorageEngine::new(
                        StorageOptions {
                            partitions: 3,
                            seal_threshold: 64,
                            compression: true,
                            encryption_key: None,
                        },
                    )))),
                    _ => Arc::new(()),
                });
            for i in 0..CHAOS_DOCS {
                dist_put_replicated(
                    &rt,
                    &DocumentBuilder::new(DocId(i), SourceFormat::Json, "orders")
                        .field("amount", (i % 100) as i64)
                        .build(),
                    2,
                )
                .expect("replicated ingest on a healthy cluster");
            }

            let victim = rt.nodes_of_kind(NodeKind::Data)[trial % CHAOS_NODES as usize];
            let coord = NodeId(u32::MAX);
            let sched = Arc::new(FaultSchedule::new(
                0xC4A0_0000 ^ ((drop_pct as u64) << 8) ^ trial as u64,
            ));
            sched.drop_link(coord, victim, drop_pct as f64 / 100.0);
            sched.drop_link(victim, coord, drop_pct as f64 / 100.0);
            sched.kill_after(victim, 20);
            rt.network().install_faults(sched);

            let opts = ExecutionContext {
                batch_size: 8,
                retry: RetryPolicy {
                    max_attempts: 10,
                    ..RetryPolicy::default()
                },
                failover: Some(FailoverPolicy::ring(&rt.nodes_of_kind(NodeKind::Data))),
                ..ExecutionContext::default()
            };
            let t0 = Instant::now();
            let scan = dist_scan_resilient(&rt, &ScanRequest::full(), &opts);
            micros.push(t0.elapsed().as_micros());
            rt.network().clear_faults();
            if let Ok(scan) = scan {
                let mut ids: Vec<u64> = scan.result.documents.iter().map(|d| d.id().0).collect();
                ids.sort_unstable();
                if ids == expected && !scan.degraded {
                    successes += 1;
                }
                retries += scan.retries;
                failovers += scan.failovers;
            }
        }
        micros.sort_unstable();
        out.push(ChaosConfigStats {
            drop_pct,
            successes,
            retries,
            failovers,
            // 5 trials: median is the middle one, "p99" is the worst
            median_micros: micros[micros.len() / 2],
            p99_micros: *micros.last().expect("at least one trial"),
        });
    }
    out
}

//! Multi-tenant overload behavior under 1x and 2x offered load. Emits
//! `BENCH_workload.json` in the workspace root and exits non-zero unless
//! the workload-management gates hold.
//!
//! Two kinds of measurement:
//!
//! 1. **Simulated traffic** — the seeded open-loop generator
//!    (`impliance_virt::traffic`) drives thousands of zipfian-skewed
//!    clients against a `WorkloadManager` in virtual time, once at the
//!    nominal offered rate (1x) and once at double (2x). The simulation
//!    burns no wall-clock and is independent of host core count — the
//!    reported `host_cores` field is informational honesty, not an input
//!    to any number below.
//! 2. **Engine smoke** — a real `Impliance` with a one-query-per-second
//!    tenant quota is hammered; the overflow must come back as typed
//!    `Overloaded` errors with actionable retry-after hints while
//!    admitted queries keep returning correct rows.
//!
//! Gates:
//!
//! * At 1x, every offered high-priority query completes and meets its
//!   deadline (100%: zero shed, zero deadline misses).
//! * At 2x, high-priority p99 latency stays within 2x of its 1x value —
//!   overload degrades the low classes, not the latency-sensitive one.
//! * At 2x, low-priority work is visibly shed/degraded (counted and
//!   reported, never silently dropped: offered = completed + degraded +
//!   shed in every class at every load).
//! * No completion in any class at any load exceeds its class deadline
//!   (the deadline path truncates to an honest partial instead).
//! * The engine smoke observes at least one typed `Overloaded` rejection
//!   with a retry hint, and at least one correct admitted answer.

use impliance_core::{ApplianceConfig, ErrorKind, Impliance, QueryRequest, TenantQuota};
use impliance_docmodel::{RelationalSchema, Value};
use impliance_virt::traffic::{self, TrafficReport, TrafficSpec};

const CLASS_NAMES: [&str; 3] = ["high", "normal", "low"];

fn class_json(report: &TrafficReport, spec: &TrafficSpec) -> String {
    let mut parts = Vec::new();
    for (ci, c) in report.classes.iter().enumerate() {
        parts.push(format!(
            "      \"{}\": {{ \"offered\": {}, \"completed\": {}, \"degraded\": {}, \
             \"shed\": {}, \"met_deadline\": {}, \"deadline_us\": {}, \"p50_us\": {}, \
             \"p99_us\": {}, \"max_us\": {} }}",
            CLASS_NAMES[ci],
            c.offered,
            c.completed,
            c.degraded,
            c.shed,
            c.met_deadline,
            spec.deadline_us[ci],
            c.p50_us,
            c.p99_us,
            c.max_us,
        ));
    }
    parts.join(",\n")
}

fn run_load(multiplier: u64) -> (TrafficSpec, TrafficReport) {
    let spec = TrafficSpec {
        offered_qps: 2_000 * multiplier,
        ..TrafficSpec::default()
    };
    let report = traffic::run(&spec);
    (spec, report)
}

struct EngineSmoke {
    admitted: u64,
    overloaded: u64,
    retry_hint_ms: u64,
    correct_rows: bool,
}

/// Hammer a real appliance with a starved tenant quota: overflow must be
/// typed `Overloaded` (with a retry hint), admitted queries must stay
/// correct, and nothing may hang or panic.
fn engine_smoke() -> EngineSmoke {
    let imp = Impliance::boot(ApplianceConfig::default());
    let schema = RelationalSchema::new("orders", &["id", "total"]);
    for i in 0..50 {
        imp.ingest_row(&schema, vec![Value::Int(i), Value::Float(i as f64)])
            .expect("seed ingest");
    }
    imp.set_tenant_quota(
        1,
        TenantQuota {
            tokens_per_sec: 1,
            burst: 2,
            queue_capacity: 4,
        },
    );
    let mut smoke = EngineSmoke {
        admitted: 0,
        overloaded: 0,
        retry_hint_ms: 0,
        correct_rows: true,
    };
    for _ in 0..20 {
        match imp.query(
            QueryRequest::builder("SELECT id FROM orders")
                .tenant(1)
                .build(),
        ) {
            Ok(resp) => {
                smoke.admitted += 1;
                if resp.rows().len() != 50 {
                    smoke.correct_rows = false;
                }
            }
            Err(e) if e.kind() == ErrorKind::Overloaded => {
                smoke.overloaded += 1;
                smoke.retry_hint_ms = smoke.retry_hint_ms.max(e.retry_after_ms().unwrap_or(0));
            }
            Err(e) => {
                eprintln!("FAIL: unexpected error kind from overload path: {e}");
                smoke.correct_rows = false;
            }
        }
    }
    smoke
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let (spec1, r1) = run_load(1);
    let (spec2, r2) = run_load(2);
    let smoke = engine_smoke();

    let json = format!(
        "{{\n  \"bench\": \"workload\",\n  \"host_cores\": {host_cores},\n  \
         \"note\": \"simulated sections run in virtual time and do not depend on host_cores\",\n  \
         \"simulation\": {{\n    \"tenants\": {}, \"clients\": {}, \"servers\": {}, \
         \"duration_us\": {}, \"seed\": {},\n    \"load_1x\": {{\n      \"offered_qps\": {},\n\
         {}\n    }},\n    \"load_2x\": {{\n      \"offered_qps\": {},\n{}\n    }}\n  }},\n  \
         \"engine_smoke\": {{ \"admitted\": {}, \"overloaded\": {}, \"retry_hint_ms\": {}, \
         \"correct_rows\": {} }}\n}}\n",
        spec1.tenants,
        spec1.clients,
        spec1.servers,
        spec1.duration_us,
        spec1.seed,
        spec1.offered_qps,
        class_json(&r1, &spec1),
        spec2.offered_qps,
        class_json(&r2, &spec2),
        smoke.admitted,
        smoke.overloaded,
        smoke.retry_hint_ms,
        smoke.correct_rows,
    );
    std::fs::write("BENCH_workload.json", &json).expect("write BENCH_workload.json");
    print!("{json}");

    let mut failed = false;

    // Gate: full accounting at both loads — nothing silently dropped.
    for (label, r) in [("1x", &r1), ("2x", &r2)] {
        if !traffic::accounted(r) {
            eprintln!("FAIL: {label} has unaccounted queries: {:?}", r.classes);
            failed = true;
        }
    }

    // Gate: at 1x every high-priority query completes and meets its
    // deadline.
    let high1 = &r1.classes[0];
    if high1.shed != 0 || high1.met_deadline != high1.completed + high1.degraded {
        eprintln!(
            "FAIL: high-priority at 1x must be 100% on-deadline: {:?}",
            high1
        );
        failed = true;
    }

    // Gate: high-priority p99 at 2x within 2x of its 1x value.
    let high2 = &r2.classes[0];
    if high2.p99_us > high1.p99_us.max(1) * 2 {
        eprintln!(
            "FAIL: high-priority p99 degraded more than 2x under overload: \
             1x={}us 2x={}us",
            high1.p99_us, high2.p99_us
        );
        failed = true;
    }

    // Gate: 2x overload visibly sheds/degrades low-priority work.
    let low2 = &r2.classes[2];
    if low2.shed + low2.degraded == 0 {
        eprintln!(
            "FAIL: 2x overload shed/degraded nothing in the low class: {:?}",
            low2
        );
        failed = true;
    }

    // Gate: no completion past its class deadline at either load.
    for (label, spec, r) in [("1x", &spec1, &r1), ("2x", &spec2, &r2)] {
        for (ci, c) in r.classes.iter().enumerate() {
            if c.max_us > spec.deadline_us[ci] {
                eprintln!(
                    "FAIL: {label} class {} completed {}us past its {}us deadline",
                    CLASS_NAMES[ci], c.max_us, spec.deadline_us[ci]
                );
                failed = true;
            }
        }
    }

    // Gate: the real engine sheds typed and keeps admitted answers exact.
    if smoke.overloaded == 0 || smoke.admitted == 0 {
        eprintln!(
            "FAIL: engine smoke must see both admissions and typed Overloaded \
             rejections (admitted={}, overloaded={})",
            smoke.admitted, smoke.overloaded
        );
        failed = true;
    }
    if smoke.retry_hint_ms == 0 {
        eprintln!("FAIL: Overloaded rejections must carry a retry-after hint");
        failed = true;
    }
    if !smoke.correct_rows {
        eprintln!("FAIL: admitted queries under overload returned wrong rows");
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "workload bench OK: high p99 {}us -> {}us at 2x; low shed {}/{} at 2x; \
         {} typed rejections in engine smoke",
        high1.p99_us, high2.p99_us, low2.shed, low2.offered, smoke.overloaded
    );
}

//! Concurrent-ingest benchmark for epoch-snapshot isolation. Emits
//! `BENCH_ingest.json` in the workspace root and exits non-zero when any
//! gate fails.
//!
//! Three measurements:
//!
//! 1. **Consistency** — documents are ingested while the background
//!    annotator drains the change feed in small budgeted slices, under
//!    three fault settings (no kills, killed before its atomic commit,
//!    killed after the commit but before the cursor ack). After every
//!    slice a reader pins a snapshot and checks the isolation contract:
//!    every subject's visible annotation set is empty or complete, never
//!    a torn prefix. After a final quiesce the annotation sets must be
//!    equal to those of a fault-free quiesced appliance, at every
//!    setting. Ids are allocator-order dependent across fault schedules,
//!    so equality is on content (subject body → annotation collections).
//!
//! 2. **GC** — sustained overwrite of a fixed id set with lazy version
//!    GC enabled. Superseded versions must be reclaimed down to exactly
//!    the live set once no snapshot is pinned, the reclamation must be
//!    observable in `versions_reclaimed`, and a pinned snapshot must
//!    hold the low-watermark back: versions visible at the pinned epoch
//!    survive a GC sweep and remain readable.
//!
//! 3. **Throughput** — scoped reader threads scan pinned snapshots while
//!    a writer commits continuously. Every scan must see exactly the
//!    rows of its pinned epoch (`batch_size × epoch` — a torn scan
//!    cannot produce that count). On hosts with ≥ 4 cores the readers
//!    must also sustain at least a quarter of the post-quiesce scan
//!    rate, i.e. concurrent ingest may not starve them; smaller hosts
//!    gate on consistency only (the JSON reports `host_cores` and which
//!    gate applied).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use impliance_annotate::{KillPoint, NoFaults, WorkerFaults};
use impliance_core::{ApplianceConfig, Impliance};
use impliance_docmodel::{DocId, Document, DocumentBuilder, SourceFormat};
use impliance_storage::{ScanRequest, StorageEngine, StorageOptions};

const CONSISTENCY_DOCS: usize = 24;
const DISCOVERY_SLICE: usize = 2;
const GC_IDS: u64 = 64;
const GC_ROUNDS: u64 = 40;
const GC_BATCH: usize = 16;
const WRITER_COMMITS: u64 = 240;
const WRITER_BATCH: usize = 20;
const READER_THREADS: usize = 3;
const QUIESCED_SCANS: u32 = 40;

/// Base texts that trip both the entity and the sentiment annotator, so
/// every subject's annotation set spans multiple annotation documents.
const TEXTS: [&str; 4] = [
    "Grace Hopper loved the excellent compilers in Seattle",
    "Alan Turing found the broken tape reader in Manchester awful",
    "Barbara Liskov praised the wonderful abstractions in Boston",
    "Edsger Dijkstra was happy with the reliable queues in Austin",
];

/// Kill the worker at every visit of `point` whose step number is
/// congruent to `phase` (mod `modulus`). With a modulus larger than the
/// three crash points per document the worker always makes progress
/// between kills.
struct KillEvery {
    point: KillPoint,
    modulus: u64,
    phase: u64,
}

impl WorkerFaults for KillEvery {
    fn kill_at(&self, point: KillPoint, step: u64) -> bool {
        point == self.point && step % self.modulus == self.phase
    }
}

fn corpus_text(i: usize) -> String {
    format!("{} case {i}", TEXTS[i % TEXTS.len()])
}

fn doc_body(doc: &Document) -> Option<String> {
    Some(doc.get_str_path("body")?.as_value()?.render())
}

/// The annotation sets visible at one epoch, keyed by subject body.
fn annotation_sets_at(imp: &Impliance, epoch: u64) -> BTreeMap<String, Vec<String>> {
    let mut req = ScanRequest::full();
    req.snapshot = Some(epoch);
    let scan = imp.storage().scan(&req).expect("snapshot scan");
    let mut bodies: BTreeMap<u64, String> = BTreeMap::new();
    for doc in &scan.documents {
        if doc.subject().is_none() {
            if let Some(body) = doc_body(doc) {
                bodies.insert(doc.id().0, body);
            }
        }
    }
    let mut sets: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for doc in &scan.documents {
        let Some(subject) = doc.subject() else {
            continue;
        };
        let Some(body) = bodies.get(&subject.0) else {
            // A subject always commits in an earlier epoch than its
            // annotations, so it is visible whenever they are.
            continue;
        };
        sets.entry(body.clone())
            .or_default()
            .push(doc.collection().to_string());
    }
    for set in sets.values_mut() {
        set.sort();
    }
    sets
}

struct ConsistencyRun {
    setting: &'static str,
    reader_checks: u64,
    torn: u64,
    rows_equal: bool,
}

fn reference_sets() -> BTreeMap<String, Vec<String>> {
    let imp = Impliance::boot(ApplianceConfig::default());
    for i in 0..CONSISTENCY_DOCS {
        imp.ingest_text("ingest", &corpus_text(i)).expect("ingest");
    }
    imp.quiesce();
    annotation_sets_at(&imp, imp.storage().current_epoch())
}

fn bench_consistency(
    setting: &'static str,
    faults: &dyn WorkerFaults,
    reference: &BTreeMap<String, Vec<String>>,
) -> ConsistencyRun {
    let imp = Impliance::boot(ApplianceConfig::default());
    let mut reader_checks = 0u64;
    let mut torn = 0u64;
    for i in 0..CONSISTENCY_DOCS {
        imp.ingest_text("ingest", &corpus_text(i)).expect("ingest");
        imp.run_discovery_with_faults(Some(DISCOVERY_SLICE), faults);
        // Reader: pin a snapshot mid-churn and check zero-or-all.
        let pin = imp.storage().pin();
        for (body, set) in annotation_sets_at(&imp, pin.epoch()) {
            reader_checks += 1;
            if reference.get(&body) != Some(&set) {
                torn += 1;
                eprintln!(
                    "FAIL[{setting}]: torn set for {body:?} at epoch {}",
                    pin.epoch()
                );
            }
        }
    }
    imp.quiesce();
    let rows_equal = &annotation_sets_at(&imp, imp.storage().current_epoch()) == reference;
    if !rows_equal {
        eprintln!("FAIL[{setting}]: quiesced annotation sets differ from the fault-free reference");
    }
    ConsistencyRun {
        setting,
        reader_checks,
        torn,
        rows_equal,
    }
}

struct GcRun {
    versions_written: u64,
    live_docs: u64,
    total_versions_end: u64,
    reclaimed: u64,
    pinned_survivors_ok: bool,
    low_watermark_end: u64,
}

fn bench_gc() -> GcRun {
    let engine = StorageEngine::new(StorageOptions {
        partitions: 2,
        seal_threshold: 64,
        compression: true,
        encryption_key: None,
    });
    engine.set_version_gc(true);
    let mut latest: BTreeMap<u64, Document> = BTreeMap::new();
    let mut versions_written = 0u64;
    let mut pinned = None;
    let mut pinned_survivors_ok = true;
    for round in 0..GC_ROUNDS {
        for chunk in (0..GC_IDS).collect::<Vec<_>>().chunks(GC_BATCH) {
            let docs: Vec<Document> = chunk
                .iter()
                .map(|&id| match latest.get(&id) {
                    Some(prev) => prev.new_version(prev.root().clone(), round as i64),
                    None => DocumentBuilder::new(DocId(id), SourceFormat::Json, "gc")
                        .field("round", round as i64)
                        .build(),
                })
                .collect();
            engine.commit(&docs).expect("gc commit");
            versions_written += docs.len() as u64;
            for d in docs {
                latest.insert(d.id().0, d);
            }
        }
        if round == GC_ROUNDS / 2 {
            // Pin mid-history: the low-watermark may not pass this epoch
            // while the pin lives, so this round's versions must survive
            // every sweep until the drop below.
            pinned = Some(engine.pin());
        }
        if let Some(pin) = &pinned {
            engine.run_gc();
            let visible = engine
                .get_latest_at(DocId(0), pin.epoch())
                .expect("pinned read");
            if visible.is_none() {
                pinned_survivors_ok = false;
                eprintln!(
                    "FAIL: version visible at pinned epoch {} was reclaimed",
                    pin.epoch()
                );
            }
        }
    }
    drop(pinned);
    engine.run_gc();
    GcRun {
        versions_written,
        live_docs: engine.live_docs() as u64,
        total_versions_end: engine.total_versions() as u64,
        reclaimed: engine.stats().versions_reclaimed,
        pinned_survivors_ok,
        low_watermark_end: engine.low_watermark(),
    }
}

struct ThroughputRun {
    host_cores: usize,
    gate: &'static str,
    concurrent_scans: u64,
    concurrent_micros: u128,
    concurrent_scans_per_sec: f64,
    quiesced_scans_per_sec: f64,
    rate_ratio: f64,
    inconsistent_scans: u64,
    docs_committed: u64,
}

fn bench_throughput() -> ThroughputRun {
    let engine = StorageEngine::new(StorageOptions {
        partitions: 4,
        seal_threshold: 512,
        compression: true,
        encryption_key: None,
    });
    let writer_done = AtomicBool::new(false);
    let scans = AtomicU64::new(0);
    let inconsistent = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut next_id = 0u64;
            for commit in 0..WRITER_COMMITS {
                let docs: Vec<Document> = (0..WRITER_BATCH)
                    .map(|_| {
                        let doc = DocumentBuilder::new(DocId(next_id), SourceFormat::Json, "tp")
                            .field("n", next_id as i64)
                            .build();
                        next_id += 1;
                        doc
                    })
                    .collect();
                engine.commit(&docs).expect("writer commit");
                if commit % 64 == 0 {
                    engine.seal_all();
                }
            }
            writer_done.store(true, Ordering::Release);
        });
        for _ in 0..READER_THREADS {
            s.spawn(|| {
                while !writer_done.load(Ordering::Acquire) {
                    let pin = engine.pin();
                    let mut req = ScanRequest::full();
                    req.snapshot = Some(pin.epoch());
                    let result = engine.scan(&req).expect("pinned scan");
                    // Each commit lands WRITER_BATCH fresh ids in one
                    // epoch: any other count is a torn snapshot.
                    if result.documents.len() as u64 != pin.epoch() * WRITER_BATCH as u64 {
                        inconsistent.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "FAIL: pinned scan at epoch {} saw {} rows, expected {}",
                            pin.epoch(),
                            result.documents.len(),
                            pin.epoch() * WRITER_BATCH as u64,
                        );
                    }
                    scans.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let concurrent_micros = started.elapsed().as_micros();
    let concurrent_scans = scans.load(Ordering::Relaxed);
    let concurrent_scans_per_sec = if concurrent_micros > 0 {
        concurrent_scans as f64 / (concurrent_micros as f64 / 1_000_000.0)
    } else {
        f64::INFINITY
    };

    // Post-quiesce baseline: one reader, no writer, same (final) corpus.
    let quiesced_started = Instant::now();
    for _ in 0..QUIESCED_SCANS {
        let pin = engine.pin();
        let mut req = ScanRequest::full();
        req.snapshot = Some(pin.epoch());
        engine.scan(&req).expect("quiesced scan");
    }
    let quiesced_micros = quiesced_started.elapsed().as_micros().max(1);
    let quiesced_scans_per_sec = QUIESCED_SCANS as f64 / (quiesced_micros as f64 / 1_000_000.0);
    // READER_THREADS readers share the engine, so compare their combined
    // rate against the single quiesced reader's rate.
    let rate_ratio = concurrent_scans_per_sec / quiesced_scans_per_sec.max(1e-9);

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    ThroughputRun {
        host_cores,
        gate: if host_cores >= 4 {
            "consistency_and_rate_ratio_0_25"
        } else {
            "consistency_only"
        },
        concurrent_scans,
        concurrent_micros,
        concurrent_scans_per_sec,
        quiesced_scans_per_sec,
        rate_ratio,
        inconsistent_scans: inconsistent.load(Ordering::Relaxed),
        docs_committed: WRITER_COMMITS * WRITER_BATCH as u64,
    }
}

fn main() {
    let reference = reference_sets();
    let runs = [
        bench_consistency("no_faults", &NoFaults, &reference),
        bench_consistency(
            "kill_before_commit",
            &KillEvery {
                point: KillPoint::BeforeCommit,
                modulus: 7,
                phase: 3,
            },
            &reference,
        ),
        bench_consistency(
            "kill_after_commit",
            &KillEvery {
                point: KillPoint::AfterCommit,
                modulus: 7,
                phase: 5,
            },
            &reference,
        ),
    ];
    let gc = bench_gc();
    let tp = bench_throughput();

    let mut json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"host_cores\": {},\n  \"gate\": \"{}\",\n  \
         \"consistency\": {{\n    \"corpus_docs\": {CONSISTENCY_DOCS},\n    \"settings\": [\n",
        tp.host_cores, tp.gate,
    );
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "      {{ \"setting\": \"{}\", \"reader_checks\": {}, \"torn\": {}, \
             \"rows_equal\": {} }}{}\n",
            r.setting,
            r.reader_checks,
            r.torn,
            r.rows_equal,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "    ]\n  }},\n  \"gc\": {{\n    \"versions_written\": {},\n    \"live_docs\": {},\n    \
         \"total_versions_end\": {},\n    \"versions_reclaimed\": {},\n    \
         \"pinned_survivors_ok\": {},\n    \"low_watermark_end\": {}\n  }},\n  \
         \"throughput\": {{\n    \"reader_threads\": {READER_THREADS},\n    \
         \"docs_committed\": {},\n    \"concurrent_scans\": {},\n    \"concurrent_micros\": \
         {},\n    \"concurrent_scans_per_sec\": {:.1},\n    \"quiesced_scans_per_sec\": \
         {:.1},\n    \"rate_ratio\": {:.3},\n    \"inconsistent_scans\": {}\n  }}\n}}\n",
        gc.versions_written,
        gc.live_docs,
        gc.total_versions_end,
        gc.reclaimed,
        gc.pinned_survivors_ok,
        gc.low_watermark_end,
        tp.docs_committed,
        tp.concurrent_scans,
        tp.concurrent_micros,
        tp.concurrent_scans_per_sec,
        tp.quiesced_scans_per_sec,
        tp.rate_ratio,
        tp.inconsistent_scans,
    ));
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    print!("{json}");

    let mut failed = false;
    for r in &runs {
        if r.torn > 0 || !r.rows_equal {
            failed = true; // detail already printed where it was detected
        }
        if r.reader_checks == 0 {
            eprintln!("FAIL[{}]: readers never observed an annotation", r.setting);
            failed = true;
        }
    }
    if gc.reclaimed == 0 {
        eprintln!("FAIL: sustained overwrite reclaimed nothing");
        failed = true;
    }
    if gc.total_versions_end != gc.live_docs {
        eprintln!(
            "FAIL: {} versions retained for {} live docs after an unpinned sweep",
            gc.total_versions_end, gc.live_docs,
        );
        failed = true;
    }
    if gc.reclaimed != gc.versions_written - gc.live_docs {
        eprintln!(
            "FAIL: reclamation not exact: wrote {}, reclaimed {}, live {}",
            gc.versions_written, gc.reclaimed, gc.live_docs,
        );
        failed = true;
    }
    if !gc.pinned_survivors_ok {
        failed = true;
    }
    if tp.inconsistent_scans > 0 {
        eprintln!(
            "FAIL: {} pinned scans saw a row count inconsistent with their epoch",
            tp.inconsistent_scans,
        );
        failed = true;
    }
    if tp.concurrent_scans == 0 {
        eprintln!("FAIL: readers completed no scans while the writer ran");
        failed = true;
    }
    if tp.host_cores >= 4 && tp.rate_ratio < 0.25 {
        eprintln!(
            "FAIL: concurrent readers ran at {:.3}x the quiesced rate on a {}-core host — \
             the writer starved them",
            tp.rate_ratio, tp.host_cores,
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("ingest bench gates passed");
}

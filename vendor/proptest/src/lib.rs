//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! crate reimplements the slice of proptest that `tests/property_tests.rs`
//! uses: the [`Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, `any::<T>()`, range and regex-lite string strategies, tuple
//! strategies, `collection::{vec, btree_map}`, `option::of`,
//! `sample::Index`, and the `proptest!` / `prop_oneof!` / `prop_assert*`
//! macros. There is no shrinking: a failing case panics immediately with
//! the case number and the seed needed to replay it
//! (`PROPTEST_SEED=<n> cargo test <name>`).

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------
// deterministic RNG
// ---------------------------------------------------------------------

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        }
    }

    /// Seed from `PROPTEST_SEED` (if set) mixed with the test name, so each
    /// test gets an independent deterministic stream.
    pub fn for_test(name: &str) -> TestRng {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(DEFAULT_SEED);
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::from_seed(base ^ h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform usize below `bound` (bound > 0).
    pub fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Default base seed when `PROPTEST_SEED` is unset: fixed, so CI is stable.
const DEFAULT_SEED: u64 = 0x1337_C0DE_2026_0806;

// ---------------------------------------------------------------------
// configuration
// ---------------------------------------------------------------------

/// Subset of proptest's run configuration: just the case count.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Grow recursive structures: `recurse` receives a strategy for the
    /// previous depth level; `depth` bounds nesting. The size-tuning
    /// parameters of real proptest are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        Recursive {
            leaf,
            depth,
            recurse: Arc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Type-erase into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Cloneable type-erased strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    depth: u32,
    #[allow(clippy::type_complexity)]
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // Vary the nesting depth per case so both shallow and deep shapes
        // are exercised.
        let levels = rng.below(self.depth as usize + 1) as u32;
        let mut strat = self.leaf.clone();
        for _ in 0..levels {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-weighted alternatives (see [`prop_oneof!`]).
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from boxed alternatives. Panics if empty.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !choices.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.choices.len());
        self.choices[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------
// primitive strategies: any::<T>() and ranges
// ---------------------------------------------------------------------

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value, biased toward edge cases for integers.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` over its whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1-in-8 cases draw from the edge set; the rest are uniform.
                if rng.below(8) == 0 {
                    const EDGES: [$t; 5] = [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX / 2];
                    EDGES[rng.below(EDGES.len())]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let r = (rng.next_u64() as u128 * span as u128 >> 64) as u64;
                (self.start as $wide).wrapping_add(r as $wide) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------
// tuple strategies
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------
// regex-lite string strategies
// ---------------------------------------------------------------------

/// `&'static str` patterns act as regex-lite string strategies. Supported
/// syntax: literal characters, `[...]` classes with ranges, `\PC` (any
/// printable character), and `{n}` / `{m,n}` quantifiers on the previous
/// atom. This covers every pattern in the workspace's property tests.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Clone)]
enum Atom {
    Class(Vec<(char, char)>),
    Printable,
    Literal(char),
}

fn parse_pattern(pattern: &str) -> Vec<(Atom, u32, u32)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<(Atom, u32, u32)> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((c, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((c, c));
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') | Some('p') => {
                        // \PC / \pC — treat as "printable": skip category letter
                        i += 1;
                        if chars.get(i) == Some(&'{') {
                            while i < chars.len() && chars[i] != '}' {
                                i += 1;
                            }
                        }
                        i += 1;
                        Atom::Printable
                    }
                    Some(&c) => {
                        i += 1;
                        Atom::Literal(c)
                    }
                    None => break,
                }
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // optional {n} / {m,n}
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
            let close = close.unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim().parse().unwrap_or(0),
                ),
                None => {
                    let n: u32 = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }
    atoms
}

/// `\PC` sample source: mostly ASCII printable, with occasional multi-byte
/// characters so parsers see real UTF-8 boundaries.
fn random_printable(rng: &mut TestRng) -> char {
    if rng.below(10) == 0 {
        let pool: &[char] = &['é', 'ß', 'λ', '中', '🦀', '“', '\u{00A0}', '☃'];
        pool[rng.below(pool.len())]
    } else {
        // ASCII printable: 0x20..=0x7E
        char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or(' ')
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse_pattern(pattern);
    let mut out = String::new();
    for (atom, min, max) in &atoms {
        let count = if min == max {
            *min
        } else {
            *min + rng.below((*max - *min + 1) as usize) as u32
        };
        for _ in 0..count {
            match atom {
                Atom::Class(ranges) => {
                    let total: u32 = ranges
                        .iter()
                        .map(|(lo, hi)| (*hi as u32).saturating_sub(*lo as u32) + 1)
                        .sum();
                    let mut pick = rng.below(total.max(1) as usize) as u32;
                    for (lo, hi) in ranges {
                        let span = (*hi as u32) - (*lo as u32) + 1;
                        if pick < span {
                            if let Some(c) = char::from_u32(*lo as u32 + pick) {
                                out.push(c);
                            }
                            break;
                        }
                        pick -= span;
                    }
                }
                Atom::Printable => out.push(random_printable(rng)),
                Atom::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// collection / option / sample strategies
// ---------------------------------------------------------------------

/// Strategies over standard collections.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of `element` values, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Map with `size.start..size.end` entries (fewer on key collisions,
    /// matching proptest's behaviour of deduplicating keys).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span);
            let mut out = BTreeMap::new();
            for _ in 0..len {
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use super::*;

    /// Strategy for `Option<S::Value>`: `None` about a third of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` of the inner strategy, or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(3) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Positional sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection of as-yet-unknown length. Generated
    /// uniformly; resolved against a concrete length with [`Index::index`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Resolve against a collection of length `len` (> 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index {
                raw: rng.next_u64(),
            }
        }
    }
}

// ---------------------------------------------------------------------
// macros + prelude
// ---------------------------------------------------------------------

/// Run a property body for every generated case, reporting the case number
/// and replay seed on failure. No shrinking.
#[doc(hidden)]
pub fn __run_cases<F: FnMut(&mut TestRng)>(name: &str, cases: u32, mut body: F) {
    let mut rng = TestRng::for_test(name);
    for case in 0..cases {
        let case_seed = rng.next_u64();
        let mut case_rng = TestRng::from_seed(case_seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut case_rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest-shim: property {name:?} failed at case {case} \
                 (replay: PROPTEST_SEED with this test only; no shrinking)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// proptest's main macro: a block of `#[test]` properties with generated
/// inputs (`arg in strategy` syntax).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $(let $arg = $strat;)+
            // Shadow the strategies with per-case generated values inside
            // the closure; the originals stay alive across cases.
            $crate::__run_cases(stringify!($name), cfg.cases, |__rng| {
                $(let $arg = $crate::Strategy::generate(&$arg, __rng);)+
                $body
            });
        }
    )*};
}

/// Assert within a property (panics; no shrink-and-replay machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among alternatives, all yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };

    /// Mirror of proptest's `prelude::prop` namespace.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_seed_same_values() {
        let strat = crate::collection::vec(0i64..100, 1..10);
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn pattern_strategies_honor_counts_and_classes() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "bad len: {s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn union_and_map_compose() {
        let strat = prop_oneof![Just(1i32), 10i32..20, Just(5i32)].prop_map(|v| v * 2);
        let mut rng = TestRng::from_seed(11);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 2 || v == 10 || (20..40).contains(&v), "unexpected {v}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(i64),
            Branch(Vec<Tree>),
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Branch)
            });
        let mut rng = TestRng::from_seed(5);
        for _ in 0..100 {
            let _ = strat.generate(&mut rng); // must not hang or overflow
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_form_generates_in_range(v in 5u64..50, flag in any::<bool>()) {
            prop_assert!((5..50).contains(&v));
            let _ = flag;
        }
    }
}

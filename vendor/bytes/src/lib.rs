//! Offline shim for the `bytes` crate: an immutable, cheaply-cloneable
//! byte buffer backed by `Arc<[u8]>`. Covers the subset Impliance uses
//! (`Bytes::from`, deref to `[u8]`, clone, equality, len).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A reference-counted immutable byte buffer. `clone()` is O(1).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn clone_is_shared() {
        let b = Bytes::from(vec![9u8; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.to_vec().len(), 1024);
    }
}

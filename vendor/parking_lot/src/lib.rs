//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace-local crate provides the small slice of the `parking_lot`
//! API the Impliance codebase uses: [`Mutex`] and [`RwLock`] whose `lock` /
//! `read` / `write` return guards directly (no `Result`, no poisoning).
//! Poison errors from the underlying `std::sync` primitives are swallowed by
//! recovering the inner guard, matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with parking_lot's panic-free locking API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never returns an error:
    /// a poisoned lock (a holder panicked) is recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(p) => MutexGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(p) => RwLockReadGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(p) => RwLockWriteGuard {
                inner: p.into_inner(),
            },
        }
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poison_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

//! Offline shim for the `rand` crate (0.8-style API subset).
//!
//! Provides [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`] over a SplitMix64/xoshiro-style generator. Determinism
//! is the property the workspace relies on ("the same seed produces
//! byte-identical corpora"); statistical quality is adequate for synthetic
//! corpus generation and tests, not cryptography.

use std::ops::Range;

/// Types that can be uniformly sampled from a half-open range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)` given a u64 source.
    fn sample(range: Range<Self>, source: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(range: Range<Self>, source: &mut dyn FnMut() -> u64) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                // Multiply-shift bounded sampling; bias is < 2^-32 for the
                // corpus-sized spans used here.
                let r = ((source)() as u128 * span as u128 >> 64) as u64;
                (range.start as $wide).wrapping_add(r as $wide) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample(range: Range<Self>, source: &mut dyn FnMut() -> u64) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = ((source)() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample(range: Range<Self>, source: &mut dyn FnMut() -> u64) -> Self {
        f64::sample(range.start as f64..range.end as f64, source) as f32
    }
}

/// Subset of rand's `Rng` extension trait.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut src = || self.next_u64();
        T::sample(range, &mut src)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Core entropy source: a stream of u64s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with generator output.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Subset of rand's `SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64). Stands in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): full-period, passes
            // BigCrush, two multiplies per output.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

/// Convenience module mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<i64> = (0..8).map(|_| a.gen_range(0i64..1_000_000_000)).collect();
        let vb: Vec<i64> = (0..8).map(|_| b.gen_range(0i64..1_000_000_000)).collect();
        assert_ne!(va, vb);
    }
}

//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with the API subset Impliance uses
//! (`bounded`, `unbounded`, `Sender`, `Receiver`, blocking/timeout/try
//! receives, iteration), implemented over `std::sync::mpsc`. Unlike real
//! crossbeam the receiver is single-consumer, which matches every call site
//! in this workspace (one mailbox thread per receiver).

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned by [`Sender::send`] when the receiving side is gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    enum SenderImpl<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// Sending half of a channel. Cloneable.
    pub struct Sender<T> {
        inner: SenderImpl<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                SenderImpl::Unbounded(s) => SenderImpl::Unbounded(s.clone()),
                SenderImpl::Bounded(s) => SenderImpl::Bounded(s.clone()),
            };
            Sender { inner }
        }
    }

    impl<T> Sender<T> {
        /// Send a value, blocking if a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderImpl::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                SenderImpl::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Block with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocking iterator over received values; ends when senders drop.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }

        /// Drain whatever is currently queued without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.inner.try_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: SenderImpl::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// A bounded FIFO channel; `send` blocks when `cap` messages queue up.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: SenderImpl::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn bounded_capacity_and_iter() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn send_after_receiver_drop_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}

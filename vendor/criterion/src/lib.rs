//! Offline shim for the `criterion` crate.
//!
//! Implements the API subset the Impliance benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::{iter, iter_batched}`, `BenchmarkId`,
//! `Throughput`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple mean-of-samples measurement
//! loop. Results print as `name ... time: <mean> [<min> .. <max>]` per
//! sample batch; no statistical analysis, plotting, or HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim runs one routine call
/// per setup call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup for every routine call.
    PerIteration,
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Rendered benchmark name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Prevent the optimizer from discarding a value. Uses the same
/// read-volatile trick as criterion's fallback implementation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    measurement: Duration,
    /// (mean_ns, min_ns, max_ns, iterations)
    result: Option<(f64, f64, f64, u64)>,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that fills
        // roughly measurement/samples per sample.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= 1 << 20 {
                let per_iter = elapsed.as_nanos().max(1) as u64 / iters_per_sample.max(1);
                let target_ns =
                    (self.measurement.as_nanos() as u64 / self.samples.max(1) as u64).max(1);
                iters_per_sample = (target_ns / per_iter.max(1)).clamp(1, 1 << 24);
                break;
            }
            iters_per_sample *= 2;
        }
        let mut means = Vec::with_capacity(self.samples);
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            means.push(ns);
            total_iters += iters_per_sample;
        }
        self.finish_samples(means, total_iters);
    }

    /// Measure `routine` with a fresh `setup` value per call; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut means = Vec::with_capacity(self.samples);
        let mut total_iters = 0u64;
        // Keep per-sample iteration counts small: setup runs outside the
        // timed region but still costs wall-clock.
        let iters_per_sample = 8u64;
        for _ in 0..self.samples {
            let mut sample_ns = 0u128;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                sample_ns += start.elapsed().as_nanos();
            }
            means.push(sample_ns as f64 / iters_per_sample as f64);
            total_iters += iters_per_sample;
        }
        self.finish_samples(means, total_iters);
    }

    fn finish_samples(&mut self, means: Vec<f64>, iters: u64) {
        let min = means.iter().copied().fold(f64::INFINITY, f64::min);
        let max = means.iter().copied().fold(0.0f64, f64::max);
        let mean = means.iter().sum::<f64>() / means.len().max(1) as f64;
        self.result = Some((mean, min, max, iters));
    }
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim has no separate warm-up.
    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Total target time spent measuring each benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("\n== group {name} ==");
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            measurement: self.measurement,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl IntoBenchmarkId, f: F) {
        run_one(&name.into_id(), self.sample_size, self.measurement, None, f);
    }
}

/// A group of benchmarks sharing a prefix and configuration.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Target measuring time within this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declare throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let name = format!("{}/{}", self.prefix, id.into_id());
        run_one(
            &name,
            self.sample_size,
            self.measurement,
            self.throughput,
            f,
        );
    }

    /// Benchmark a closure with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.prefix, id.into_id());
        run_one(
            &name,
            self.sample_size,
            self.measurement,
            self.throughput,
            |b| f(b, input),
        );
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    measurement: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        measurement,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((mean, min, max, iters)) => {
            let tput = match throughput {
                Some(Throughput::Bytes(n)) => {
                    let gib_s = n as f64 / mean / 1.073_741_824;
                    format!("  ({gib_s:.3} GiB/s)")
                }
                Some(Throughput::Elements(n)) => {
                    let elems_s = n as f64 * 1e9 / mean;
                    format!("  ({elems_s:.0} elem/s)")
                }
                None => String::new(),
            };
            println!(
                "{name:<48} time: {} [{} .. {}]  ({iters} iters){tput}",
                human_ns(mean),
                human_ns(min),
                human_ns(max),
            );
        }
        None => println!("{name:<48} (no measurement: bencher never ran)"),
    }
}

/// Define a benchmark group: both the `name/config/targets` struct form and
/// the positional `(group_name, target, ...)` form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut hits = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                hits += 1;
                hits
            })
        });
        group.finish();
        assert!(hits > 0, "routine should have been driven");
    }

    #[test]
    fn iter_batched_runs_setup_per_call() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, runs);
        assert!(runs > 0);
    }
}
